"""Unit tests for repro.cnf.literals."""

import pytest

from repro.cnf.literals import (
    check_literal,
    check_literals,
    lit_from_var,
    literal_to_str,
    negate,
    polarity,
    variable,
)


class TestVariable:
    def test_positive_literal(self):
        assert variable(7) == 7

    def test_negative_literal(self):
        assert variable(-7) == 7


class TestPolarity:
    def test_positive(self):
        assert polarity(3) is True

    def test_negative(self):
        assert polarity(-3) is False


class TestNegate:
    def test_roundtrip(self):
        assert negate(negate(5)) == 5

    def test_sign_flip(self):
        assert negate(5) == -5
        assert negate(-5) == 5


class TestLitFromVar:
    def test_default_positive(self):
        assert lit_from_var(4) == 4

    def test_negative(self):
        assert lit_from_var(4, positive=False) == -4

    def test_rejects_nonpositive_var(self):
        with pytest.raises(ValueError):
            lit_from_var(0)
        with pytest.raises(ValueError):
            lit_from_var(-2)


class TestCheckLiteral:
    def test_accepts_valid(self):
        assert check_literal(9) == 9
        assert check_literal(-9) == -9

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_literal(0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_literal(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_literal(1.0)

    def test_check_literals_tuple(self):
        assert check_literals([1, -2, 3]) == (1, -2, 3)

    def test_check_literals_propagates_error(self):
        with pytest.raises(ValueError):
            check_literals([1, 0])


class TestLiteralToStr:
    def test_default_names(self):
        assert literal_to_str(3) == "x3"
        assert literal_to_str(-3) == "x3'"

    def test_custom_names(self):
        assert literal_to_str(-2, {2: "w"}) == "w'"

    def test_missing_name_falls_back(self):
        assert literal_to_str(5, {2: "w"}) == "x5"
