"""Unit tests for repro.circuits.bench_format."""

import pytest

from repro.circuits.bench_format import (
    BenchFormatError,
    load_bench,
    parse_bench,
    save_bench,
    write_bench,
)
from repro.circuits.gates import GateType
from repro.circuits.library import c17
from repro.circuits.simulate import exhaustive_truth_table

C17_TEXT = """# c17 ISCAS-85
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


class TestParse:
    def test_c17(self):
        circuit = parse_bench(C17_TEXT, name="c17")
        assert len(circuit.inputs) == 5
        assert circuit.outputs == ["G22", "G23"]
        assert circuit.num_gates() == 6

    def test_parsed_c17_matches_library(self):
        parsed = parse_bench(C17_TEXT)
        assert exhaustive_truth_table(parsed) == \
            exhaustive_truth_table(c17())

    def test_forward_references_allowed(self):
        text = """INPUT(a)
OUTPUT(y)
y = NOT(g)
g = BUF(a)
"""
        circuit = parse_bench(text)
        assert circuit.node("y").fanins == ("g",)

    def test_comments_and_blank_lines(self):
        text = "# header\n\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)  # inline\n"
        assert parse_bench(text).num_gates() == 1

    def test_gate_alias_buf(self):
        circuit = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
        assert circuit.node("y").gate_type is GateType.BUFFER

    def test_sequential_dff(self):
        text = """INPUT(d)
OUTPUT(q)
q = DFF(n)
n = AND(d, q)
"""
        circuit = parse_bench(text)
        assert circuit.is_sequential()
        assert circuit.node("q").fanins == ("n",)

    def test_unknown_gate_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\ny = FROB(a)\n")

    def test_undefined_output_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(z)\ny = NOT(a)\n")

    def test_undefined_signal_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")

    def test_redefinition_rejected(self):
        text = "INPUT(a)\ny = NOT(a)\ny = BUF(a)\n"
        with pytest.raises(BenchFormatError):
            parse_bench(text)

    def test_combinational_cycle_rejected(self):
        text = """INPUT(a)
OUTPUT(x)
x = AND(a, y)
y = NOT(x)
"""
        with pytest.raises(BenchFormatError):
            parse_bench(text)

    def test_dff_bad_arity(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nq = DFF(a, a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nthis is not bench\n")


class TestWrite:
    def test_roundtrip_c17(self):
        original = c17()
        again = parse_bench(write_bench(original))
        assert exhaustive_truth_table(again) == \
            exhaustive_truth_table(original)

    def test_roundtrip_sequential(self):
        from repro.circuits.generators import binary_counter
        original = binary_counter(2)
        again = parse_bench(write_bench(original))
        assert again.dffs == original.dffs
        assert again.outputs == original.outputs

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "c17.bench")
        save_bench(c17(), path)
        loaded = load_bench(path)
        assert loaded.name == "c17"
        assert exhaustive_truth_table(loaded) == \
            exhaustive_truth_table(c17())
