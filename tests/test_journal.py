"""The durable job journal and service crash recovery (PR 10).

Covers :mod:`repro.service.journal` replay semantics (write-ahead
records, first-result-wins, corrupt-line tolerance), the server's
journal integration (accepted submissions and terminal results logged
write-ahead, pending jobs re-enqueued on restart, terminal responses
re-served idempotently, cache re-seeded byte-identically), the
``query``/reattach protocol op, and warm service retries seeded from
piggybacked worker checkpoints -- including the corrupt-checkpoint
demotion to a cold restart that must never lose the job.
"""

from __future__ import annotations

import json

import pytest

from repro.cnf.generators import pigeonhole
from repro.runtime.faults import ServiceFaultPlan
from repro.service import (
    InProcessClient,
    JobJournal,
    NOT_FOUND,
    ServiceConfig,
    replay_journal,
)


def clause_payload(formula):
    return {"clauses": [list(c) for c in formula.clauses],
            "num_vars": formula.num_vars}


def fast_config(**overrides) -> ServiceConfig:
    defaults = dict(max_workers=2, queue_depth=8, hang_timeout=0.6,
                    default_deadline=30.0, backoff_seconds=0.01,
                    poll_interval=0.01, progress_interval=0.05,
                    worker_check_interval=16, grace_seconds=5.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# ----------------------------------------------------------------------
# Journal file semantics
# ----------------------------------------------------------------------

class TestReplayJournal:
    def test_missing_file_is_empty(self, tmp_path):
        replay = replay_journal(str(tmp_path / "nope.jsonl"))
        assert replay.terminal == {} and replay.pending == {}
        assert replay.records == 0 and replay.corrupt == 0

    def test_submitted_without_result_is_pending(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        journal.record_submitted("a", {"op": "submit", "id": "a"})
        journal.close()
        replay = replay_journal(journal.path)
        assert list(replay.pending) == ["a"]
        assert replay.terminal == {}

    def test_result_makes_job_terminal(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        journal.record_submitted("a", {"op": "submit", "id": "a"})
        journal.record_result("a", {"kind": "result", "id": "a"})
        journal.close()
        replay = replay_journal(journal.path)
        assert replay.pending == {}
        assert replay.terminal["a"]["kind"] == "result"
        assert replay.requests["a"]["id"] == "a"

    def test_first_result_wins_no_verdict_flips(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        journal.record_result("a", {"verdict": "first"})
        journal.record_result("a", {"verdict": "second"})
        journal.close()
        replay = replay_journal(path)
        assert replay.terminal["a"]["verdict"] == "first"

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JobJournal(path)
        journal.record_submitted("a", {"op": "submit", "id": "a"})
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "result", "id": "a", "respo')
        replay = replay_journal(path)
        assert replay.corrupt == 1
        assert list(replay.pending) == ["a"]   # not flipped terminal

    def test_malformed_records_are_counted_not_fatal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("[1, 2, 3]\n")                        # not a dict
            fh.write('{"kind": "submitted", "id": 5}\n')   # bad id
            fh.write('{"kind": "weird", "id": "a"}\n')     # bad kind
            fh.write(json.dumps({"kind": "submitted", "id": "ok",
                                 "request": {}}) + "\n")
        replay = replay_journal(path)
        assert replay.corrupt == 3
        assert replay.records == 1 and list(replay.pending) == ["ok"]

    def test_write_errors_counted_never_raised(self, tmp_path):
        journal = JobJournal(str(tmp_path))    # a directory: open fails
        journal.record_submitted("a", {})
        assert journal.write_errors == 1
        assert journal.records_written == 0


# ----------------------------------------------------------------------
# Server integration
# ----------------------------------------------------------------------

@pytest.mark.slow
class TestServerJournal:
    def test_submissions_and_results_journaled_write_ahead(
            self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        formula = pigeonhole(3)
        with InProcessClient(fast_config(), journal=path) as client:
            response = client.submit("job-1",
                                     **clause_payload(formula))
            assert response["body"]["status"] == "UNSATISFIABLE"
            status = client.status()
            assert status["journal"]["enabled"] is True
            assert status["journal"]["records_written"] == 2
            assert status["journal"]["terminal"] == 1
        records = [json.loads(line) for line in open(path)]
        assert [r["kind"] for r in records] == ["submitted", "result"]
        assert records[0]["request"]["id"] == "job-1"
        assert records[1]["response"]["body"]["status"] \
            == "UNSATISFIABLE"

    def test_restart_reserves_terminal_and_reseeds_cache(
            self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        formula = pigeonhole(3)
        with InProcessClient(fast_config(), journal=path) as client:
            first = client.submit("job-1", **clause_payload(formula))
        records = [json.loads(line) for line in open(path)]

        with InProcessClient(fast_config(), journal=path) as client:
            # query finds the journaled verdict without re-running.
            replayed = client.query("job-1")
            assert replayed["kind"] == "result"
            assert replayed["body"] == first["body"]
            # Same formula, new id: answered from the re-seeded cache
            # with a body byte-identical to the journaled one.
            cached = client.submit("job-2", **clause_payload(formula))
            assert cached["cached"] is True
            assert cached["body"] == records[1]["response"]["body"]
            # Re-submitting the terminal id is idempotent.
            again = client.submit("job-1", **clause_payload(formula))
            assert again["body"] == first["body"]
            assert client.status()["jobs"]["done"] == 0   # no re-run

    def test_restart_reenqueues_pending_job(self, tmp_path):
        # A server killed between admission and verdict leaves only a
        # "submitted" record; the restarted server must finish the job.
        path = str(tmp_path / "journal.jsonl")
        formula = pigeonhole(3)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "kind": "submitted", "id": "job-lost",
                "request": {"op": "submit", "id": "job-lost",
                            **clause_payload(formula)}}) + "\n")
        with InProcessClient(fast_config(), journal=path) as client:
            status = client.status()
            assert status["journal"]["recovered"] == 1
            response = client.query("job-lost")
            assert response["kind"] == "result"
            assert response["body"]["status"] == "UNSATISFIABLE"
        # The recovered run journaled its own terminal record, so a
        # second restart re-serves instead of re-running.
        replay = replay_journal(path)
        assert replay.pending == {}
        assert "job-lost" in replay.terminal

    def test_query_unknown_job_is_not_found(self):
        with InProcessClient(fast_config()) as client:
            response = client.query("never-heard-of-it")
            assert response["kind"] == "error"
            assert response["code"] == NOT_FOUND

    def test_unjournaled_server_still_answers_query(self):
        with InProcessClient(fast_config()) as client:
            formula = pigeonhole(3)
            client.submit("job-1", **clause_payload(formula))
            response = client.query("job-1")
            assert response["body"]["status"] == "UNSATISFIABLE"


# ----------------------------------------------------------------------
# Warm service retries (checkpoint piggyback)
# ----------------------------------------------------------------------

@pytest.mark.slow
class TestWarmServiceRetry:
    def test_killed_attempt_retries_warm(self):
        plan = ServiceFaultPlan(kills={"job-w": 1},
                                kill_after_checkpoints=2)
        formula = pigeonhole(6)
        with InProcessClient(fast_config(), fault_plan=plan) as client:
            response = client.submit("job-w", **clause_payload(formula))
            body = response["body"]
            assert body["status"] == "UNSATISFIABLE"
            assert body["attempts"] == 2
            assert body["stats"]["warm_resumes"] >= 1
            metrics = client.metrics()["text"]
            assert 'service_warm_retries_total{tenant="default"} 1' \
                in metrics
            assert "service_checkpoints_received_total" in metrics

    def test_corrupt_checkpoint_demotes_to_cold_without_losing_job(
            self):
        plan = ServiceFaultPlan(kills={"job-c": 1},
                                corrupt_checkpoints={"job-c": 3},
                                kill_after_checkpoints=2)
        formula = pigeonhole(6)
        with InProcessClient(fast_config(), fault_plan=plan) as client:
            response = client.submit("job-c", **clause_payload(formula))
            body = response["body"]
            # The job completes; the retry just could not warm-start.
            assert body["status"] == "UNSATISFIABLE"
            assert body["attempts"] == 2
            assert body["stats"]["warm_resumes"] == 0

    def test_warm_retry_unsat_remains_certifiable(self):
        # Certification after a warm restart: the resumed worker's
        # DRUP proof (imported prefix + new derivations) must pass
        # the server's independent checker, not be demoted.
        plan = ServiceFaultPlan(kills={"job-cert": 1},
                                kill_after_checkpoints=4)
        formula = pigeonhole(5)
        with InProcessClient(fast_config(), fault_plan=plan) as client:
            response = client.submit("job-cert", certify=True,
                                     **clause_payload(formula))
            body = response["body"]
            assert body["status"] == "UNSATISFIABLE"
            assert body["degraded"] is False
            assert body["certificate"]["valid"] is True
            assert body["certificate"]["kind"] == "proof"
