"""Unit tests for repro.apps.sat_sweeping."""

import pytest

from repro.apps.equivalence import check_equivalence, mutate_circuit
from repro.apps.sat_sweeping import (
    SATSweeper,
    check_equivalence_sweeping,
    sweep_circuit,
)
from repro.circuits.gates import GateType
from repro.circuits.generators import (
    carry_select_adder,
    random_circuit,
    ripple_carry_adder,
)
from repro.circuits.library import c17
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import exhaustive_truth_table


def duplicated_logic():
    circuit = Circuit("dup")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("g1", GateType.AND, ["a", "b"])
    circuit.add_gate("g2", GateType.AND, ["b", "a"])
    circuit.add_gate("g3", GateType.NAND, ["a", "b"])
    circuit.add_gate("y", GateType.OR, ["g1", "g2"])
    circuit.add_gate("z", GateType.XOR, ["g3", "y"])
    circuit.set_output("z")
    return circuit


class TestSweeping:
    def test_duplicates_found_and_proved(self):
        circuit = duplicated_logic()
        sweeper = SATSweeper(circuit)
        report = sweeper.run()
        merged = {(name, rep) for name, rep, _ in report.classes}
        assert ("g2", "g1") in merged
        polarity = {name: same for name, _, same in report.classes}
        assert polarity["g2"] is True
        assert polarity["g3"] is False     # antivalence via XNOR query

    def test_merge_preserves_function(self):
        circuit = duplicated_logic()
        merged, report = sweep_circuit(circuit)
        assert merged.num_gates() < circuit.num_gates()
        assert exhaustive_truth_table(merged) == \
            exhaustive_truth_table(circuit)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_function_preserved(self, seed):
        circuit = random_circuit(4, 14, seed=seed)
        merged, report = sweep_circuit(circuit, patterns=32, seed=seed)
        assert exhaustive_truth_table(merged) == \
            exhaustive_truth_table(circuit)

    def test_no_false_merges_on_clean_circuit(self):
        """c17 has no internal equivalences: nothing merges and the
        random-pattern phase filters candidates cheaply."""
        merged, report = sweep_circuit(c17())
        assert report.merged_nodes == 0
        assert merged.num_gates() == c17().num_gates()

    def test_refinement_counter(self):
        """With very few patterns, false candidates appear and must be
        refuted -- refinements get recorded."""
        circuit = random_circuit(5, 20, seed=2)
        sweeper = SATSweeper(circuit, patterns=1, seed=0)
        report = sweeper.run()
        # With one pattern nearly everything collides initially.
        assert report.sat_calls > 0

    def test_sequential_rejected(self):
        from repro.circuits.generators import binary_counter
        with pytest.raises(ValueError):
            SATSweeper(binary_counter(2))


class TestSweepingCEC:
    def test_adder_pair_equivalent(self):
        equivalent, report = check_equivalence_sweeping(
            ripple_carry_adder(3), carry_select_adder(3))
        assert equivalent is True
        assert report.merged_nodes > 0     # cross-circuit merges

    def test_mutated_pair_not_equivalent(self):
        equivalent, _ = check_equivalence_sweeping(
            c17(), mutate_circuit(c17(), seed=1))
        assert equivalent is False

    def test_agrees_with_plain_cec(self):
        for seed in range(3):
            circuit = random_circuit(4, 12, seed=seed)
            mutated = mutate_circuit(circuit, seed=seed)
            plain = check_equivalence(circuit, mutated,
                                      simulation_vectors=0)
            swept, _ = check_equivalence_sweeping(circuit, mutated)
            assert swept == plain.equivalent, seed
