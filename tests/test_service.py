"""The fault-tolerant solve service (repro.service).

Covers the wire protocol, admission control (bounded tenant queues,
weighted round-robin, hardness shedding), the result cache, the retry
loop with inherited budgets, graceful degradation under scripted
worker faults, certification demotion, drain-based shutdown, STATUS
introspection, the TCP transport, and (marked slow) a chaos run
mixing crash/hang/delay faults across a batch of concurrent jobs.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.cnf.generators import pigeonhole, random_ksat
from repro.runtime.faults import (
    CRASH,
    HANG,
    KILL_MIDJOB,
    POISON,
    ServiceFaultPlan,
)
from repro.service import (
    BAD_REQUEST,
    InProcessClient,
    ProtocolError,
    REJECTED_OVERLOAD,
    ResultCache,
    SHUTTING_DOWN,
    ServiceClient,
    ServiceConfig,
    SolveServer,
    TenantQueues,
    decode_message,
    encode_message,
    estimate_hardness,
    parse_submit,
)
from repro.service.server import run_server
from repro.solvers.cdcl import CDCLSolver


def clause_payload(formula):
    return {"clauses": [list(c) for c in formula.clauses],
            "num_vars": formula.num_vars}


def fast_config(**overrides) -> ServiceConfig:
    defaults = dict(max_workers=2, queue_depth=8, hang_timeout=0.6,
                    default_deadline=15.0, backoff_seconds=0.01,
                    poll_interval=0.01, progress_interval=0.0,
                    worker_check_interval=16, grace_seconds=5.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# ----------------------------------------------------------------------
# Unit layers
# ----------------------------------------------------------------------

class TestServiceFaultPlan:
    def test_action_precedence_and_leading_attempts(self):
        plan = ServiceFaultPlan(crashes={"j": 1}, kills={"j": 2},
                                hangs={"j": 3}, poisons={"j": 4})
        # crash wins attempt 0; each later family covers the next.
        assert plan.action("j", 0) == CRASH
        assert plan.action("j", 1) == KILL_MIDJOB
        assert plan.action("j", 2) == HANG
        assert plan.action("j", 3) == POISON
        assert plan.action("j", 4) is None
        assert plan.action("other", 0) is None

    def test_delay_is_server_side_not_an_action(self):
        plan = ServiceFaultPlan(delays={"j": 0.25})
        assert plan.action("j", 0) is None
        assert plan.delay("j") == 0.25
        assert plan.delay("other") == 0.0

    def test_from_dict_roundtrip(self):
        plan = ServiceFaultPlan.from_dict(
            {"crashes": {"a": 1}, "delays": {"b": 0.5},
             "kill_after_checkpoints": 7})
        assert plan.action("a", 0) == CRASH
        assert plan.kill_after_checkpoints == 7

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            ServiceFaultPlan.from_dict({"crashs": {"a": 1}})


class TestEstimateHardness:
    def test_scales_with_size(self):
        assert estimate_hardness(200, 852) > estimate_hardness(20, 85)

    def test_phase_transition_is_hardest(self):
        at = estimate_hardness(100, 426)
        assert at > estimate_hardness(100, 100)    # under-constrained
        assert at > estimate_hardness(100, 900)    # over-constrained

    def test_empty_formula_scores_zero(self):
        assert estimate_hardness(0, 0) == 0.0


class TestTenantQueues:
    def test_bounded_per_tenant(self):
        queues = TenantQueues(2, ServiceConfig())
        assert queues.push("a", 1) and queues.push("a", 2)
        assert not queues.push("a", 3)         # a's queue is full
        assert queues.push("b", 4)             # b unaffected
        assert queues.depths() == {"a": 2, "b": 1}
        assert len(queues) == 3

    def test_fifo_within_a_tenant(self):
        queues = TenantQueues(8, ServiceConfig())
        for job in (1, 2, 3):
            queues.push("a", job)
        assert [queues.next_job() for _ in range(3)] == [1, 2, 3]
        assert queues.next_job() is None

    def test_weighted_round_robin(self):
        config = ServiceConfig(tenant_weights={"a": 2.0})
        queues = TenantQueues(8, config)
        for index in range(4):
            queues.push("a", f"a{index}")
            queues.push("b", f"b{index}")
        first_six = [queues.next_job() for _ in range(6)]
        # Weight 2 vs 1: tenant a receives two slots per b slot.
        assert sum(1 for job in first_six
                   if job.startswith("a")) == 4
        assert sum(1 for job in first_six
                   if job.startswith("b")) == 2

    def test_idle_tenant_forfeits_deficit(self):
        config = ServiceConfig(tenant_weights={"a": 5.0})
        queues = TenantQueues(8, config)
        queues.push("a", "a0")
        assert queues.next_job() == "a0"
        # a drained; its banked deficit must not let it burst later.
        queues.push("b", "b0")
        queues.push("a", "a1")
        assert queues.next_job() in ("a1", "b0")
        assert queues.next_job() in ("a1", "b0")
        assert queues.next_job() is None


class TestResultCache:
    def test_hit_miss_and_rate(self):
        cache = ResultCache(4)
        assert cache.get(("k", False)) is None
        cache.put(("k", False), {"status": "SATISFIABLE"})
        assert cache.get(("k", False)) == {"status": "SATISFIABLE"}
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_certify_flag_is_part_of_the_key(self):
        cache = ResultCache(4)
        cache.put(("k", False), {"plain": True})
        assert cache.get(("k", True)) is None

    def test_lru_eviction(self):
        cache = ResultCache(2)
        cache.put(("a", False), {"a": 1})
        cache.put(("b", False), {"b": 1})
        cache.get(("a", False))               # refresh a
        cache.put(("c", False), {"c": 1})     # evicts b
        assert cache.get(("b", False)) is None
        assert cache.get(("a", False)) is not None
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(0)
        cache.put(("a", False), {"a": 1})
        assert cache.get(("a", False)) is None


class TestProtocol:
    def test_roundtrip(self):
        payload = {"op": "submit", "id": "j", "clauses": [[1, -2]],
                   "num_vars": 2}
        assert decode_message(encode_message(payload)) == payload

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2]\n")

    def test_parse_submit_from_dimacs(self):
        request = parse_submit({"op": "submit", "id": "j",
                                "dimacs": "p cnf 2 1\n1 -2 0\n"})
        assert request.clause_lits == [(1, -2)]
        assert request.num_vars == 2
        assert request.tenant == "default"
        assert request.use_cache is True

    def test_parse_submit_validates(self):
        base = {"op": "submit", "id": "j"}
        for bad in (
                base,                                   # no formula
                {**base, "clauses": [[0]], "num_vars": 1},
                {**base, "clauses": [[5]], "num_vars": 2},
                {**base, "clauses": "x", "num_vars": 2},
                {**base, "dimacs": "p cnf 1 1\n1 0\n",
                 "deadline": -1},
                {**base, "dimacs": "p cnf 1 1\n1 0\n",
                 "max_conflicts": 1.5},
                {**base, "dimacs": "p cnf 1 1\n1 0\n",
                 "certify": "yes"},
                {"op": "submit", "id": "",
                 "dimacs": "p cnf 1 1\n1 0\n"},
        ):
            with pytest.raises(ProtocolError):
                parse_submit(bad)


# ----------------------------------------------------------------------
# Integration: the in-process service
# ----------------------------------------------------------------------

class TestInProcessService:
    def test_sat_unsat_and_model(self):
        sat = random_ksat(16, 48, seed=2)
        with InProcessClient(fast_config()) as client:
            response = client.submit("sat", **clause_payload(sat))
            body = response["body"]
            assert body["status"] == "SATISFIABLE"
            model = {abs(lit): lit > 0 for lit in body["model"]}
            for var in range(1, sat.num_vars + 1):
                model.setdefault(var, False)
            assert sat.evaluate(model) is True
            unsat = client.submit("unsat",
                                  **clause_payload(pigeonhole(4)))
            assert unsat["body"]["status"] == "UNSATISFIABLE"
            assert unsat["body"]["degraded"] is False

    def test_cache_hit_replays_byte_identical_body(self):
        formula = random_ksat(14, 42, seed=5)
        with InProcessClient(fast_config()) as client:
            first = client.submit("j1", **clause_payload(formula))
            second = client.submit("j2", **clause_payload(formula))
            assert first["cached"] is False
            assert second["cached"] is True
            assert (json.dumps(first["body"], sort_keys=True)
                    == json.dumps(second["body"], sort_keys=True))
            # Permuted clauses and literals canonicalize to the same
            # key: still a hit.
            permuted = {"clauses": [sorted(c, reverse=True) for c in
                                    reversed(clause_payload(
                                        formula)["clauses"])],
                        "num_vars": formula.num_vars}
            third = client.submit("j3", **permuted)
            assert third["cached"] is True

    def test_certified_unsat_carries_checked_proof(self):
        with InProcessClient(fast_config()) as client:
            response = client.submit("cert",
                                     **clause_payload(pigeonhole(4)),
                                     certify=True)
            body = response["body"]
            assert body["status"] == "UNSATISFIABLE"
            assert body["certificate"]["kind"] == "proof"
            assert body["certificate"]["valid"] is True
            assert body["certificate"]["steps"] > 0

    def test_bad_requests_get_errors_not_hangs(self):
        with InProcessClient(fast_config()) as client:
            missing = client.request({"op": "submit", "id": "x"})
            assert missing["kind"] == "error"
            assert missing["code"] == BAD_REQUEST
            unknown = client.request({"op": "frobnicate", "id": "x"})
            assert unknown["kind"] == "error"
            assert client.ping()["kind"] == "pong"

    def test_status_reports_queues_workers_cache(self):
        formula = random_ksat(12, 36, seed=1)
        with InProcessClient(fast_config()) as client:
            client.submit("s1", **clause_payload(formula))
            client.submit("s2", **clause_payload(formula))
            status = client.status()
            assert status["kind"] == "status"
            assert status["jobs"]["done"] == 1
            assert status["cache"]["hits"] == 1
            assert status["workers"]["max"] == 2
            assert status["draining"] is False

    def test_shutdown_drains_then_rejects(self):
        formula = random_ksat(12, 36, seed=4)
        client = InProcessClient(fast_config())
        try:
            client.submit("before", **clause_payload(formula))
            report = client.shutdown(grace=2.0)
            assert report["kind"] == "shutdown"
            assert report["drained"] == 1
            late = client.request({"op": "submit", "id": "late",
                                   **clause_payload(formula)})
            assert late["kind"] == "rejected"
            assert late["code"] == SHUTTING_DOWN
        finally:
            client.close()


class TestAdmissionControl:
    def test_hardness_shedding(self):
        formula = random_ksat(30, 90, seed=0)
        with InProcessClient(fast_config(max_hardness=5.0)) as client:
            response = client.submit("huge", **clause_payload(formula))
            assert response["kind"] == "rejected"
            assert response["code"] == REJECTED_OVERLOAD
            assert "hardness" in response["reason"]

    def test_queue_overflow_sheds_and_drain_terminates_all(self):
        formula = random_ksat(20, 60, seed=7)
        payload = clause_payload(formula)
        plan = ServiceFaultPlan(hangs={"blocker": 1})
        config = fast_config(max_workers=1, queue_depth=1,
                             hang_timeout=30.0)

        async def scenario():
            server = SolveServer(config, fault_plan=plan)
            await server.start()

            def submit(job_id):
                return server.handle_message(
                    {"op": "submit", "id": job_id,
                     "use_cache": False, **payload})

            blocker = asyncio.create_task(submit("blocker"))
            await asyncio.sleep(0.3)       # dispatched, now hanging
            queued = asyncio.create_task(submit("queued"))
            await asyncio.sleep(0.1)       # sits in the tenant queue
            shed = await submit("shed")
            status = server._status_response(None)
            await server.shutdown(grace=0.0)
            return (await blocker), (await queued), shed, status

        blocked, queued, shed, status = asyncio.run(scenario())
        # The queue was full: explicit overload rejection.
        assert shed["kind"] == "rejected"
        assert shed["code"] == REJECTED_OVERLOAD
        assert "queue" in shed["reason"]
        assert status["queues"] == {"default": 1}
        assert status["workers"]["busy"] == 1
        # Drain terminated everything with a terminal answer: the
        # hung runner degraded, the queued job explicitly rejected.
        assert blocked["kind"] == "result"
        assert blocked["body"]["status"] == "UNKNOWN"
        assert blocked["body"]["degraded"] is True
        assert queued["kind"] == "rejected"
        assert queued["code"] == SHUTTING_DOWN


class TestFaultTolerance:
    def test_crash_once_recovers_with_same_verdict(self):
        formula = random_ksat(20, 60, seed=3)
        reference = CDCLSolver(formula).solve().status.name
        plan = ServiceFaultPlan(crashes={"c": 1})
        with InProcessClient(fast_config(),
                             fault_plan=plan) as client:
            response = client.submit("c", **clause_payload(formula),
                                     use_cache=False)
            body = response["body"]
            assert body["status"] == reference
            assert body["attempts"] == 2
            assert body["degraded"] is False

    def test_poison_payload_is_rejected_and_retried(self):
        formula = random_ksat(20, 60, seed=9)
        plan = ServiceFaultPlan(poisons={"p": 1})
        with InProcessClient(fast_config(),
                             fault_plan=plan) as client:
            body = client.submit("p", **clause_payload(formula),
                                 use_cache=False)["body"]
            assert body["status"] in ("SATISFIABLE", "UNSATISFIABLE")
            assert body["attempts"] == 2

    def test_hang_is_detected_and_retried(self):
        formula = random_ksat(20, 60, seed=11)
        plan = ServiceFaultPlan(hangs={"h": 1})
        with InProcessClient(fast_config(hang_timeout=0.3),
                             fault_plan=plan) as client:
            body = client.submit("h", **clause_payload(formula),
                                 use_cache=False)["body"]
            assert body["status"] in ("SATISFIABLE", "UNSATISFIABLE")
            assert body["attempts"] == 2

    def test_all_attempts_crashing_degrades_gracefully(self):
        formula = random_ksat(20, 60, seed=13)
        plan = ServiceFaultPlan(crashes={"cc": 99})
        with InProcessClient(fast_config(max_attempts=3),
                             fault_plan=plan) as client:
            body = client.submit("cc", **clause_payload(formula),
                                 use_cache=False)["body"]
            assert body["status"] == "UNKNOWN"
            assert body["degraded"] is True
            assert body["degraded_reason"] == "crash"
            assert body["attempts"] == 3

    def test_kill_midjob_leaves_partial_snapshot(self):
        formula = random_ksat(40, 160, seed=3)
        plan = ServiceFaultPlan(kills={"kk": 99},
                                kill_after_checkpoints=3)
        with InProcessClient(fast_config(max_workers=1),
                             fault_plan=plan) as client:
            body = client.submit("kk", **clause_payload(formula),
                                 use_cache=False)["body"]
            assert body["status"] == "UNKNOWN"
            assert body["degraded"] is True
            # The structured partial result: the last progress
            # snapshot the dying worker reported.
            assert body["partial"] is not None
            assert body["partial"]["stats"]["propagations"] >= 0
            assert body["stats"] == body["partial"]["stats"]

    def test_degraded_results_are_not_cached(self):
        formula = random_ksat(20, 60, seed=13)
        plan = ServiceFaultPlan(crashes={"d1": 99, "d2": 99})
        with InProcessClient(fast_config(),
                             fault_plan=plan) as client:
            first = client.submit("d1", **clause_payload(formula))
            second = client.submit("d2", **clause_payload(formula))
            assert first["body"]["status"] == "UNKNOWN"
            assert second["cached"] is False

    def test_budget_exhaustion_is_unknown_not_an_error(self):
        with InProcessClient(fast_config()) as client:
            body = client.submit("b", **clause_payload(pigeonhole(6)),
                                 max_conflicts=5,
                                 use_cache=False)["body"]
            assert body["status"] == "UNKNOWN"
            assert body["degraded_reason"] in ("budget", "deadline")

    def test_delayed_response_fault(self):
        import time
        formula = random_ksat(12, 36, seed=6)
        plan = ServiceFaultPlan(delays={"slow": 0.3})
        with InProcessClient(fast_config(),
                             fault_plan=plan) as client:
            started = time.monotonic()
            body = client.submit("slow", **clause_payload(formula),
                                 use_cache=False)["body"]
            assert time.monotonic() - started >= 0.3
            assert body["status"] in ("SATISFIABLE", "UNSATISFIABLE")


class TestCertificationDemotion:
    def test_failed_proof_check_demotes_never_flips(self, monkeypatch):
        from repro.verify.checker import CheckOutcome

        monkeypatch.setattr(
            "repro.verify.certificate.check_proof_file",
            lambda formula, path: CheckOutcome(
                valid=False, error="forced failure"))
        with InProcessClient(fast_config()) as client:
            response = client.submit("demoted",
                                     **clause_payload(pigeonhole(4)),
                                     certify=True)
            body = response["body"]
            assert body["status"] == "UNKNOWN"
            assert body["degraded"] is True
            assert body["degraded_reason"] == "certification"
            assert body["certificate"]["valid"] is False
            # A demoted answer must not poison the cache.
            again = client.submit("again",
                                  **clause_payload(pigeonhole(4)),
                                  certify=True)
            assert again["cached"] is False


class TestServiceTrace:
    def test_events_validate_against_the_schema(self):
        from repro.obs import ListSink, Tracer
        from repro.obs.trace import validate_event

        sink = ListSink()
        tracer = Tracer(sink)
        formula = random_ksat(14, 42, seed=8)
        config = fast_config(max_hardness=5.0)
        with InProcessClient(config, tracer=tracer) as client:
            easy = random_ksat(8, 20, seed=1)
            client.submit("ok", **clause_payload(easy))
            client.submit("ok2", **clause_payload(easy))   # cache hit
            client.submit("shed", **clause_payload(formula))
        problems = [p for event in sink.events
                    for p in validate_event(event)]
        assert problems == []
        names = [event["name"] for event in sink.events]
        assert names.count("service.result") == 2
        assert "service.reject" in names
        assert "service.shutdown" in names


# ----------------------------------------------------------------------
# TCP transport
# ----------------------------------------------------------------------

class _TcpServer:
    """A run_server() on a background thread, for client tests."""

    def __init__(self, config, fault_plan=None):
        self.port = None
        ready = threading.Event()

        def _note(bound):
            self.port = bound[1]
            ready.set()

        self.thread = threading.Thread(
            target=lambda: asyncio.run(
                run_server(config, port=0, fault_plan=fault_plan,
                           ready=_note)),
            daemon=True)
        self.thread.start()
        assert ready.wait(10.0), "server did not come up"


class TestTcpTransport:
    def test_full_session_over_sockets(self):
        formula = random_ksat(14, 42, seed=10)
        harness = _TcpServer(fast_config())
        client = ServiceClient(port=harness.port)
        try:
            assert client.ping()["kind"] == "pong"
            response = client.submit("tcp-job",
                                     **clause_payload(formula))
            assert response["kind"] == "result"
            assert response["body"]["status"] in ("SATISFIABLE",
                                                  "UNSATISFIABLE")
            assert client.status()["jobs"]["done"] == 1
            report = client.shutdown(grace=2.0)
            assert report["kind"] == "shutdown"
        finally:
            client.close()
        harness.thread.join(10.0)
        assert not harness.thread.is_alive()

    def test_pipelined_submissions_match_by_id(self):
        sat = random_ksat(12, 30, seed=2)
        unsat = pigeonhole(4)
        harness = _TcpServer(fast_config())
        sock = socket.create_connection(("127.0.0.1", harness.port),
                                        timeout=30.0)
        try:
            # Two submissions written back-to-back before any read:
            # the connection handler runs them concurrently and the
            # responses carry their ids.
            sock.sendall(encode_message(
                {"op": "submit", "id": "a", "use_cache": False,
                 **clause_payload(sat)}))
            sock.sendall(encode_message(
                {"op": "submit", "id": "b", "use_cache": False,
                 **clause_payload(unsat)}))
            reader = sock.makefile("rb")
            responses = {}
            for _ in range(2):
                response = decode_message(reader.readline())
                responses[response["id"]] = response["body"]
            assert responses["a"]["status"] == "SATISFIABLE"
            assert responses["b"]["status"] == "UNSATISFIABLE"
            sock.sendall(encode_message({"op": "shutdown",
                                         "id": "down"}))
            assert decode_message(
                reader.readline())["kind"] == "shutdown"
        finally:
            sock.close()
        harness.thread.join(10.0)


# ----------------------------------------------------------------------
# Chaos: the service under a mixed fault storm
# ----------------------------------------------------------------------

@pytest.mark.slow
class TestChaos:
    def test_fault_storm_no_lost_clients_no_flips(self):
        """20+ concurrent jobs under crash/kill/hang/poison/delay
        faults: every client receives a terminal response, decisive
        verdicts never flip against a sequential re-solve, and
        resubmission replays byte-identical cached bodies."""
        jobs = []
        for index in range(22):
            formula = random_ksat(14, 3 * 14 + (index % 5), seed=index)
            jobs.append((f"job-{index}", formula))
        reference = {job_id: CDCLSolver(formula).solve().status.name
                     for job_id, formula in jobs}
        plan = ServiceFaultPlan(
            crashes={"job-1": 1, "job-7": 1, "job-13": 1},
            kills={"job-3": 1, "job-17": 1},
            hangs={"job-5": 1},
            poisons={"job-9": 1, "job-19": 1},
            delays={"job-11": 0.2},
            kill_after_checkpoints=2)
        config = fast_config(max_workers=4, queue_depth=32,
                             hang_timeout=0.4, default_deadline=20.0)

        async def storm():
            server = SolveServer(config, fault_plan=plan)
            await server.start()

            def submit(job_id, formula):
                return server.handle_message(
                    {"op": "submit", "id": job_id,
                     **clause_payload(formula)})

            first = await asyncio.gather(
                *(submit(job_id, formula)
                  for job_id, formula in jobs))
            second = await asyncio.gather(
                *(submit(job_id + "-replay", formula)
                  for job_id, formula in jobs))
            status = server._status_response(None)
            await server.shutdown(grace=2.0)
            return first, second, status

        first, second, status = asyncio.run(storm())

        terminal = {"result", "rejected"}
        for response in first + second:
            assert response["kind"] in terminal, response
        by_id = {response["id"]: response for response in first}
        for job_id, formula in jobs:
            response = by_id[job_id]
            assert response["kind"] == "result"
            status_name = response["body"]["status"]
            # Degraded UNKNOWNs are allowed; decisive answers must
            # agree with the sequential reference solver.
            if status_name in ("SATISFIABLE", "UNSATISFIABLE"):
                assert status_name == reference[job_id], job_id
        # Faulted jobs recovered through retries, not silence.
        assert by_id["job-1"]["body"]["attempts"] >= 2
        # Round two: every decisive first-round body replays
        # byte-identically from the cache.
        replay = {response["id"]: response for response in second}
        for job_id, formula in jobs:
            original = by_id[job_id]
            replayed = replay[job_id + "-replay"]
            if (original["body"]["status"] in ("SATISFIABLE",
                                               "UNSATISFIABLE")
                    and not original["body"]["degraded"]):
                assert replayed["cached"] is True
                assert (json.dumps(original["body"], sort_keys=True)
                        == json.dumps(replayed["body"],
                                      sort_keys=True))
        # The full cache-stats surface STATUS now exposes: totals are
        # internally consistent even after a fault storm.
        cache = status["cache"]
        assert set(cache) == {"size", "capacity", "hits", "misses",
                              "evictions", "hit_rate"}
        assert cache["hits"] >= 15
        assert cache["misses"] >= len(jobs)   # every first solve missed
        assert 0 <= cache["size"] <= cache["capacity"]
        assert cache["evictions"] >= 0
        lookups = cache["hits"] + cache["misses"]
        assert abs(cache["hit_rate"] - cache["hits"] / lookups) < 1e-3
        assert status["jobs"]["retries"] >= 5


# ----------------------------------------------------------------------
# Observability: streamed progress, metrics exposition, repro top
# ----------------------------------------------------------------------

class TestProgressFrameSchema:
    def frame(self, **override):
        frame = {"kind": "progress", "id": "j", "seq": 0,
                 "attempt": 1, "elapsed": 0.5,
                 "snapshot": {"conflicts": 10, "decisions": 20,
                              "propagations": 300, "restarts": 1,
                              "propagations_per_sec": 600.0,
                              "arena_fill": 0.4}}
        frame.update(override)
        return frame

    def test_valid_frame_passes(self):
        from repro.service import validate_progress_frame
        assert validate_progress_frame(self.frame()) == []

    def test_optional_readings_may_be_absent(self):
        from repro.service import validate_progress_frame
        frame = self.frame(snapshot={"conflicts": 0, "decisions": 0,
                                     "propagations": 0,
                                     "restarts": 0})
        assert validate_progress_frame(frame) == []

    def test_mutations_rejected(self):
        from repro.service import validate_progress_frame
        snapshot = self.frame()["snapshot"]
        mutations = [
            "not a dict",
            self.frame(kind="result"),
            self.frame(id=""),
            self.frame(seq=-1),
            self.frame(seq=True),
            self.frame(attempt=0),
            self.frame(elapsed=-0.1),
            self.frame(elapsed="fast"),
            self.frame(snapshot=None),
            self.frame(snapshot={**snapshot, "conflicts": -1}),
            self.frame(snapshot={**snapshot, "propagations": 1.5}),
            self.frame(snapshot={k: v for k, v in snapshot.items()
                                 if k != "restarts"}),
            self.frame(snapshot={**snapshot, "arena_fill": "full"}),
        ]
        for mutated in mutations:
            assert validate_progress_frame(mutated) != [], mutated


class TestStreamedProgress:
    def stream_config(self, **overrides):
        return fast_config(stream_interval=0.0, **overrides)

    def collect(self, client, job_id, formula, **kwargs):
        timeline = []
        response = client.submit(
            job_id, **clause_payload(formula), stream=True,
            on_progress=lambda f: timeline.append(("frame", f)),
            **kwargs)
        timeline.append(("terminal", response))
        return timeline, response

    def test_streamed_job_yields_valid_frames_before_result(self):
        from repro.service import validate_progress_frame
        with InProcessClient(self.stream_config()) as client:
            timeline, response = self.collect(
                client, "ph", pigeonhole(6), use_cache=False)
        frames = [f for kind, f in timeline if kind == "frame"]
        assert frames, "no progress frames for a non-trivial job"
        assert timeline[-1][0] == "terminal"
        # Every frame precedes the terminal response and validates.
        assert all(kind == "frame" for kind, _ in timeline[:-1])
        for frame in frames:
            assert validate_progress_frame(frame) == [], frame
            assert frame["id"] == "ph"
        assert response["body"]["status"] == "UNSATISFIABLE"

    def test_seq_monotonic_and_counters_nondecreasing(self):
        with InProcessClient(self.stream_config()) as client:
            timeline, _ = self.collect(client, "ph", pigeonhole(6),
                                       use_cache=False)
        frames = [f for kind, f in timeline if kind == "frame"]
        assert [f["seq"] for f in frames] == list(range(len(frames)))
        for attr in ("conflicts", "propagations"):
            values = [f["snapshot"][attr] for f in frames
                      if f["attempt"] == frames[-1]["attempt"]]
            assert values == sorted(values)

    def test_unstreamed_submit_sees_no_frames(self):
        frames = []
        with InProcessClient(self.stream_config()) as client:
            response = client.submit(
                "plain", **clause_payload(pigeonhole(6)),
                use_cache=False, on_progress=frames.append)
        assert response["kind"] == "result"
        assert frames == []

    def test_throttle_limits_relay_rate(self):
        # A coarse stream_interval must relay far fewer frames than
        # the worker produced (whose own interval is 0.0 here).
        with InProcessClient(self.stream_config()) as client:
            eager, _ = self.collect(client, "a", pigeonhole(6),
                                    use_cache=False)
        with InProcessClient(
                fast_config(stream_interval=3600.0)) as client:
            throttled, _ = self.collect(client, "b", pigeonhole(6),
                                        use_cache=False)
        eager_frames = sum(1 for kind, _ in eager if kind == "frame")
        throttled_frames = sum(1 for kind, _ in throttled
                               if kind == "frame")
        # The first frame always relays; after that the server
        # withholds until stream_interval has passed.
        assert 1 <= throttled_frames <= 2
        assert eager_frames > throttled_frames

    def test_parse_submit_stream_flag(self):
        request = parse_submit({"op": "submit", "id": "j",
                                "dimacs": "p cnf 1 1\n1 0\n",
                                "stream": True})
        assert request.stream is True
        assert parse_submit({"op": "submit", "id": "j",
                             "dimacs": "p cnf 1 1\n1 0\n"}).stream \
            is False
        with pytest.raises(ProtocolError):
            parse_submit({"op": "submit", "id": "j",
                          "dimacs": "p cnf 1 1\n1 0\n",
                          "stream": "yes"})


class TestMetricsExposition:
    def scrape(self, client):
        response = client.metrics()
        assert response["kind"] == "metrics"
        return response["text"]

    def test_scrape_lints_and_carries_tenant_series(self):
        from repro.obs import lint_exposition
        from repro.service.top import parse_exposition
        formula = random_ksat(14, 42, seed=21)
        with InProcessClient(fast_config(max_hardness=5000.0)) \
                as client:
            client.submit("m1", **clause_payload(formula),
                          tenant="acme")
            client.submit("m2", **clause_payload(formula),
                          tenant="acme")            # cache hit
            client.submit("m3", **clause_payload(
                random_ksat(30, 90, seed=22)), tenant="big")
            text = self.scrape(client)
        assert lint_exposition(text) == []
        series = parse_exposition(text)
        latency = {labels["tenant"]: value for labels, value in
                   series["service_solve_latency_seconds_count"]}
        assert latency["acme"] == 2.0
        assert latency["big"] == 1.0
        # parse_exposition returns [({}, value)] for label-free series.
        assert series["service_cache_hits_total"][0][1] == 1.0
        assert series["service_cache_hit_rate"][0][1] > 0.0
        assert series["service_workers_max"][0][1] == 2.0

    def test_rejects_counted_by_code(self):
        from repro.service.top import parse_exposition
        formula = random_ksat(30, 90, seed=0)
        with InProcessClient(fast_config(max_hardness=5.0)) as client:
            shed = client.submit("huge", **clause_payload(formula))
            assert shed["kind"] == "rejected"
            text = self.scrape(client)
        series = parse_exposition(text)
        rejects = {(labels["tenant"], labels["code"]): value
                   for labels, value in
                   series["service_rejects_total"]}
        assert rejects[("default", REJECTED_OVERLOAD)] == 1.0

    def test_worker_search_metrics_absorbed_into_solver_aggregate(
            self):
        from repro.service.top import parse_exposition
        # Pigeonhole guarantees conflicts, so the learned-clause
        # histograms cannot come back empty.
        with InProcessClient(fast_config()) as client:
            client.submit("s1", **clause_payload(pigeonhole(5)),
                          use_cache=False)
            text = self.scrape(client)
        series = parse_exposition(text)
        # SearchMetrics histograms ride home in the result stats and
        # merge into solver_-prefixed families.
        assert series["solver_propagation_burst_count"][0][1] > 0
        assert series["solver_learned_clause_size_count"][0][1] > 0

    def test_progress_frames_counted(self):
        from repro.service.top import parse_exposition
        config = fast_config(stream_interval=0.0)
        with InProcessClient(config) as client:
            client.submit("ph", **clause_payload(pigeonhole(6)),
                          use_cache=False, stream=True,
                          on_progress=lambda f: None)
            text = self.scrape(client)
        series = parse_exposition(text)
        assert series["service_progress_frames_total"][0][1] >= 1.0

    def test_status_reports_wdrr_deficits(self):
        with InProcessClient(fast_config()) as client:
            client.submit("d", **clause_payload(
                random_ksat(12, 36, seed=3)))
            status = client.status()
        assert isinstance(status["deficits"], dict)


class TestObservabilityTraceEvents:
    def test_progress_and_metrics_events_validate(self):
        from repro.obs import ListSink, Tracer
        from repro.obs.trace import validate_event

        sink = ListSink()
        config = fast_config(stream_interval=0.0)
        with InProcessClient(config, tracer=Tracer(sink)) as client:
            client.submit("ph", **clause_payload(pigeonhole(6)),
                          use_cache=False, stream=True,
                          on_progress=lambda f: None)
            client.metrics()
        problems = [p for event in sink.events
                    for p in validate_event(event)]
        assert problems == []
        names = [event["name"] for event in sink.events]
        assert "service.progress" in names
        assert "service.metrics" in names
        progress = next(e for e in sink.events
                        if e["name"] == "service.progress")
        assert progress["attrs"]["job"] == "ph"
        assert progress["attrs"]["attempt"] >= 1
        metrics_event = next(e for e in sink.events
                             if e["name"] == "service.metrics")
        assert metrics_event["attrs"]["bytes"] > 0
        assert metrics_event["attrs"]["families"] > 0


class TestWorkerTraceCorrelation:
    def test_profile_merges_server_and_worker_traces(self, tmp_path):
        from repro.obs import JsonlSink, Tracer, profile_traces

        server_path = str(tmp_path / "server.jsonl")
        worker_dir = str(tmp_path / "workers")
        tracer = Tracer(JsonlSink(server_path))
        tracer.emit_meta()
        formula = random_ksat(20, 85, seed=6)

        async def scenario():
            server = SolveServer(fast_config(), tracer=tracer,
                                 worker_trace_dir=worker_dir)
            await server.start()
            response = await server.handle_message(
                {"op": "submit", "id": "traced", "use_cache": False,
                 **clause_payload(formula)})
            await server.shutdown(grace=2.0)
            return response

        response = asyncio.run(scenario())
        tracer.close()
        assert response["kind"] == "result"
        import glob
        import os
        worker_files = sorted(glob.glob(
            os.path.join(worker_dir, "*.jsonl")))
        assert worker_files, "worker wrote no trace file"
        text, problems = profile_traces([server_path] + worker_files)
        assert problems == []
        assert "job timelines (server/worker correlated):" in text
        assert "traced" in text
        assert "attempt 1: solve" in text
        basename = os.path.basename(worker_files[0])
        assert f"[{basename}]" in text


class TestTopDashboard:
    STATUS = {"kind": "status", "draining": False,
              "uptime_seconds": 125.0,
              "queues": {"acme": 2}, "deficits": {"acme": 1.5},
              "queued": 2,
              "workers": {"max": 4, "busy": 3},
              "active": [{"id": "job-9", "tenant": "acme",
                          "running_seconds": 3.25,
                          "heartbeat_age": 0.1}],
              "cache": {"size": 5, "capacity": 256, "hits": 3,
                        "misses": 7, "evictions": 0,
                        "hit_rate": 0.3},
              "jobs": {"done": 10, "rejected": 1, "retries": 2,
                       "cancelled": 0}}
    METRICS = ("# TYPE service_solve_latency_seconds histogram\n"
               'service_solve_latency_seconds_sum{tenant="acme"} 4\n'
               'service_solve_latency_seconds_count{tenant="acme"}'
               " 8\n")

    def test_parse_exposition(self):
        from repro.service.top import parse_exposition
        series = parse_exposition(self.METRICS)
        assert series[
            "service_solve_latency_seconds_count"] == \
            [({"tenant": "acme"}, 8.0)]
        # Comments and garbage are skipped, not fatal.
        assert parse_exposition("# a comment\nnot a sample\n") == {}

    def test_render_dashboard_sections(self):
        from repro.service.top import render_dashboard
        text = render_dashboard(self.STATUS, self.METRICS,
                                throughput=1.25)
        assert "serving" in text
        assert "workers 3/4 busy" in text
        assert "1.25 jobs/s" in text
        assert "10 done, 1 rejected, 2 retries" in text
        assert "3 hits (30%)" in text
        assert "acme" in text
        assert "0.500" in text          # 4s / 8 solves average
        assert "job-9" in text
        assert "heartbeat 0.1s ago" in text

    def test_render_without_metrics_or_activity(self):
        from repro.service.top import render_dashboard
        status = dict(self.STATUS, active=[], queues={}, deficits={},
                      draining=True)
        text = render_dashboard(status)
        assert "DRAINING" in text
        assert "active jobs: none" in text

    def test_run_top_polls_and_returns(self):
        import io
        from repro.service.top import run_top
        with InProcessClient(fast_config()) as client:
            client.submit("t", **clause_payload(
                random_ksat(12, 36, seed=9)))
            out = io.StringIO()
            code = run_top(client, interval=0.0, iterations=2,
                           clear=False, out=out)
        assert code == 0
        rendered = out.getvalue()
        assert rendered.count("repro top --") == 2
        assert "1 done" in rendered

    def test_run_top_reports_lost_connection(self):
        import io

        from repro.service.top import run_top

        class DeadClient:
            def status(self):
                raise ConnectionError("gone")

            def metrics(self):
                raise ConnectionError("gone")

        out = io.StringIO()
        assert run_top(DeadClient(), iterations=1, clear=False,
                       out=out) == 3
        assert "connection lost" in out.getvalue()
