"""Unit tests for repro.circuits.tseitin (paper Section 2, Figure 1)."""

import itertools

import pytest

from conftest import brute_force_models, brute_force_status

from repro.circuits.gates import GateType
from repro.circuits.library import c17, figure1_circuit, half_adder
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import simulate
from repro.circuits.tseitin import (
    add_objective,
    build_miter,
    cone_encoding,
    encode_circuit,
    encode_miter,
    encode_with_objective,
)


class TestEncodeCircuit:
    def test_variables_cover_all_nodes(self):
        circuit = half_adder()
        encoding = encode_circuit(circuit)
        assert set(encoding.var_of) == {"a", "b", "sum", "carry"}
        assert encoding.formula.num_vars == 4

    def test_names_propagated(self):
        encoding = encode_circuit(half_adder())
        names = {encoding.formula.name_of(var)
                 for var in encoding.var_of.values()}
        assert names == {"a", "b", "sum", "carry"}

    def test_models_are_exactly_consistent_assignments(self):
        """Paper Section 2: the circuit CNF denotes the valid
        input-output assignments -- checked exhaustively."""
        circuit = half_adder()
        encoding = encode_circuit(circuit)
        models = {tuple(sorted(m.items()))
                  for m in brute_force_models(encoding.formula)}
        expected = set()
        for a, b in itertools.product([False, True], repeat=2):
            values = simulate(circuit, {"a": a, "b": b})
            model = {encoding.var_of[name]: value
                     for name, value in values.items()}
            expected.add(tuple(sorted(model.items())))
        assert models == expected

    def test_literal_helper(self):
        encoding = encode_circuit(half_adder())
        assert encoding.literal("a", True) == encoding.var_of["a"]
        assert encoding.literal("a", False) == -encoding.var_of["a"]

    def test_shared_formula_composition(self):
        from repro.cnf.formula import CNFFormula
        shared = CNFFormula()
        first = encode_circuit(half_adder(), shared, var_prefix="l_")
        second = encode_circuit(half_adder(), shared, var_prefix="r_")
        assert set(first.var_of.values()).isdisjoint(
            second.var_of.values())

    def test_sequential_state_as_inputs(self):
        circuit = Circuit()
        circuit.add_input("d")
        circuit.add_dff("q", "d")
        circuit.add_gate("g", GateType.NOT, ["q"])
        circuit.set_output("g")
        encoding = encode_circuit(circuit)
        # q is unconstrained (pseudo-input): both values satisfiable.
        formula0 = encoding.formula.copy()
        formula0.add_clause([encoding.literal("q", False)])
        formula1 = encoding.formula.copy()
        formula1.add_clause([encoding.literal("q", True)])
        assert brute_force_status(formula0) == "SAT"
        assert brute_force_status(formula1) == "SAT"


class TestObjectives:
    def test_figure1_with_property(self):
        """Figure 1's 'with property z = 0' construction."""
        encoding = encode_with_objective(figure1_circuit(), {"z": False})
        assert brute_force_status(encoding.formula) == "SAT"

    def test_unreachable_objective_unsat(self):
        # z = AND(w1, w2) with w1 = AND(a,b), x = NOT(w1), w2 = OR(x,c):
        # force z=1 and a=0 -> contradiction.
        encoding = encode_with_objective(figure1_circuit(),
                                         {"z": True, "a": False})
        assert brute_force_status(encoding.formula) == "UNSAT"

    def test_add_objective_appends_units(self):
        encoding = encode_circuit(figure1_circuit())
        before = encoding.formula.num_clauses
        add_objective(encoding, {"z": False, "a": True})
        assert encoding.formula.num_clauses == before + 2

    def test_input_vector_extraction(self):
        from repro.solvers.cdcl import solve_cdcl
        encoding = encode_with_objective(figure1_circuit(), {"z": True})
        result = solve_cdcl(encoding.formula)
        assert result.is_sat
        vector = encoding.input_vector(result.assignment)
        values = simulate(figure1_circuit(),
                          {k: bool(v) for k, v in vector.items()})
        assert values["z"] is True


class TestMiter:
    def test_equivalent_pair_unsat(self):
        encoding = encode_miter(half_adder(), half_adder())
        assert brute_force_status(encoding.formula, max_vars=20) == "UNSAT"

    def test_different_pair_sat(self):
        twisted = Circuit("twisted")
        twisted.add_input("a")
        twisted.add_input("b")
        twisted.add_gate("sum", GateType.XNOR, ["a", "b"])  # wrong gate
        twisted.add_gate("carry", GateType.AND, ["a", "b"])
        twisted.set_output("sum")
        twisted.set_output("carry")
        encoding = encode_miter(half_adder(), twisted)
        assert brute_force_status(encoding.formula, max_vars=20) == "SAT"

    def test_miter_structure(self):
        miter, xors = build_miter(half_adder(), half_adder())
        assert miter.outputs == ["miter_out"]
        assert len(xors) == 2
        assert miter.inputs == ["a", "b"]

    def test_mismatched_inputs_rejected(self):
        other = Circuit()
        other.add_input("x")
        other.add_gate("g", GateType.BUFFER, ["x"])
        other.set_output("g")
        with pytest.raises(ValueError):
            build_miter(half_adder(), other)

    def test_single_output_miter(self):
        single = Circuit("single")
        single.add_input("a")
        single.add_gate("y", GateType.NOT, ["a"])
        single.set_output("y")
        miter, xors = build_miter(single, single)
        assert len(xors) == 1
        miter.validate()


class TestConeEncoding:
    def test_cone_smaller_than_full(self):
        circuit = c17()
        full = encode_circuit(circuit)
        cone = cone_encoding(circuit, ["G22"])
        assert cone.formula.num_vars < full.formula.num_vars

    def test_cone_preserves_function(self):
        circuit = c17()
        cone = cone_encoding(circuit, ["G22"])
        from repro.solvers.cdcl import solve_cdcl
        formula = cone.formula.copy()
        formula.add_clause([cone.literal("G22", True)])
        result = solve_cdcl(formula)
        assert result.is_sat
        vector = {name: bool(result.assignment.value_of(var))
                  if result.assignment.value_of(var) is not None else False
                  for name, var in cone.var_of.items()
                  if cone.circuit.node(name).is_input}
        full_vector = {name: vector.get(name, False)
                       for name in circuit.inputs}
        assert simulate(circuit, full_vector)["G22"] is True
