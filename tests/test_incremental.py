"""Unit tests for repro.solvers.incremental (Section 6)."""

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole
from repro.solvers.incremental import IncrementalSolver


class TestBasics:
    def test_empty_start(self):
        solver = IncrementalSolver()
        assert solver.solve().is_sat

    def test_monotonic_growth(self):
        solver = IncrementalSolver()
        a = solver.new_var()
        b = solver.new_var()
        solver.add_clause([a, b])
        assert solver.solve().is_sat
        solver.add_clause([-a])
        solver.add_clause([-b])
        assert solver.solve().is_unsat

    def test_seed_formula(self, tiny_sat_formula):
        solver = IncrementalSolver(tiny_sat_formula)
        assert solver.solve().is_sat
        assert solver.num_vars == 3

    def test_seed_formula_not_mutated(self, tiny_sat_formula):
        before = tiny_sat_formula.num_clauses
        solver = IncrementalSolver(tiny_sat_formula)
        solver.add_clause([-3])
        assert tiny_sat_formula.num_clauses == before

    def test_call_counter(self):
        solver = IncrementalSolver()
        solver.new_var()
        solver.add_clause([1])
        solver.solve()
        solver.solve()
        assert solver.calls == 2


class TestAssumptions:
    def test_retractable_queries(self, tiny_sat_formula):
        solver = IncrementalSolver(tiny_sat_formula)
        assert solver.solve(assumptions=[-2]).is_unsat  # b forced true
        assert solver.solve(assumptions=[2]).is_sat
        assert solver.solve().is_sat                    # fully retracted

    def test_per_call_stats_are_deltas(self):
        solver = IncrementalSolver(pigeonhole(4))
        first = solver.solve()
        second = solver.solve()
        assert first.is_unsat and second.is_unsat
        # Totals accumulate both calls.
        assert solver.total_stats.conflicts == \
            first.stats.conflicts + second.stats.conflicts

    def test_learning_persists_across_calls(self):
        """The iterative-SAT speedup of [25]: the second, related query
        reuses recorded clauses and needs fewer conflicts."""
        solver = IncrementalSolver(pigeonhole(4))
        first = solver.solve()
        assert solver.learned_clause_count() > 0
        second = solver.solve()
        assert second.stats.conflicts <= first.stats.conflicts

    def test_unsat_not_sticky_for_assumptions(self):
        solver = IncrementalSolver()
        a = solver.new_var()
        solver.add_clause([a])
        assert solver.solve(assumptions=[-a]).is_unsat
        assert solver.solve().is_sat


class TestBudgets:
    def test_per_call_conflict_budget(self):
        solver = IncrementalSolver(pigeonhole(6),
                                   max_conflicts_per_call=2)
        result = solver.solve()
        assert result.is_unknown

    def test_budget_refreshes_each_call(self):
        solver = IncrementalSolver(pigeonhole(4),
                                   max_conflicts_per_call=100000)
        assert solver.solve().is_unsat
        assert solver.solve().is_unsat
