"""Unit tests for repro.cnf.dimacs."""

import io

import pytest

from repro.cnf.dimacs import (
    DimacsError,
    load_dimacs,
    parse_dimacs,
    save_dimacs,
    write_dimacs,
)
from repro.cnf.formula import CNFFormula


BASIC = """c example
p cnf 3 2
1 -3 0
-2 3 0
"""


class TestParse:
    def test_basic(self):
        formula = parse_dimacs(BASIC)
        assert formula.num_vars == 3
        assert formula.num_clauses == 2
        assert [list(c) for c in formula] == [[1, -3], [-2, 3]]

    def test_from_file_object(self):
        formula = parse_dimacs(io.StringIO(BASIC))
        assert formula.num_clauses == 2

    def test_multiline_clause(self):
        formula = parse_dimacs("p cnf 3 1\n1\n2\n3 0\n")
        assert [list(c) for c in formula] == [[1, 2, 3]]

    def test_comments_anywhere(self):
        text = "c top\np cnf 2 2\nc middle\n1 0\nc another\n2 0\n"
        assert parse_dimacs(text).num_clauses == 2

    def test_missing_final_terminator(self):
        formula = parse_dimacs("p cnf 2 1\n1 2")
        assert [list(c) for c in formula] == [[1, 2]]

    def test_satlib_percent_footer(self):
        formula = parse_dimacs("p cnf 1 1\n1 0\n%\n0\n")
        assert formula.num_clauses == 1

    def test_missing_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("1 2 0\n")

    def test_bad_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf x y\n")

    def test_literal_exceeds_universe(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n3 0\n")

    def test_bad_token(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 foo 0\n")

    def test_negative_counts(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf -1 0\n")


class TestWrite:
    def test_roundtrip(self):
        original = parse_dimacs(BASIC)
        again = parse_dimacs(write_dimacs(original))
        assert again == original

    def test_header_counts(self):
        formula = CNFFormula(4)
        formula.add_clause([1, -4])
        text = write_dimacs(formula)
        assert "p cnf 4 1" in text

    def test_comments_emitted(self):
        formula = CNFFormula(1)
        formula.add_clause([1])
        text = write_dimacs(formula, comments=["hello"])
        assert "c hello" in text

    def test_names_as_comments(self):
        formula = CNFFormula()
        formula.new_var("clk")
        formula.add_clause([1])
        assert "c var 1 clk" in write_dimacs(formula)

    def test_sink(self):
        formula = CNFFormula(1)
        formula.add_clause([1])
        sink = io.StringIO()
        text = write_dimacs(formula, sink)
        assert sink.getvalue() == text


class TestFiles:
    def test_save_and_load(self, tmp_path):
        formula = parse_dimacs(BASIC)
        path = str(tmp_path / "test.cnf")
        save_dimacs(formula, path)
        assert load_dimacs(path) == formula
