"""The unified Budget/BudgetMeter API and its engine integrations.

Covers the value-object semantics (validation, remaining_after,
merge_legacy_caps), the amortised meter (counters, deadline, memory,
heartbeat), and the per-engine wiring: CDCL, DPLL, local search,
incremental and recursive learning all honour the same Budget, and
DPLL's historical off-by-one (``>`` where CDCL used ``>=``) stays
fixed.
"""

from __future__ import annotations

import time

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole, random_ksat
from repro.runtime.budget import (
    DEFAULT_CHECK_INTERVAL,
    Budget,
    BudgetMeter,
    merge_legacy_caps,
    process_rss_mb,
)
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import DPLLSolver
from repro.solvers.incremental import IncrementalSolver
from repro.solvers.local_search import solve_gsat, solve_walksat
from repro.solvers.recursive_learning import recursive_learn
from repro.solvers.result import SolverStats, Status


class TestBudgetValueObject:
    def test_default_is_unlimited(self):
        assert Budget().unlimited
        assert not Budget(max_conflicts=5).unlimited
        assert not Budget(wall_seconds=1.0).unlimited

    @pytest.mark.parametrize("field", ["wall_seconds", "max_conflicts",
                                       "max_decisions", "max_flips",
                                       "max_memory_mb"])
    def test_rejects_negative(self, field):
        with pytest.raises(ValueError):
            Budget(**{field: -1})

    def test_remaining_after_shrinks_deadline_only(self):
        budget = Budget(wall_seconds=10.0, max_conflicts=100)
        tail = budget.remaining_after(4.0)
        assert tail.wall_seconds == pytest.approx(6.0)
        assert tail.max_conflicts == 100
        # never negative
        assert budget.remaining_after(99.0).wall_seconds == 0.0
        # no deadline: identity
        counters = Budget(max_conflicts=7)
        assert counters.remaining_after(5.0) is counters

    def test_remaining_after_threads_spent_counters(self):
        # A retried call (supervisor respawn, service retry) hands the
        # prior attempt's consumed counters through `spent`: caps
        # shrink so the retry can never exceed the original envelope.
        budget = Budget(wall_seconds=10.0, max_conflicts=100,
                        max_decisions=500, max_flips=50,
                        max_memory_mb=64.0)
        spent = SolverStats()
        spent.conflicts = 30
        spent.decisions = 100
        spent.flips = 60          # overshoot clamps at zero
        tail = budget.remaining_after(4.0, spent=spent)
        assert tail.wall_seconds == pytest.approx(6.0)
        assert tail.max_conflicts == 70
        assert tail.max_decisions == 400
        assert tail.max_flips == 0
        assert tail.max_memory_mb == 64.0   # a reading, not an allowance

    def test_remaining_after_spent_without_deadline(self):
        # Counter-only budgets shrink too (the old code returned the
        # budget unchanged whenever no deadline was set).
        budget = Budget(max_conflicts=100)
        spent = SolverStats()
        spent.conflicts = 99
        assert budget.remaining_after(0.0, spent=spent) \
            .max_conflicts == 1
        # uncapped axes stay uncapped
        assert budget.remaining_after(0.0, spent=spent) \
            .max_decisions is None

    def test_exhausted_property(self):
        assert not Budget().exhausted
        assert not Budget(wall_seconds=1.0, max_conflicts=5).exhausted
        assert Budget(wall_seconds=0.0).exhausted
        assert Budget(max_conflicts=0).exhausted
        spent = SolverStats()
        spent.conflicts = 10
        assert Budget(max_conflicts=10) \
            .remaining_after(0.0, spent=spent).exhausted

    def test_meter_requires_positive_interval(self):
        with pytest.raises(ValueError):
            Budget().meter(check_interval=0)


class TestMerge:
    def test_nothing_limited_is_none(self):
        assert merge_legacy_caps(None) is None

    def test_legacy_only(self):
        merged = merge_legacy_caps(None, max_conflicts=50)
        assert merged == Budget(max_conflicts=50)

    def test_takes_tighter_cap(self):
        merged = merge_legacy_caps(Budget(max_conflicts=100,
                                          wall_seconds=2.0),
                                   max_conflicts=10)
        assert merged.max_conflicts == 10
        assert merged.wall_seconds == 2.0
        merged = merge_legacy_caps(Budget(max_conflicts=5),
                                   max_conflicts=10)
        assert merged.max_conflicts == 5


class TestMeter:
    def test_counters_are_baseline_relative(self):
        baseline = SolverStats()
        baseline.conflicts = 1000
        meter = Budget(max_conflicts=10).meter(baseline=baseline)
        stats = SolverStats()
        stats.conflicts = 1009
        assert not meter.over_counters(stats)
        stats.conflicts = 1010
        assert meter.over_counters(stats)
        assert meter.blown(stats)
        assert meter.stop_reason == "counters"

    def test_spend_is_amortised(self):
        calls = []
        meter = Budget(wall_seconds=3600).meter(
            on_checkpoint=lambda: calls.append(1), check_interval=100)
        for _ in range(99):
            meter.spend(1)
        assert calls == []
        meter.spend(1)
        assert len(calls) == 1

    def test_spend_inert_without_time_or_memory_limits(self):
        meter = Budget(max_conflicts=5).meter()
        assert not meter._active
        assert meter.spend(10 ** 9) is False

    def test_deadline_latches(self):
        meter = Budget(wall_seconds=0.0).meter(check_interval=1)
        assert meter.spend(1)
        assert meter.stop_reason == "deadline"
        assert meter.blown(SolverStats())
        assert meter.expired()

    def test_memory_ceiling_trips(self):
        rss = process_rss_mb()
        if rss is None:
            pytest.skip("getrusage unavailable")
        meter = Budget(max_memory_mb=rss / 2).meter(check_interval=1)
        assert meter.spend(1)
        assert meter.stop_reason == "memory"

    def test_remaining_budget_shrinks(self):
        meter = Budget(wall_seconds=60.0).meter()
        time.sleep(0.01)
        assert meter.remaining_budget().wall_seconds < 60.0

    def test_expired_false_for_counter_only_budget(self):
        meter = Budget(max_conflicts=1).meter()
        assert not meter.expired()


class TestEngineIntegration:
    def test_cdcl_wall_deadline_returns_unknown(self):
        result = CDCLSolver(pigeonhole(8),
                            budget=Budget(wall_seconds=0.2)).solve()
        assert result.status is Status.UNKNOWN
        assert result.stats.time_seconds < 5.0

    def test_cdcl_budget_conflict_cap(self):
        solver = CDCLSolver(pigeonhole(6),
                            budget=Budget(max_conflicts=10))
        assert solver.solve().status is Status.UNKNOWN
        assert solver.stats.conflicts == 10

    def test_dpll_cdcl_conflict_cutoff_parity(self):
        """Regression: DPLL used ``>`` where CDCL used ``>=``, so the
        two engines stopped one conflict apart for the same cap."""
        formula = pigeonhole(5)
        cap = 10
        cdcl = CDCLSolver(formula, max_conflicts=cap)
        assert cdcl.solve().status is Status.UNKNOWN
        dpll = DPLLSolver(formula, max_conflicts=cap)
        assert dpll.solve().status is Status.UNKNOWN
        assert cdcl.stats.conflicts == cap
        assert dpll.stats.conflicts == cap

    def test_dpll_budget_object(self):
        result = DPLLSolver(pigeonhole(6),
                            budget=Budget(max_conflicts=25)).solve()
        assert result.status is Status.UNKNOWN

    def test_dpll_wall_deadline(self):
        result = DPLLSolver(pigeonhole(9),
                            budget=Budget(wall_seconds=0.2)).solve()
        assert result.status is Status.UNKNOWN

    def test_budget_does_not_change_verdicts(self):
        for seed in range(5):
            formula = random_ksat(12, 40, seed=seed)
            plain = CDCLSolver(formula).solve()
            roomy = CDCLSolver(formula,
                               budget=Budget(wall_seconds=3600,
                                             max_conflicts=10 ** 9)
                               ).solve()
            assert plain.status is roomy.status

    def test_local_search_total_flip_cap(self):
        formula = pigeonhole(5)          # UNSAT: every flip is spent
        for solve in (solve_gsat, solve_walksat):
            result = solve(formula, max_tries=100, max_flips=1000,
                           seed=3, budget=Budget(max_flips=50))
            assert result.status is Status.UNKNOWN
            assert result.stats.flips <= 50 + 1

    def test_local_search_wall_deadline(self):
        result = solve_walksat(pigeonhole(6), max_tries=10 ** 6,
                               max_flips=10 ** 6, seed=1,
                               budget=Budget(wall_seconds=0.2))
        assert result.status is Status.UNKNOWN

    def test_incremental_budget_is_per_call(self):
        solver = IncrementalSolver()
        formula = pigeonhole(6)
        for _ in range(formula.num_vars):
            solver.new_var()
        for clause in formula:
            solver.add_clause(list(clause))
        first = solver.solve(budget=Budget(max_conflicts=10))
        assert first.status is Status.UNKNOWN
        # The second call gets a fresh 10-conflict allowance despite
        # the conflicts already accumulated on the persistent engine.
        second = solver.solve(budget=Budget(max_conflicts=10))
        assert second.status is Status.UNKNOWN
        # And an unbudgeted call still finishes the proof.
        assert solver.solve().status is Status.UNSATISFIABLE

    def test_recursive_learning_budget_partial_but_sound(self):
        formula = pigeonhole(4)
        full = recursive_learn(formula, {}, depth=2)
        cut = recursive_learn(formula, {}, depth=2,
                              budget=Budget(wall_seconds=0.0))
        assert cut.exhausted
        assert not full.exhausted
        # Everything the truncated pass derived, the full pass agrees
        # with (partial results stay sound).
        for var, value in cut.necessary.items():
            assert full.necessary.get(var) == value

    def test_default_check_interval_sane(self):
        assert DEFAULT_CHECK_INTERVAL >= 256


class TestCheckpointHook:
    def test_on_checkpoint_fires_during_search(self):
        beats = []
        solver = CDCLSolver(pigeonhole(6))
        solver.on_checkpoint = lambda: beats.append(time.monotonic())
        # Hook alone (no budget) must still create a meter and fire.
        assert solver.solve().status is Status.UNSATISFIABLE
        assert beats, "checkpoint callback never fired"

    def test_meter_direct_heartbeat(self):
        beats = []
        meter = BudgetMeter(Budget(), on_checkpoint=lambda:
                            beats.append(1), check_interval=10)
        meter.spend(10)
        meter.spend(10)
        assert len(beats) == 2
