"""Unit tests for repro.circuits.faults."""

import pytest

from repro.circuits.faults import (
    StuckAtFault,
    collapse_equivalent,
    detects,
    fault_simulate,
    full_fault_list,
    inject_fault,
)
from repro.circuits.library import c17, half_adder, redundant_or_chain
from repro.circuits.simulate import simulate


class TestFaultList:
    def test_counts(self):
        circuit = half_adder()    # 2 PIs + 2 gates
        assert len(full_fault_list(circuit)) == 8
        assert len(full_fault_list(circuit, include_inputs=False)) == 4

    def test_ordering_and_str(self):
        fault = StuckAtFault("g", True)
        assert str(fault) == "g/sa1"
        assert StuckAtFault("a", False) < fault


class TestInjectFault:
    def test_gate_output_fault(self):
        circuit = half_adder()
        faulty = inject_fault(circuit, StuckAtFault("carry", True))
        faulty.validate()
        values = simulate(faulty, {"a": False, "b": False})
        assert values["__fault__"] is True

    def test_interface_preserved(self):
        circuit = c17()
        faulty = inject_fault(circuit, StuckAtFault("G10", False))
        assert faulty.inputs == circuit.inputs
        assert len(faulty.outputs) == len(circuit.outputs)

    def test_downstream_sees_fault(self):
        circuit = half_adder()
        faulty = inject_fault(circuit, StuckAtFault("a", False))
        values = simulate(faulty, {"a": True, "b": True})
        # sum = XOR(fault, b) = XOR(0, 1) = 1; carry = AND(0,1) = 0
        assert values["sum"] is True
        assert values["carry"] is False

    def test_po_fault_redirects_output(self):
        circuit = half_adder()
        faulty = inject_fault(circuit, StuckAtFault("sum", True))
        assert "__fault__" in faulty.outputs

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            inject_fault(half_adder(), StuckAtFault("ghost", True))


class TestDetects:
    def test_detectable_fault(self):
        circuit = half_adder()
        # carry/sa1 detected by a=0,b=0 (good carry 0, faulty 1).
        assert detects(circuit, StuckAtFault("carry", True),
                       {"a": False, "b": False})

    def test_not_detected_by_masking_vector(self):
        circuit = half_adder()
        # carry/sa1 NOT detected by a=1,b=1 (good carry already 1).
        assert not detects(circuit, StuckAtFault("carry", True),
                           {"a": True, "b": True})

    def test_redundant_fault_never_detected(self):
        circuit = redundant_or_chain()   # y == a regardless of ab
        fault = StuckAtFault("ab", False)
        for a in (False, True):
            for b in (False, True):
                assert not detects(circuit, fault, {"a": a, "b": b})


class TestFaultSimulate:
    def test_first_detection_indices(self):
        circuit = half_adder()
        vectors = [{"a": True, "b": True}, {"a": False, "b": False}]
        result = fault_simulate(
            circuit,
            [StuckAtFault("carry", True), StuckAtFault("carry", False)],
            vectors)
        assert result[StuckAtFault("carry", False)] == 0
        assert result[StuckAtFault("carry", True)] == 1

    def test_undetected_is_none(self):
        circuit = redundant_or_chain()
        vectors = [{"a": a, "b": b}
                   for a in (False, True) for b in (False, True)]
        result = fault_simulate(circuit, [StuckAtFault("ab", False)],
                                vectors)
        assert result[StuckAtFault("ab", False)] is None


class TestCollapse:
    def test_collapsed_list_is_smaller(self):
        circuit = c17()
        faults = full_fault_list(circuit)
        collapsed = collapse_equivalent(circuit, faults)
        assert len(collapsed) < len(faults)

    def test_collapse_preserves_detectability_universe(self):
        """Every collapsed-away fault has an equivalent representative:
        any complete test set for the collapsed list detects the full
        list (checked by exhaustive simulation on c17)."""
        import itertools
        circuit = c17()
        names = circuit.inputs
        all_vectors = [
            {name: bool((index >> bit) & 1)
             for bit, name in enumerate(names)}
            for index in range(1 << len(names))]
        full = full_fault_list(circuit)
        collapsed = set(collapse_equivalent(circuit, full))

        def detecting_set(fault):
            return frozenset(
                index for index, vector in enumerate(all_vectors)
                if detects(circuit, fault, vector))

        for fault in full:
            if fault in collapsed:
                continue
            mine = detecting_set(fault)
            assert any(detecting_set(kept) == mine for kept in collapsed)
