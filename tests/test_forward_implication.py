"""Unit tests for repro.solvers.forward_implication (Figure 3)."""

import pytest

from conftest import brute_force_status

from repro.cnf.clause import Clause
from repro.circuits.gates import GateType
from repro.circuits.library import c17, figure3_circuit
from repro.circuits.netlist import Circuit
from repro.circuits.tseitin import encode_circuit
from repro.solvers.forward_implication import (
    ForwardImplicationEngine,
    ImplicationConflict,
)


class TestForwardPropagation:
    def test_simple_chain(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("n", GateType.NOT, ["a"])
        circuit.add_gate("y", GateType.BUFFER, ["n"])
        circuit.set_output("y")
        engine = ForwardImplicationEngine(circuit)
        engine.assign("a", True)
        implied = engine.propagate()
        assert set(implied) == {"n", "y"}
        assert engine.value("y") is False

    def test_controlling_value_implies_early(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g", GateType.AND, ["a", "b"])
        circuit.set_output("g")
        engine = ForwardImplicationEngine(circuit)
        engine.assign("a", False)
        engine.propagate()
        assert engine.value("g") is False     # b still unknown

    def test_no_backward_implication(self):
        """The defining limitation: output objectives do not constrain
        inputs (contrast with CNF BCP)."""
        circuit = figure3_circuit()
        engine = ForwardImplicationEngine(circuit)
        engine.assign("y3", False)
        engine.propagate()
        assert engine.value("x1") is None
        assert engine.value("y1") is None

    def test_reassign_same_value_ok(self):
        engine = ForwardImplicationEngine(figure3_circuit())
        engine.assign("w", True)
        engine.assign("w", True)

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            ForwardImplicationEngine(figure3_circuit()).assign(
                "ghost", True)

    def test_reset_and_unassign(self):
        engine = ForwardImplicationEngine(figure3_circuit())
        engine.assign("w", True)
        engine.unassign("w")
        assert engine.value("w") is None
        engine.assign("w", False)
        engine.reset()
        assert engine.value("w") is None


class TestFigure3Conflict:
    """The paper's worked conflict-analysis example, end to end."""

    def setup_method(self):
        self.circuit = figure3_circuit()
        self.encoding = encode_circuit(self.circuit)
        self.engine = ForwardImplicationEngine(self.circuit,
                                               self.encoding)

    def test_conflict_detected(self):
        self.engine.assign("w", True)
        self.engine.assign("y3", False)
        self.engine.propagate()
        self.engine.assign("x1", True)
        with pytest.raises(ImplicationConflict):
            self.engine.propagate()

    def test_conflict_clause_matches_paper(self):
        """Diagnosis must produce exactly (x1' + w' + y3)."""
        self.engine.assign("w", True)
        self.engine.assign("y3", False)
        self.engine.propagate()
        self.engine.assign("x1", True)
        with pytest.raises(ImplicationConflict) as info:
            self.engine.propagate()
        expected = Clause([
            self.encoding.literal("x1", False),
            self.encoding.literal("w", False),
            self.encoding.literal("y3", True),
        ])
        assert info.value.clause == expected

    def test_conflict_clause_is_implicate(self):
        """The recorded clause must be entailed by the circuit CNF."""
        self.engine.assign("w", True)
        self.engine.assign("y3", False)
        self.engine.propagate()
        self.engine.assign("x1", True)
        with pytest.raises(ImplicationConflict) as info:
            self.engine.propagate()
        probe = self.encoding.formula.copy()
        for lit in info.value.clause:
            probe.add_clause([-lit])
        assert brute_force_status(probe) == "UNSAT"

    def test_direct_assign_conflict(self):
        self.engine.assign("x1", True)
        self.engine.assign("w", True)
        self.engine.propagate()            # y3 implied 1
        with pytest.raises(ImplicationConflict):
            self.engine.assign("y3", False)


class TestAgainstSimulation:
    def test_full_assignment_matches_simulation(self):
        from repro.circuits.simulate import simulate
        circuit = c17()
        engine = ForwardImplicationEngine(circuit)
        vector = {name: (index % 2 == 0)
                  for index, name in enumerate(circuit.inputs)}
        for name, value in vector.items():
            engine.assign(name, value)
        engine.propagate()
        expected = simulate(circuit, vector)
        for name in circuit.topological_order():
            assert engine.value(name) == expected[name]
