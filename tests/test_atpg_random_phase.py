"""Tests for the random-pattern phase of the ATPG engine."""

from repro.apps.atpg import ATPGEngine, TestOutcome
from repro.circuits.faults import detects
from repro.circuits.generators import ripple_carry_adder
from repro.circuits.library import c17, redundant_or_chain


class TestRandomPatternPhase:
    def test_full_coverage_retained(self):
        engine = ATPGEngine(ripple_carry_adder(3), random_patterns=32)
        report = engine.run()
        assert report.fault_coverage == 1.0

    def test_random_phase_reduces_sat_detections(self):
        cold = ATPGEngine(c17(), random_patterns=0,
                          fault_dropping=False).run()
        warm = ATPGEngine(c17(), random_patterns=64,
                          fault_dropping=False).run()
        assert warm.count(TestOutcome.DETECTED) <= \
            cold.count(TestOutcome.DETECTED)
        assert warm.count(TestOutcome.DETECTED_BY_SIMULATION) > 0
        assert warm.fault_coverage == 1.0

    def test_random_vectors_recorded_and_detect(self):
        circuit = c17()
        engine = ATPGEngine(circuit, random_patterns=64,
                            fault_dropping=False)
        report = engine.run()
        sim_detected = [r.fault for r in report.results
                        if r.outcome is
                        TestOutcome.DETECTED_BY_SIMULATION]
        for fault in sim_detected:
            assert any(detects(circuit, fault, vector)
                       for vector in report.vectors), fault

    def test_redundant_faults_survive_random_phase(self):
        report = ATPGEngine(redundant_or_chain(),
                            random_patterns=128).run()
        assert report.count(TestOutcome.REDUNDANT) == 3

    def test_deterministic_given_seed(self):
        first = ATPGEngine(c17(), random_patterns=16, seed=9).run()
        second = ATPGEngine(c17(), random_patterns=16, seed=9).run()
        assert [r.outcome for r in first.results] == \
            [r.outcome for r in second.results]
        assert first.vectors == second.vectors
