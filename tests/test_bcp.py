"""Cross-backend BCP pinning suite (PR 9).

The batch counter kernels (``repro.solvers.bcp``) promise *byte-
identical search paths* between the numpy and pure-python
implementations -- same decisions, conflicts, propagations, and the
same per-clause slack counters at every quiescent point.  Watch-mode
is a different discipline (watch examination order is history-
dependent), so against it only verdict equality holds in general,
plus full path equality on conflict-free propagation where BCP
closure is confluent.  These tests pin exactly those contracts,
including across arena-GC compactions and incremental solving.
"""

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole, random_ksat_at_ratio
from repro.solvers.bcp import (
    PROPAGATION_NAMES,
    propagation_available,
    resolve_propagation,
)
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.heuristics import VSIDSHeuristic
from repro.solvers.restarts import make_restart_policy
from repro.solvers.result import Status


def _solver(formula, backend, **kw):
    return CDCLSolver(formula, heuristic=VSIDSHeuristic(seed=0),
                      restart_policy=make_restart_policy("luby", 64),
                      phase_saving=True, propagation=backend, **kw)


def _path(stats):
    """The search-path fingerprint the counter kernels must share."""
    return (stats.decisions, stats.conflicts, stats.propagations,
            stats.learned_clauses, stats.restarts, stats.backtracks)


def _slack_vector(solver):
    """The propagator's per-clause slack counters, kernel-agnostic."""
    bcp = solver._bcp
    if bcp.kernel == "python":
        return [int(x) for x in bcp._slack_list]
    return [int(x) for x in bcp._slack[:bcp._ncl]]


DELETION = dict(deletion="size", deletion_bound=5, deletion_interval=150)

INSTANCES = [
    ("rksat-90", lambda: random_ksat_at_ratio(90, 4.27, 3, seed=7)),
    ("rksat-sat-100", lambda: random_ksat_at_ratio(100, 4.0, 3,
                                                   seed=100)),
    ("php-5", lambda: pigeonhole(5)),
]

CONFIGS = [
    ("plain", {}),
    ("deletion", DELETION),
]


class TestResolve:
    def test_auto_is_watch(self):
        assert resolve_propagation("auto") == "watch"
        assert resolve_propagation("watch") == "watch"
        assert resolve_propagation() == "watch"

    def test_python_always_available(self):
        assert resolve_propagation("python") == "python"

    def test_numpy_degrades_not_raises(self):
        # "numpy" means "counter discipline, best kernel available":
        # it must resolve to a counter kernel either way, never raise.
        assert resolve_propagation("numpy") in ("numpy", "python")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_propagation("gpu")

    def test_available_names_are_valid(self):
        backends = propagation_available()
        assert backends[0] == "watch"
        assert len(backends) == 2
        assert all(b in PROPAGATION_NAMES for b in backends)

    def test_backend_recorded_in_stats(self):
        formula = random_ksat_at_ratio(30, 3.0, 3, seed=1)
        for backend in ("watch", "python", "numpy"):
            result = _solver(formula, backend).solve()
            assert result.stats.bcp_backend == \
                resolve_propagation(backend)


class TestCounterKernelParity:
    """numpy and python counter kernels: byte-identical search paths
    AND identical per-clause counter vectors, with and without an
    active deletion policy (arena GC rebuilds the occurrence index)."""

    @pytest.mark.parametrize("iname,build",
                             INSTANCES, ids=[n for n, _ in INSTANCES])
    @pytest.mark.parametrize("cname,kw",
                             CONFIGS, ids=[n for n, _ in CONFIGS])
    def test_paths_and_counters_pinned(self, iname, build, cname, kw):
        formula = build()
        runs = {}
        for backend in ("numpy", "python"):
            solver = _solver(formula, backend, **kw)
            result = solver.solve()
            runs[backend] = (result, solver)
        np_result, np_solver = runs["numpy"]
        py_result, py_solver = runs["python"]
        assert np_result.status is py_result.status
        assert _path(np_result.stats) == _path(py_result.stats)
        assert np_solver._bcp.counted == py_solver._bcp.counted
        assert _slack_vector(np_solver) == _slack_vector(py_solver)
        # Watch-mode must agree on the verdict (paths may differ).
        watch_result = _solver(formula, "watch", **kw).solve()
        assert watch_result.status is np_result.status
        if np_result.status is Status.SATISFIABLE:
            assert formula.is_satisfied_by(np_result.assignment)
            assert formula.is_satisfied_by(watch_result.assignment)

    def test_assumption_parity(self):
        formula = pigeonhole(5)
        assumptions = [1, -2]
        paths = {}
        for backend in ("watch", "numpy", "python"):
            result = _solver(formula, backend).solve(assumptions)
            paths[backend] = (result.status, _path(result.stats))
        assert paths["numpy"] == paths["python"]
        assert paths["watch"][0] is paths["numpy"][0]


class TestWatchCounterConflictFree:
    """Where order cannot matter -- conflict-free propagation, whose
    closure is confluent -- watch-mode and the counter kernels must
    agree bit for bit: same model, same propagation count, zero
    conflicts everywhere."""

    def _chain_formula(self, n=30):
        formula = CNFFormula(n + 2)
        formula.add_clause([1])                       # root unit
        for i in range(1, n):
            formula.add_clause([-i, i + 1])           # binary chain
        # Ternary clauses engage the counter path proper (binaries
        # ride the shared _bins fast path in every backend).
        formula.add_clause([-1, -2, n + 1])
        formula.add_clause([-(n // 2), -n, n + 2])
        return formula

    def test_identical_closure(self):
        formula = self._chain_formula()
        outcomes = {}
        for backend in ("watch", "numpy", "python"):
            result = _solver(formula, backend).solve()
            assert result.status is Status.SATISFIABLE
            assert result.stats.conflicts == 0
            outcomes[backend] = (
                result.stats.propagations,
                tuple(sorted(result.assignment.to_literals())))
        assert outcomes["watch"] == outcomes["numpy"]
        assert outcomes["numpy"] == outcomes["python"]


class TestArenaGCInterleaving:
    """The occurrence index must survive compaction renumbering: a
    deletion policy aggressive enough to force mid-solve GC, solved on
    the numpy backend, still refutes -- and still matches the python
    kernel's path and counters exactly."""

    def test_forced_compaction_mid_solve(self):
        kw = dict(deletion="size", deletion_bound=4,
                  deletion_interval=100)
        solvers = {}
        for backend in ("numpy", "python"):
            solver = _solver(pigeonhole(6), backend, **kw)
            result = solver.solve()
            assert result.status is Status.UNSATISFIABLE
            assert result.stats.gc_runs >= 1, \
                "config failed to force a mid-solve compaction"
            solvers[backend] = (result, solver)
        np_result, np_solver = solvers["numpy"]
        py_result, py_solver = solvers["python"]
        assert _path(np_result.stats) == _path(py_result.stats)
        assert np_result.stats.gc_runs == py_result.stats.gc_runs
        assert _slack_vector(np_solver) == _slack_vector(py_solver)

    def test_incremental_across_compactions(self):
        """Clause addition between solve calls (incremental O(len)
        appends, overflow lists) interleaved with >= 2 arena
        compactions, on the numpy backend vs the python kernel."""
        from repro.solvers.incremental import IncrementalSolver

        base = pigeonhole(6)
        clauses = [list(c) for c in base.clauses]
        split = len(clauses) - 6
        engines = {}
        for backend in ("numpy", "python"):
            inc = IncrementalSolver(
                heuristic=VSIDSHeuristic(seed=0),
                restart_policy=make_restart_policy("luby", 64),
                phase_saving=True, propagation=backend,
                deletion="size", deletion_bound=4,
                deletion_interval=100)
            while inc.num_vars < base.num_vars:
                inc.new_var()
            inc.add_clauses(clauses[:split])
            statuses = [inc.solve().status]
            inc.add_clauses(clauses[split:])
            statuses.append(inc.solve().status)
            assert statuses[-1] is Status.UNSATISFIABLE
            assert inc.total_stats.gc_runs >= 2, \
                "expected at least two compactions across the calls"
            engines[backend] = (tuple(statuses),
                                _path(inc.total_stats),
                                inc.total_stats.gc_runs)
        assert engines["numpy"] == engines["python"]


class TestPortfolioSlot:
    def test_default_portfolio_has_bcp_slots(self):
        from repro.solvers.portfolio import default_portfolio
        configs = default_portfolio(8)
        tagged = [c for c in configs if "-bcp" in c.name]
        assert tagged, "no -bcp slot in the default portfolio"
        assert all(c.propagation == "numpy" for c in tagged)
        assert configs[0].propagation == "watch"
        formula = random_ksat_at_ratio(20, 3.0, 3, seed=3)
        solver = tagged[0].build_solver(formula)
        assert solver.bcp_backend in ("numpy", "python")
