"""Unit tests for repro.apps.atpg (Section 3)."""

import pytest

from repro.apps.atpg import (
    ATPGEngine,
    ATPGReport,
    FaultResult,
    IncrementalATPG,
    TestOutcome,
    solve_fault,
)
from repro.circuits.faults import StuckAtFault, detects, full_fault_list
from repro.circuits.library import c17, half_adder, redundant_or_chain
from repro.circuits.generators import ripple_carry_adder


class TestSolveFault:
    def test_detectable_fault_yields_vector(self):
        circuit = half_adder()
        result = solve_fault(circuit, StuckAtFault("carry", True))
        assert result.outcome is TestOutcome.DETECTED
        vector = {k: bool(v) for k, v in result.vector.items()}
        assert detects(circuit, StuckAtFault("carry", True), vector)

    def test_redundant_fault_proved(self):
        circuit = redundant_or_chain()
        result = solve_fault(circuit, StuckAtFault("ab", False))
        assert result.outcome is TestOutcome.REDUNDANT

    def test_input_fault(self):
        circuit = half_adder()
        fault = StuckAtFault("a", False)
        result = solve_fault(circuit, fault)
        assert result.outcome is TestOutcome.DETECTED
        vector = {k: bool(v) for k, v in result.vector.items()}
        assert detects(circuit, fault, vector)

    def test_circuit_method_partial_cube(self):
        circuit = c17()
        fault = StuckAtFault("G10", True)
        result = solve_fault(circuit, fault, method="circuit")
        assert result.outcome is TestOutcome.DETECTED
        # The cube (don't-cares filled arbitrarily) must detect.
        for fill in (False, True):
            vector = {k: (fill if v is None else bool(v))
                      for k, v in result.vector.items()}
            assert detects(circuit, fault, vector)

    def test_all_c17_faults_testable(self):
        """c17 is known fully testable: every stuck-at fault has a
        test."""
        circuit = c17()
        for fault in full_fault_list(circuit):
            result = solve_fault(circuit, fault)
            assert result.outcome is TestOutcome.DETECTED, fault


class TestATPGEngine:
    def test_full_coverage_on_c17(self):
        report = ATPGEngine(c17()).run()
        assert report.fault_coverage == 1.0
        assert report.count(TestOutcome.REDUNDANT) == 0

    def test_vectors_detect_their_faults(self):
        circuit = c17()
        engine = ATPGEngine(circuit, fault_dropping=False)
        report = engine.run()
        detected = [r for r in report.results
                    if r.outcome is TestOutcome.DETECTED]
        assert len(detected) == len(report.vectors)
        for result, vector in zip(detected, report.vectors):
            assert detects(circuit, result.fault, vector)

    def test_fault_dropping_reduces_sat_calls(self):
        circuit = c17()
        dropped = ATPGEngine(circuit, fault_dropping=True).run()
        assert dropped.count(TestOutcome.DETECTED_BY_SIMULATION) > 0
        assert len(dropped.vectors) < len(full_fault_list(circuit))
        assert dropped.fault_coverage == 1.0

    def test_collapse_shrinks_fault_list(self):
        engine = ATPGEngine(c17(), collapse=True)
        assert len(engine.fault_list()) < len(full_fault_list(c17()))

    def test_redundancy_reported(self):
        report = ATPGEngine(redundant_or_chain()).run()
        assert report.count(TestOutcome.REDUNDANT) >= 1
        assert report.fault_coverage == 1.0   # redundant counts covered

    def test_sequential_rejected(self):
        from repro.circuits.generators import binary_counter
        with pytest.raises(ValueError):
            ATPGEngine(binary_counter(2))

    def test_explicit_fault_subset(self):
        circuit = c17()
        faults = [StuckAtFault("G10", False), StuckAtFault("G10", True)]
        report = ATPGEngine(circuit).run(faults)
        assert len(report.results) == 2

    def test_report_helpers(self):
        report = ATPGReport(results=[
            FaultResult(StuckAtFault("x", True), TestOutcome.DETECTED),
            FaultResult(StuckAtFault("x", False), TestOutcome.ABORTED),
        ])
        assert report.count(TestOutcome.DETECTED) == 1
        assert report.fault_coverage == 0.5
        assert ATPGReport().fault_coverage == 1.0


class TestIncrementalATPG:
    def test_matches_oneshot_outcomes(self):
        circuit = c17()
        incremental = IncrementalATPG(circuit)
        for fault in full_fault_list(circuit):
            one_shot = solve_fault(circuit, fault)
            shared = incremental.solve_fault(fault)
            assert shared.outcome == one_shot.outcome, fault
            if shared.outcome is TestOutcome.DETECTED:
                vector = {k: bool(v) for k, v in shared.vector.items()}
                assert detects(circuit, fault, vector)

    def test_redundant_via_incremental(self):
        engine = IncrementalATPG(redundant_or_chain())
        result = engine.solve_fault(StuckAtFault("ab", False))
        assert result.outcome is TestOutcome.REDUNDANT

    def test_structurally_undetectable(self):
        # A gate feeding no output: fanout cone has no outputs.
        from repro.circuits.netlist import Circuit
        from repro.circuits.gates import GateType
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("dead", GateType.NOT, ["a"])
        circuit.add_gate("y", GateType.BUFFER, ["a"])
        circuit.set_output("y")
        engine = IncrementalATPG(circuit)
        result = engine.solve_fault(StuckAtFault("dead", True))
        assert result.outcome is TestOutcome.REDUNDANT

    def test_run_over_list(self):
        report = IncrementalATPG(half_adder()).run()
        assert report.fault_coverage == 1.0

    def test_adder_coverage(self):
        circuit = ripple_carry_adder(2)
        report = IncrementalATPG(circuit).run()
        assert report.fault_coverage == 1.0
        assert report.count(TestOutcome.ABORTED) == 0
