"""Unit tests for repro.cnf.cardinality."""

import itertools

import pytest

from repro.cnf.cardinality import (
    at_least_k,
    at_most_k,
    at_most_one_pairwise,
    exactly_k,
    exactly_one,
)
from repro.cnf.formula import CNFFormula


def models_over(formula, base_vars):
    """Project the satisfying assignments onto the first *base_vars*
    variables (auxiliaries are existentially quantified)."""
    projections = set()
    n = formula.num_vars
    for bits in itertools.product([False, True], repeat=n):
        model = {var: bits[var - 1] for var in range(1, n + 1)}
        if formula.evaluate(model) is True:
            projections.add(tuple(bits[:base_vars]))
    return projections


def expected_counts(n, predicate):
    return {bits for bits in itertools.product([False, True], repeat=n)
            if predicate(sum(bits))}


class TestAtMostOne:
    def test_pairwise_semantics(self):
        formula = CNFFormula(3)
        at_most_one_pairwise(formula, [1, 2, 3])
        assert models_over(formula, 3) == expected_counts(
            3, lambda c: c <= 1)

    def test_exactly_one_semantics(self):
        formula = CNFFormula(3)
        exactly_one(formula, [1, 2, 3])
        assert models_over(formula, 3) == expected_counts(
            3, lambda c: c == 1)

    def test_exactly_one_empty_rejected(self):
        with pytest.raises(ValueError):
            exactly_one(CNFFormula(), [])


class TestAtMostK:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 3), (4, 1)])
    def test_semantics(self, n, k):
        formula = CNFFormula(n)
        at_most_k(formula, list(range(1, n + 1)), k)
        assert models_over(formula, n) == expected_counts(
            n, lambda c: c <= k)

    def test_bound_zero(self):
        formula = CNFFormula(3)
        at_most_k(formula, [1, 2, 3], 0)
        assert models_over(formula, 3) == {(False, False, False)}

    def test_bound_at_n_is_noop(self):
        formula = CNFFormula(2)
        at_most_k(formula, [1, 2], 2)
        assert formula.num_clauses == 0

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            at_most_k(CNFFormula(2), [1, 2], -1)

    def test_negative_literals(self):
        # at most one of {x1', x2'} false-valued variables
        formula = CNFFormula(2)
        at_most_k(formula, [-1, -2], 1)
        assert (False, False) not in models_over(formula, 2)
        assert (True, True) in models_over(formula, 2)


class TestAtLeastK:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (4, 3)])
    def test_semantics(self, n, k):
        formula = CNFFormula(n)
        at_least_k(formula, list(range(1, n + 1)), k)
        assert models_over(formula, n) == expected_counts(
            n, lambda c: c >= k)

    def test_bound_zero_noop(self):
        formula = CNFFormula(2)
        at_least_k(formula, [1, 2], 0)
        assert formula.num_clauses == 0

    def test_impossible_bound(self):
        formula = CNFFormula(2)
        at_least_k(formula, [1, 2], 3)
        assert models_over(formula, 2) == set()


class TestExactlyK:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2)])
    def test_semantics(self, n, k):
        formula = CNFFormula(n)
        exactly_k(formula, list(range(1, n + 1)), k)
        assert models_over(formula, n) == expected_counts(
            n, lambda c: c == k)
