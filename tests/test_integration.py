"""Cross-module integration tests: full EDA flows end to end."""

from repro import (
    ATPGEngine,
    CDCLSolver,
    IncrementalATPG,
    check_equivalence,
    check_safety,
    encode_with_objective,
    solve_circuit,
)
from repro.apps.atpg import TestOutcome
from repro.apps.delay import compute_delay
from repro.apps.fvg import generate_vectors, toggle_goals
from repro.apps.redundancy import optimize
from repro.circuits.bench_format import parse_bench, write_bench
from repro.circuits.faults import detects, full_fault_list
from repro.circuits.generators import (
    binary_counter,
    carry_select_adder,
    random_circuit,
    ripple_carry_adder,
)
from repro.circuits.library import c17
from repro.circuits.simulate import simulate
from repro.cnf.dimacs import parse_dimacs, write_dimacs


class TestATPGThenEquivalence:
    """Tests generated for a buggy circuit must distinguish it from
    the good one, and equivalence checking must agree."""

    def test_atpg_vectors_expose_mutation(self):
        from repro.apps.equivalence import mutate_circuit
        circuit = c17()
        mutated = mutate_circuit(circuit, seed=2)
        report = check_equivalence(circuit, mutated,
                                   simulation_vectors=0)
        if report.equivalent:
            return   # mutation preserved function; nothing to expose
        atpg = ATPGEngine(circuit).run()
        exposed = any(
            simulate(circuit, vector)[out] !=
            simulate(mutated, vector)[out]
            for vector in atpg.vectors
            for out in circuit.outputs)
        # 100% stuck-at coverage usually (not always) exposes a single
        # gate swap; at minimum the counterexample from CEC must.
        vector = report.counterexample
        assert any(simulate(circuit, vector)[out] !=
                   simulate(mutated, vector)[out]
                   for out in circuit.outputs)
        assert exposed or True


class TestRedundancyThenATPG:
    def test_optimized_circuit_fully_testable(self):
        """After redundancy removal every remaining fault has a test
        (the whole point of redundancy elimination for testing)."""
        from repro.circuits.library import redundant_or_chain
        optimized, report = optimize(redundant_or_chain())
        assert report.equivalent is True
        # Inputs disconnected by the optimization stay in the interface
        # but their faults are trivially undetectable -- exclude them.
        engine = ATPGEngine(optimized)
        faults = [fault for fault in engine.fault_list()
                  if optimized.fanout(fault.node)
                  or fault.node in optimized.outputs]
        atpg = engine.run(faults)
        assert atpg.count(TestOutcome.REDUNDANT) == 0
        assert atpg.fault_coverage == 1.0


class TestRoundTripPipelines:
    def test_bench_to_cnf_to_solver(self):
        """bench text -> Circuit -> CNF -> DIMACS -> parse -> solve."""
        text = write_bench(c17())
        circuit = parse_bench(text)
        encoding = encode_with_objective(circuit, {"G23": True})
        dimacs = write_dimacs(encoding.formula)
        formula = parse_dimacs(dimacs)
        result = CDCLSolver(formula).solve()
        assert result.is_sat
        vector = {name: bool(result.assignment.value_of(var))
                  for name, var in encoding.var_of.items()
                  if circuit.node(name).is_input}
        assert simulate(circuit, vector)["G23"] is True

    def test_generated_circuit_roundtrip_equivalence(self):
        circuit = random_circuit(5, 20, seed=8)
        again = parse_bench(write_bench(circuit))
        report = check_equivalence(circuit, again)
        assert report.equivalent is True


class TestFullFlowOnAdders:
    def test_design_flow(self):
        """Model a small design flow: implement (CSA), verify against
        spec (RCA), test (ATPG), time (delay), cover (FVG)."""
        spec = ripple_carry_adder(3)
        impl = carry_select_adder(3)

        verification = check_equivalence(spec, impl)
        assert verification.equivalent is True

        atpg = ATPGEngine(impl, collapse=True).run()
        assert atpg.fault_coverage > 0.95

        timing = compute_delay(spec)
        assert timing.sensitizable_delay is not None
        assert timing.sensitizable_delay <= timing.topological_delay

        coverage = generate_vectors(spec, seed=0)
        assert coverage.coverage(len(toggle_goals(spec))) == 1.0


class TestSequentialFlow:
    def test_bmc_agrees_with_simulation_horizon(self):
        circuit = binary_counter(2)
        result = check_safety(circuit, "rollover", True, max_depth=6)
        assert result.failure_depth == 3
        from repro.apps.bmc import verify_trace
        assert verify_trace(circuit, result, "rollover", True)


class TestCircuitLayerAgainstPlainCNF:
    def test_same_verdicts_on_random_objectives(self):
        """Section 5 layer and plain CNF must agree on SAT/UNSAT for
        every output objective of a batch of random circuits."""
        for seed in range(4):
            circuit = random_circuit(5, 12, seed=seed)
            output = circuit.outputs[0]
            for value in (False, True):
                layered = solve_circuit(circuit, {output: value})
                encoding = encode_with_objective(circuit,
                                                 {output: value})
                plain = CDCLSolver(encoding.formula).solve()
                assert layered.is_sat == plain.is_sat, (seed, value)


class TestIncrementalVsOneShotATPG:
    def test_same_coverage(self):
        circuit = ripple_carry_adder(2)
        faults = full_fault_list(circuit)
        one_shot = ATPGEngine(circuit, fault_dropping=False).run(faults)
        incremental = IncrementalATPG(circuit).run(faults)
        for left, right in zip(one_shot.results, incremental.results):
            assert left.outcome == right.outcome, left.fault
        for result, vector in [
                (r, {k: bool(v) for k, v in r.vector.items()})
                for r in incremental.results
                if r.outcome is TestOutcome.DETECTED]:
            assert detects(circuit, result.fault, vector)
