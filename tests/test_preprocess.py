"""Unit tests for repro.solvers.preprocess (equivalency reasoning, §6)."""

import pytest

from conftest import brute_force_status

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import equivalence_ladder, parity_chain
from repro.solvers.preprocess import (
    equivalency_reduce,
    find_equivalences,
    preprocess,
)


def ladder(pairs=2, payload=None):
    formula = CNFFormula(2 * pairs)
    for index in range(1, pairs + 1):
        a, b = 2 * index - 1, 2 * index
        formula.add_clause([a, -b])
        formula.add_clause([-a, b])
    for clause in payload or []:
        formula.add_clause(clause)
    return formula


class TestFindEquivalences:
    def test_same_value_pair(self):
        # (a + b')(a' + b) => a == b
        formula = CNFFormula(2)
        formula.add_clause([1, -2])
        formula.add_clause([-1, 2])
        assert find_equivalences(formula) == [(1, 2, True)]

    def test_opposite_value_pair(self):
        # (a + b)(a' + b') => a == b'
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        formula.add_clause([-1, -2])
        assert find_equivalences(formula) == [(1, 2, False)]

    def test_half_pair_not_reported(self):
        formula = CNFFormula(2)
        formula.add_clause([1, -2])
        assert find_equivalences(formula) == []

    def test_longer_clauses_ignored(self):
        formula = CNFFormula(3)
        formula.add_clause([1, -2, 3])
        formula.add_clause([-1, 2, 3])
        assert find_equivalences(formula) == []


class TestEquivalencyReduce:
    def test_eliminates_variable(self):
        formula = ladder(1, payload=[[2, 3]])   # b == a; payload (b+c)
        result = equivalency_reduce(formula)
        assert result.variables_eliminated == 1
        assert result.substitution == {2: 1}
        # payload rewritten onto the representative
        assert any(list(c) == [1, 3] for c in result.formula)

    def test_opposite_polarity_substitution(self):
        formula = CNFFormula(3)
        formula.add_clause([1, 2])
        formula.add_clause([-1, -2])      # b == a'
        formula.add_clause([2, 3])
        result = equivalency_reduce(formula)
        assert result.substitution == {2: -1}
        assert any(list(c) == [-1, 3] for c in result.formula)

    def test_contradictory_equivalences(self):
        # a == b, a == b', both pairs present: x == x' -> UNSAT.
        formula = CNFFormula(2)
        formula.add_clause([1, -2])
        formula.add_clause([-1, 2])
        formula.add_clause([1, 2])
        formula.add_clause([-1, -2])
        result = equivalency_reduce(formula)
        assert result.formula is None

    def test_chained_classes(self):
        # a==b, b==c: both collapse onto a.
        formula = CNFFormula(3)
        formula.add_clause([1, -2])
        formula.add_clause([-1, 2])
        formula.add_clause([2, -3])
        formula.add_clause([-2, 3])
        result = equivalency_reduce(formula)
        assert result.variables_eliminated == 2
        assert result.substitution[2] == 1
        assert result.substitution[3] == 1

    def test_lift_model(self):
        formula = ladder(2, payload=[[1, 3]])
        result = equivalency_reduce(formula)
        reduced_model = Assignment({1: True, 3: False})
        lifted = result.lift_model(reduced_model)
        assert lifted.value_of(2) is True     # == var1
        assert lifted.value_of(4) is False    # == var3
        assert formula.evaluate(
            lifted.extend_unassigned(range(1, 5))) is True

    def test_preserves_satisfiability(self):
        for pairs in (2, 3):
            formula = equivalence_ladder(pairs, seed=pairs)
            expected = brute_force_status(formula)
            result = equivalency_reduce(formula)
            if result.formula is None:
                assert expected == "UNSAT"
            else:
                assert brute_force_status(result.formula) == expected

    def test_parity_chain_shrinks(self):
        """UNSAT parity chains are equivalence-rich (Section 6's
        target structure): reduction must eliminate variables."""
        formula = parity_chain(8)
        result = equivalency_reduce(formula)
        if result.formula is not None:
            assert result.variables_eliminated > 0
        # contradiction may even be found outright -- also acceptable


class TestPreprocessPipeline:
    def test_detects_unsat_by_units(self):
        formula = CNFFormula(1)
        formula.add_clause([1])
        formula.add_clause([-1])
        assert preprocess(formula).unsat

    def test_detects_unsat_by_equivalences(self):
        formula = parity_chain(6)
        result = preprocess(formula)
        survived = "UNSAT" if result.unsat else \
            brute_force_status(result.formula)
        assert survived == "UNSAT"

    def test_lift_model_through_pipeline(self):
        formula = equivalence_ladder(3, seed=1)
        expected = brute_force_status(formula)
        result = preprocess(formula)
        if result.unsat:
            assert expected == "UNSAT"
            return
        from repro.solvers.cdcl import solve_cdcl
        solved = solve_cdcl(result.formula)
        assert solved.is_sat == (expected == "SAT")
        if solved.is_sat:
            lifted = result.lift_model(solved.assignment)
            total = lifted.extend_unassigned(
                range(1, formula.num_vars + 1))
            assert formula.evaluate(total) is True

    def test_recursive_learning_stage(self):
        formula = CNFFormula(3)
        formula.add_clause([1, 2])
        formula.add_clause([-1, 3])
        formula.add_clause([-2, 3])
        result = preprocess(formula, equivalency=False,
                            recursive_learning_depth=1)
        assert result.forced.get(3) is True
