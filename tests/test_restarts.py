"""Unit tests for repro.solvers.restarts."""

import pytest

from repro.solvers.restarts import (
    FixedRestarts,
    GeometricRestarts,
    LubyRestarts,
    NoRestarts,
    luby,
    make_restart_policy,
)


class TestNoRestarts:
    def test_never(self):
        policy = NoRestarts()
        assert not policy.should_restart(10 ** 9)


class TestFixedRestarts:
    def test_threshold(self):
        policy = FixedRestarts(10)
        assert not policy.should_restart(9)
        assert policy.should_restart(10)

    def test_unchanged_after_restart(self):
        policy = FixedRestarts(10)
        policy.on_restart()
        assert policy.should_restart(10)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            FixedRestarts(0)


class TestGeometricRestarts:
    def test_growth(self):
        policy = GeometricRestarts(10, factor=2.0)
        assert policy.should_restart(10)
        policy.on_restart()
        assert not policy.should_restart(19)
        assert policy.should_restart(20)

    def test_rejects_shrinking_factor(self):
        with pytest.raises(ValueError):
            GeometricRestarts(10, factor=0.5)


class TestLuby:
    def test_sequence_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i + 1) for i in range(15)] == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            luby(0)

    def test_policy_advances(self):
        policy = LubyRestarts(unit=10)
        assert policy.should_restart(10)      # 10 * luby(1) = 10
        policy.on_restart()
        assert policy.should_restart(10)      # 10 * luby(2) = 10
        policy.on_restart()
        assert not policy.should_restart(19)  # 10 * luby(3) = 20
        assert policy.should_restart(20)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("none", NoRestarts),
        ("fixed", FixedRestarts),
        ("geometric", GeometricRestarts),
        ("luby", LubyRestarts),
    ])
    def test_known(self, name, cls):
        assert isinstance(make_restart_policy(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_restart_policy("sometimes")

    def test_names(self):
        assert NoRestarts().name() == "no"
        assert LubyRestarts().name() == "luby"
