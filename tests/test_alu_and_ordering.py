"""Tests for the ALU generator and the interleaved BDD ordering."""

import pytest

from repro.bdd.circuit import build_output_bdds, interleaved_order
from repro.bdd.manager import BDDManager
from repro.circuits.generators import alu, ripple_carry_adder
from repro.circuits.simulate import simulate


class TestALU:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_exhaustive(self, width):
        circuit = alu(width)
        circuit.validate()
        mask = (1 << width) - 1
        for x in range(1 << width):
            for y in range(1 << width):
                for op in range(4):
                    vector = {f"a{i}": bool((x >> i) & 1)
                              for i in range(width)}
                    vector.update({f"b{i}": bool((y >> i) & 1)
                                   for i in range(width)})
                    vector["op0"] = bool(op & 1)
                    vector["op1"] = bool(op >> 1)
                    values = simulate(circuit, vector)
                    out = sum((1 << i) for i in range(width)
                              if values[f"y{i}"])
                    expected = [x & y, x | y, x ^ y,
                                (x + y) & mask][op]
                    assert out == expected, (x, y, op)
                    overflow = (op == 3) and (x + y > mask)
                    assert values["ovf"] == overflow

    def test_interface(self):
        circuit = alu(4)
        assert len(circuit.inputs) == 10       # 2*4 data + 2 opcode
        assert len(circuit.outputs) == 5       # 4 result + ovf

    def test_atpg_on_alu(self):
        from repro.apps.atpg import ATPGEngine
        report = ATPGEngine(alu(2), collapse=True).run()
        assert report.fault_coverage == 1.0


class TestInterleavedOrder:
    def test_alternates_buses(self):
        circuit = ripple_carry_adder(3)
        order = interleaved_order(circuit)
        assert order[:6] == ["a0", "b0", "a1", "b1", "a2", "b2"]
        assert order[-1] == "cin"

    def test_permutation(self):
        circuit = ripple_carry_adder(5)
        order = interleaved_order(circuit)
        assert sorted(order) == sorted(circuit.inputs)

    def test_shrinks_adder_bdds(self):
        """The classic ordering-sensitivity result: interleaving the
        operand bits shrinks adder BDDs dramatically."""
        circuit = ripple_carry_adder(6)
        natural = BDDManager(len(circuit.inputs))
        build_output_bdds(circuit, natural)
        interleaved = BDDManager(len(circuit.inputs))
        build_output_bdds(circuit, interleaved,
                          input_order=interleaved_order(circuit))
        assert interleaved.num_nodes < natural.num_nodes / 2

    def test_function_unchanged_by_order(self):
        circuit = ripple_carry_adder(3)
        natural_mgr = BDDManager(len(circuit.inputs))
        natural = build_output_bdds(circuit, natural_mgr)
        inter_mgr = BDDManager(len(circuit.inputs))
        inter = build_output_bdds(circuit, inter_mgr,
                                  input_order=interleaved_order(circuit))
        order = interleaved_order(circuit)
        import itertools
        for bits in itertools.islice(
                itertools.product([False, True],
                                  repeat=len(circuit.inputs)), 20):
            vector = dict(zip(circuit.inputs, bits))
            natural_model = {i + 1: vector[name] for i, name
                             in enumerate(circuit.inputs)}
            inter_model = {i + 1: vector[name] for i, name
                           in enumerate(order)}
            for out in circuit.outputs:
                assert natural_mgr.evaluate(natural[out],
                                            natural_model) == \
                    inter_mgr.evaluate(inter[out], inter_model)
