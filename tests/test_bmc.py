"""Unit tests for repro.apps.bmc (Section 3, bounded model checking)."""

import pytest

from repro.apps.bmc import BoundedModelChecker, check_safety, verify_trace
from repro.circuits.gates import GateType
from repro.circuits.generators import binary_counter, shift_register
from repro.circuits.netlist import Circuit


class TestCounterReachability:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_rollover_found_at_exact_depth(self, width):
        """An n-bit counter with enable held high pulses rollover at
        frame 2^n - 1."""
        circuit = binary_counter(width)
        result = check_safety(circuit, "rollover", True,
                              max_depth=(1 << width) + 2)
        assert result.failure_depth == (1 << width) - 1

    def test_trace_replays_through_simulator(self):
        circuit = binary_counter(2)
        result = check_safety(circuit, "rollover", True, max_depth=5)
        assert verify_trace(circuit, result, "rollover", True)

    def test_property_holds_below_bound(self):
        circuit = binary_counter(3)
        result = check_safety(circuit, "rollover", True, max_depth=5)
        assert result.property_holds
        assert result.depths_proved == 6

    def test_initial_state_shortcut(self):
        circuit = binary_counter(2)
        result = check_safety(circuit, "rollover", True, max_depth=2,
                              initial_state={"q0": True, "q1": True})
        assert result.failure_depth == 0


class TestShiftRegister:
    def test_output_reachable_after_latency(self):
        circuit = shift_register(3)
        result = check_safety(circuit, "sout", True, max_depth=6)
        assert result.failure_depth == 3     # needs 3 shifts
        assert verify_trace(circuit, result, "sout", True)

    def test_zero_state_output_never_one_early(self):
        circuit = shift_register(4)
        result = check_safety(circuit, "sout", True, max_depth=3)
        assert result.property_holds


class TestCombinationalAsDepthZero:
    def test_pure_combinational_circuit(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("y", GateType.NOT, ["a"])
        circuit.set_output("y")
        result = check_safety(circuit, "y", True, max_depth=0)
        assert result.failure_depth == 0

    def test_unreachable_value(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("na", GateType.NOT, ["a"])
        circuit.add_gate("y", GateType.AND, ["a", "na"])
        circuit.set_output("y")
        result = check_safety(circuit, "y", True, max_depth=3)
        assert result.property_holds


class TestCheckerInternals:
    def test_frames_added_lazily(self):
        checker = BoundedModelChecker(binary_counter(2))
        assert len(checker.frames) == 0
        checker.check_output("rollover", True, max_depth=2)
        assert len(checker.frames) == 3

    def test_incremental_solver_reused_across_depths(self):
        checker = BoundedModelChecker(binary_counter(2))
        checker.check_output("rollover", True, max_depth=3)
        assert checker.solver.calls == 4

    def test_unknown_output_rejected(self):
        checker = BoundedModelChecker(binary_counter(2))
        with pytest.raises(ValueError):
            checker.check_output("ghost")

    def test_bad_value_false_query(self):
        # rollover is 0 initially: bad_value=False found at depth 0.
        result = check_safety(binary_counter(2), "rollover", False,
                              max_depth=1)
        assert result.failure_depth == 0

    def test_stats_accumulate(self):
        result = check_safety(binary_counter(2), "rollover", True,
                              max_depth=4)
        assert result.stats.propagations > 0
