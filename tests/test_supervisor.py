"""Supervised portfolio races under injected faults.

The Supervisor's contract: crashed configurations are respawned with
bounded retries, hung workers are detected by heartbeat and terminated,
garbage payloads are rejected (and the worker retried), healthy losers
are cancelled promptly, and every worker's fate is named in the
PortfolioReport.  Fault injection (:mod:`repro.runtime.faults`) makes
each failure mode deterministic.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole, random_ksat
from repro.runtime.faults import FaultPlan
from repro.runtime.supervisor import Supervisor, WorkerOutcome
from repro.solvers.portfolio import default_portfolio, solve_portfolio
from repro.solvers.result import Status

from conftest import assert_model_satisfies


def _no_orphans() -> bool:
    """No stray worker processes after a race."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


def _sat_formula() -> CNFFormula:
    formula = CNFFormula(3)
    formula.add_clause([1, 2])
    formula.add_clause([-1, 2])
    formula.add_clause([-2, 3])
    return formula


class TestFaultPlan:
    def test_action_schedule(self):
        # Attempts are 0-based: {0: 2} crashes attempts 0 and 1.
        plan = FaultPlan(crashes={0: 2}, hangs=frozenset({1}),
                         garbage={2: 1})
        assert plan.action(0, attempt=0) == "crash"
        assert plan.action(0, attempt=1) == "crash"
        assert plan.action(0, attempt=2) is None
        assert plan.action(1, attempt=0) == "hang"
        assert plan.action(1, attempt=5) == "hang"   # hangs never heal
        assert plan.action(2, attempt=0) == "garbage"
        assert plan.action(2, attempt=1) is None
        assert plan.action(3, attempt=0) is None

    def test_builders(self):
        crash = FaultPlan.crash_all_once(3)
        assert all(crash.action(i, 0) == "crash" for i in range(3))
        assert all(crash.action(i, 1) is None for i in range(3))
        hang = FaultPlan.hang_all(2)
        assert all(hang.action(i, 0) == "hang" for i in range(2))


class TestHealthyRace:
    def test_losers_are_cancelled(self):
        report = Supervisor(default_portfolio(3),
                            ).run(_sat_formula())
        assert report.status is Status.SATISFIABLE
        assert report.winner_index is not None
        decisive = {WorkerOutcome.SAT, WorkerOutcome.UNSAT}
        rest = {WorkerOutcome.CANCELLED} | decisive
        for worker in report.workers:
            if worker.index == report.winner_index:
                assert worker.outcome in decisive
            else:
                assert worker.outcome in rest
        assert report.total_respawns == 0
        assert _no_orphans()

    def test_outcome_counts(self):
        report = Supervisor(default_portfolio(2)).run(_sat_formula())
        counts = report.outcome_counts()
        assert sum(counts.values()) == 2


class TestCrashRecovery:
    def test_every_worker_crashes_once_then_verdict(self):
        """Acceptance: with fault injection forcing every initial
        worker to crash, the supervisor respawns each and still
        returns the correct verdict."""
        configs = default_portfolio(3)
        formula = random_ksat(12, 40, seed=5)
        report = Supervisor(configs, budget=None,
                            fault_plan=FaultPlan.crash_all_once(3),
                            backoff_seconds=0.01).run(formula)
        assert report.status in (Status.SATISFIABLE,
                                 Status.UNSATISFIABLE)
        # Nobody can answer without being respawned at least once; the
        # race may end before every crashed slot gets its turn.
        assert report.total_respawns >= 1
        winner = report.workers[report.winner_index]
        assert winner.attempts == 2
        if report.status is Status.SATISFIABLE:
            assert_model_satisfies(formula, report.result.assignment)
        assert _no_orphans()

    def test_unsat_verdict_survives_crashes(self):
        formula = pigeonhole(3)
        report = Supervisor(default_portfolio(2),
                            fault_plan=FaultPlan.crash_all_once(2),
                            backoff_seconds=0.01).run(formula)
        assert report.status is Status.UNSATISFIABLE
        assert _no_orphans()

    def test_retries_are_bounded(self):
        # Crash forever: after max_retries respawns the worker is
        # declared CRASHED and the race returns UNKNOWN.
        plan = FaultPlan(crashes={0: 99, 1: 99})
        report = Supervisor(default_portfolio(2), max_retries=1,
                            backoff_seconds=0.01,
                            fault_plan=plan).run(_sat_formula())
        assert report.status is Status.UNKNOWN
        assert all(w.outcome is WorkerOutcome.CRASHED
                   for w in report.workers)
        assert all(w.attempts == 2 for w in report.workers)  # 1 + 1 retry
        assert _no_orphans()

    def test_garbage_payload_rejected_and_retried(self):
        formula = random_ksat(10, 30, seed=2)
        plan = FaultPlan(garbage={0: 1, 1: 1})
        report = Supervisor(default_portfolio(2), backoff_seconds=0.01,
                            fault_plan=plan).run(formula)
        assert report.status in (Status.SATISFIABLE,
                                 Status.UNSATISFIABLE)
        assert report.total_respawns >= 1
        winner = report.workers[report.winner_index]
        assert winner.attempts == 2
        if report.status is Status.SATISFIABLE:
            assert_model_satisfies(formula, report.result.assignment)
        assert _no_orphans()


@pytest.mark.slow
class TestRespawnBudgetThreading:
    """A respawned worker must get the *remaining* budget, never the
    original one (satellite fix: retries can't exceed the caller's
    total envelope)."""

    def test_respawn_receives_shrunk_deadline(self, tmp_path,
                                              monkeypatch):
        # Record every worker attempt's budget by wrapping the worker
        # entry point; the fork start method carries the patched
        # module global into the children.
        import repro.runtime.supervisor as sup

        log = tmp_path / "budgets.jsonl"
        real_worker = sup._worker_main

        def recording_worker(index, attempt, clause_lits, num_vars,
                             config, budget, *args, **kwargs):
            import json
            with open(log, "a", encoding="utf-8") as fh:
                fh.write(json.dumps({
                    "attempt": attempt,
                    "wall": None if budget is None
                    else budget.wall_seconds,
                    "max_conflicts": None if budget is None
                    else budget.max_conflicts}) + "\n")
            return real_worker(index, attempt, clause_lits, num_vars,
                               config, budget, *args, **kwargs)

        monkeypatch.setattr(sup, "_worker_main", recording_worker)
        from repro.runtime.budget import Budget
        report = Supervisor(default_portfolio(1),
                            budget=Budget(wall_seconds=30.0,
                                          max_conflicts=100_000),
                            fault_plan=FaultPlan.crash_all_once(1),
                            backoff_seconds=0.05).run(_sat_formula())
        assert report.status is Status.SATISFIABLE
        import json
        records = sorted((json.loads(line)
                          for line in log.read_text().splitlines()),
                         key=lambda r: r["attempt"])
        assert [r["attempt"] for r in records] == [0, 1]
        assert records[0]["wall"] == pytest.approx(30.0, abs=0.5)
        # The respawn ran >= backoff_seconds later: its deadline must
        # have shrunk, not reset to the original 30 s.
        assert records[1]["wall"] < records[0]["wall"]
        assert records[1]["max_conflicts"] == 100_000  # nothing spent
        assert _no_orphans()

    def test_slot_spent_sums_last_snapshot_per_attempt(self):
        from repro.runtime.supervisor import _Slot, _slot_spent

        slot = _Slot(0, default_portfolio(1)[0])
        assert _slot_spent(slot) is None
        slot.timeline = [
            {"attempt": 0, "elapsed": 0.1,
             "stats": {"conflicts": 10, "decisions": 20, "flips": 0}},
            {"attempt": 0, "elapsed": 0.2,
             "stats": {"conflicts": 25, "decisions": 50, "flips": 0}},
            {"attempt": 1, "elapsed": 0.1,
             "stats": {"conflicts": 5, "decisions": 8, "flips": 0}},
        ]
        spent = _slot_spent(slot)
        # Latest snapshot per attempt, summed across attempts.
        assert spent.conflicts == 30
        assert spent.decisions == 58

    def test_respawn_budget_shrinks_counter_caps(self):
        from repro.runtime.budget import Budget
        from repro.runtime.supervisor import _Slot, _slot_spent

        slot = _Slot(0, default_portfolio(1)[0])
        slot.timeline = [{"attempt": 0, "elapsed": 0.3,
                          "stats": {"conflicts": 40, "decisions": 90,
                                    "flips": 0}}]
        budget = Budget(max_conflicts=100, max_decisions=200)
        tail = budget.remaining_after(0.0, spent=_slot_spent(slot))
        assert tail.max_conflicts == 60
        assert tail.max_decisions == 110


class TestHangDetection:
    def test_all_hung_times_out_within_deadline(self):
        """Acceptance: all workers hung -> UNKNOWN with per-worker
        TIMED_OUT, within the wall-clock deadline (+/- 1s)."""
        deadline = 2.0
        started = time.monotonic()
        result = solve_portfolio(pigeonhole(4), processes=3,
                                 configs=default_portfolio(3),
                                 timeout=deadline, hang_timeout=0.5,
                                 fault_plan=FaultPlan.hang_all(3))
        elapsed = time.monotonic() - started
        assert result.status is Status.UNKNOWN
        report = result.report
        assert all(w.outcome is WorkerOutcome.TIMED_OUT
                   for w in report.workers)
        assert elapsed <= deadline + 1.0
        assert _no_orphans()

    def test_one_hung_worker_does_not_block_verdict(self):
        formula = random_ksat(12, 40, seed=7)
        plan = FaultPlan(hangs=frozenset({0}))
        started = time.monotonic()
        report = Supervisor(default_portfolio(3), hang_timeout=5.0,
                            fault_plan=plan).run(formula)
        assert report.status in (Status.SATISFIABLE,
                                 Status.UNSATISFIABLE)
        # The healthy workers decide the race without waiting for the
        # hang timeout.
        assert time.monotonic() - started < 5.0
        assert _no_orphans()

    def test_hang_timeout_marks_worker_timed_out(self):
        plan = FaultPlan(hangs=frozenset({0, 1}))
        report = Supervisor(default_portfolio(2), hang_timeout=0.4,
                            budget=None,
                            fault_plan=plan).run(_sat_formula())
        assert report.status is Status.UNKNOWN
        assert all(w.outcome is WorkerOutcome.TIMED_OUT
                   for w in report.workers)
        assert _no_orphans()


class TestReportShape:
    def test_worker_reports_carry_names_and_timing(self):
        configs = default_portfolio(2)
        report = Supervisor(configs).run(_sat_formula())
        assert [w.name for w in report.workers] == \
            [c.name for c in configs]
        assert report.wall_seconds >= 0.0
        for worker in report.workers:
            assert worker.attempts >= 1
            assert worker.wall_seconds >= 0.0

    def test_portfolio_result_exposes_report(self):
        result = solve_portfolio(_sat_formula(), processes=2,
                                 configs=default_portfolio(2))
        assert result.report is not None
        assert result.report.status is result.status
        assert _no_orphans()


class TestRespawnPerturbation:
    def test_perturbed_shifts_seed_and_randomness(self):
        config = default_portfolio(1)[0]
        again = config.perturbed(1)
        assert again.name == config.name       # identity is kept
        assert again.seed != config.seed
        assert again.random_freq >= 0.02
        assert config.perturbed(0) is config
        assert config.perturbed(2).seed != again.seed

    def test_respawned_attempt_runs_a_different_seed(self):
        """A deterministically-crashing config must not burn its
        retries re-running the identical search: the spawn events of
        a crashed worker carry distinct seeds per attempt."""
        from repro.obs import ListSink, Tracer

        sink = ListSink()
        plan = FaultPlan.crash_all_once(2)
        report = Supervisor(default_portfolio(2), backoff_seconds=0.01,
                            fault_plan=plan,
                            tracer=Tracer(sink)).run(pigeonhole(3))
        # The verdict required at least one respawn (everyone crashed
        # first); the race may settle before every slot gets its turn,
        # so assert on the winner's spawn events specifically.
        winner = report.winner_index
        spawns = [e for e in sink.events
                  if e["kind"] == "event"
                  and e["name"] == "portfolio.spawn"
                  and e["attrs"]["worker"] == winner]
        assert len(spawns) == 2
        seeds = [e["attrs"]["seed"] for e in spawns]
        assert seeds[0] != seeds[1]
        assert _no_orphans()


class TestCertifiedRace:
    def test_unsat_claims_are_proof_checked(self, tmp_path):
        report = Supervisor(default_portfolio(2),
                            proof_dir=str(tmp_path)
                            ).run(pigeonhole(3))
        assert report.status is Status.UNSATISFIABLE
        assert report.result.certificate is not None
        assert report.result.certificate.valid
        assert _no_orphans()

    def test_false_unsat_goes_discrepant_and_race_continues(
            self, tmp_path):
        """A worker lying UNSAT (well-formed payload, no proof) is
        caught by the proof audit: DISCREPANT, with the checker's
        diagnostic, while the honest worker settles the race."""
        formula = _sat_formula()
        plan = FaultPlan(false_unsat={0: 1})
        report = Supervisor(default_portfolio(2), max_retries=1,
                            backoff_seconds=0.01, fault_plan=plan,
                            proof_dir=str(tmp_path)).run(formula)
        assert report.status is Status.SATISFIABLE
        assert_model_satisfies(formula, report.result.assignment)
        liar = report.workers[0]
        assert liar.outcome is WorkerOutcome.DISCREPANT
        assert liar.discrepancy
        summary = report.loss_summary()[liar.name]
        assert "proof failed the independent check" in summary
        assert "unreadable proof file" in summary
        assert _no_orphans()
