"""Tests for multiple backtracing in the Section 5 layer."""

import pytest

from repro.circuits.generators import parity_tree, ripple_carry_adder
from repro.circuits.library import c17, majority3
from repro.circuits.simulate import simulate3
from repro.solvers.circuit_sat import CircuitSATSolver
from repro.solvers.result import Status


class TestMultipleBacktrace:
    @pytest.mark.parametrize("factory,objective", [
        (c17, ("G22", True)),
        (c17, ("G23", False)),
        (majority3, ("maj", True)),
        (lambda: ripple_carry_adder(3), ("cout", True)),
        (lambda: parity_tree(4), ("parity", True)),
    ])
    def test_sound_and_certified(self, factory, objective):
        circuit = factory()
        name, value = objective
        solver = CircuitSATSolver(circuit, {name: value},
                                  backtrace_mode="multiple")
        result = solver.solve()
        assert result.is_sat
        partial = {k: v for k, v in result.input_vector.items()
                   if v is not None}
        assert simulate3(circuit, partial)[name] is value

    def test_unsat_objective(self):
        from repro.circuits.library import figure1_circuit
        solver = CircuitSATSolver(figure1_circuit(),
                                  {"z": True, "a": False},
                                  backtrace_mode="multiple")
        assert solver.solve().status is Status.UNSATISFIABLE

    def test_agrees_with_simple_mode(self):
        from repro.circuits.generators import random_circuit
        for seed in range(4):
            circuit = random_circuit(5, 14, seed=seed)
            output = circuit.outputs[0]
            for value in (False, True):
                simple = CircuitSATSolver(
                    circuit, {output: value},
                    backtrace_mode="simple").solve()
                multiple = CircuitSATSolver(
                    circuit, {output: value},
                    backtrace_mode="multiple").solve()
                assert simple.is_sat == multiple.is_sat, (seed, value)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            CircuitSATSolver(c17(), {"G22": True},
                             backtrace_mode="fanwise")

    def test_layer_method_empty_frontier(self):
        solver = CircuitSATSolver(c17(), {"G22": True})
        assert solver.layer.multiple_backtrace() is None
