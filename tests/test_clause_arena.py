"""Clause-arena memory layout and compacting-GC tests (PR 4).

The CDCL clause database lives in a :class:`ClauseArena`: one flat
literal buffer plus parallel metadata arrays, addressed by integer
clause ids.  Deletion is a *compacting* collection -- survivors are
copied to the front and every stored id is rewritten through a remap
-- so these tests pin the contracts that make that safe:

* arena construction, reading and compaction (unit level);
* a collected clause can never come back as a conflict or as an
  antecedent (regression: dangling ids after GC);
* watch lists, binary pairs and antecedent slots only ever hold live
  ids, checked mid-search across forced collections;
* the three deletion policies (keep / size / relevance) agree on
  verdicts across random 3-SAT, pigeonhole and circuit-miter CNFs
  with at least one forced GC mid-search, SAT models re-verified and
  UNSAT answers cross-checked against DPLL;
* incremental solving stays sound across >= 2 compactions (added
  clauses must survive every GC);
* the hot path carries no deleted-clause test at all.
"""

import inspect

import pytest

from conftest import assert_model_satisfies

from repro.circuits.generators import (
    carry_select_adder,
    ripple_carry_adder,
)
from repro.circuits.tseitin import encode_miter
from repro.cnf.generators import pigeonhole, random_ksat_at_ratio
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.clause_arena import ClauseArena
from repro.solvers.dpll import solve_dpll
from repro.solvers.incremental import IncrementalSolver
from repro.solvers.result import Status


class TestClauseArenaUnit:
    def test_add_and_read_back(self):
        arena = ClauseArena()
        a = arena.add([1, -2, 3])
        b = arena.add([-1, 4], learned=True, lbd=2)
        assert (a, b) == (0, 1)
        assert len(arena) == 2
        assert arena.lits_of(a) == [1, -2, 3]
        assert arena.lits_of(b) == [-1, 4]
        assert arena.size(a) == 3 and arena.size(b) == 2
        assert list(arena.iter_ids()) == [0, 1]
        assert arena.learned == [False, True]
        assert arena.lbd == [0, 2]
        assert arena.live_ints() == 5 and arena.peak_lits == 5
        assert arena.fill_ratio() == 1.0

    def test_compact_drops_and_remaps(self):
        arena = ClauseArena()
        ids = [arena.add([k, -(k + 1), k + 2], learned=(k % 2 == 0))
               for k in range(1, 6)]
        arena.activity[ids[3]] = 7.5
        remap = arena.compact({ids[1], ids[4]})
        assert remap == [0, -1, 1, 2, -1]
        assert len(arena) == 3
        # Survivors keep their literals, order and metadata.
        assert arena.lits_of(0) == [1, -2, 3]
        assert arena.lits_of(1) == [3, -4, 5]
        assert arena.lits_of(2) == [4, -5, 6]
        assert arena.activity[2] == 7.5
        assert arena.learned == [False, False, True]
        # The buffer is fully compacted: no dead space, fill < 1.
        assert arena.live_ints() == 9
        assert arena.peak_lits == 15
        assert arena.fill_ratio() == pytest.approx(9 / 15)
        occ = arena.occupancy()
        assert occ["clauses"] == 3 and occ["live_ints"] == 9
        assert occ["peak_ints"] == 15

    def test_compact_empty_drop_is_identity(self):
        arena = ClauseArena()
        arena.add([1, 2])
        arena.add([-1, -2])
        remap = arena.compact(set())
        assert remap == [0, 1]
        assert arena.lits_of(0) == [1, 2]
        assert arena.live_ints() == 4


def _check_live_ids(solver):
    """Every stored clause id must point into the live arena, and the
    watch tables must reference the first two buffer slots of their
    clause -- a dangling id after a compaction fails here."""
    arena = solver.arena
    n = len(arena.off)
    for cid in solver._clauses:
        assert 0 <= cid < n
    for cid in solver._learned:
        assert 0 <= cid < n
        assert arena.learned[cid]
    for watchlist in solver._watches:
        for cid in watchlist:
            assert 0 <= cid < n
            assert arena.size(cid) >= 3
    for pairs in solver._bins:
        for _other, cid in pairs:
            assert 0 <= cid < n
            assert arena.size(cid) == 2
    for var, reason in enumerate(solver._antecedent):
        if type(reason) is int:
            assert 0 <= reason < n
            clause = arena.lits_of(reason)
            assert any(abs(lit) == var for lit in clause)
            if len(clause) >= 3:
                # Long antecedents keep the implied literal at watch
                # position 0 (what makes ``_locked`` complete); binary
                # antecedents come from the pair lists, which never
                # reorder the buffer -- and are never doomed anyway.
                assert abs(clause[0]) == var


class TestCollectedClauseNeverUsed:
    """Regression: after a compaction, no collected clause may ever be
    returned as a conflict or consulted as an antecedent."""

    @pytest.mark.parametrize("name,formula", [
        ("php-5", pigeonhole(5)),
        ("rksat-60", random_ksat_at_ratio(60, 4.4, 3, seed=11)),
    ])
    def test_conflicts_and_antecedents_stay_live(self, name, formula):
        solver = CDCLSolver(formula, deletion="size", deletion_bound=3,
                            deletion_interval=20)
        original_handle = solver._handle_conflict
        original_reduce = solver._reduce_learned
        conflicts_seen = [0]

        def checking_handle(conflict):
            conflicts_seen[0] += 1
            arena = solver.arena
            assert 0 <= conflict < len(arena.off)
            # A real conflict id: every literal of the clause is
            # currently false.  A dangling id fails this immediately.
            for lit in arena.lits_of(conflict):
                assert solver.value_of_literal(lit) is False
            original_handle(conflict)

        def checking_reduce():
            original_reduce()
            _check_live_ids(solver)

        solver._handle_conflict = checking_handle
        solver._reduce_learned = checking_reduce
        result = solver.solve()

        assert solver.stats.gc_runs >= 1, \
            f"{name}: deletion never forced a collection"
        assert conflicts_seen[0] > 0
        _check_live_ids(solver)
        if result.status is Status.SATISFIABLE:
            assert_model_satisfies(formula, result.assignment)
        else:
            assert result.status is Status.UNSATISFIABLE

    def test_propagate_has_no_deleted_branch(self):
        """The acceptance criterion in person: the hot path carries no
        deleted-clause test (collections rewrite ids eagerly)."""
        source = inspect.getsource(CDCLSolver._propagate)
        assert ".deleted" not in source
        assert "check_deleted" not in source


def _miter_formula(width):
    return encode_miter(ripple_carry_adder(width),
                        carry_select_adder(width)).formula


_POLICIES = [
    dict(deletion="keep"),
    dict(deletion="size", deletion_bound=3, deletion_interval=25),
    dict(deletion="relevance", deletion_bound=2, deletion_interval=25),
]


class TestDeletionPoliciesAgree:
    """keep / size / relevance must agree on every verdict; deletion
    only trades memory for re-derivation work (paper properties 2-3)."""

    @pytest.mark.parametrize("name,formula", [
        ("rksat-sat-50", random_ksat_at_ratio(50, 4.0, 3, seed=5)),
        ("rksat-hard-55", random_ksat_at_ratio(55, 4.3, 3, seed=23)),
        ("rksat-unsat-50", random_ksat_at_ratio(50, 4.6, 3, seed=2)),
        ("php-5", pigeonhole(5)),
        ("miter-adders-3", _miter_formula(3)),
    ])
    def test_policies_agree(self, name, formula):
        verdicts = {}
        gc_runs = {}
        for kwargs in _POLICIES:
            solver = CDCLSolver(formula, **kwargs)
            result = solver.solve()
            assert result.status is not Status.UNKNOWN
            verdicts[kwargs["deletion"]] = result.status
            gc_runs[kwargs["deletion"]] = solver.stats.gc_runs
            if result.status is Status.SATISFIABLE:
                assert_model_satisfies(formula, result.assignment)
        assert len(set(verdicts.values())) == 1, \
            f"{name}: policies disagree: {verdicts}"
        # An independent engine must confirm UNSAT answers.
        if verdicts["keep"] is Status.UNSATISFIABLE:
            assert solve_dpll(formula).status is Status.UNSATISFIABLE
        # The non-keep policies must actually exercise the GC on the
        # conflict-heavy instances; they never GC under "keep".
        assert gc_runs["keep"] == 0
        if name in ("php-5", "rksat-unsat-50", "miter-adders-3"):
            assert gc_runs["size"] >= 1
            assert gc_runs["relevance"] >= 1


class TestIncrementalAcrossCompactions:
    """Clause adds must survive GC across solve calls: the pinned
    acceptance scenario for incremental + arena compaction."""

    def test_incremental_survives_two_gcs(self):
        base = random_ksat_at_ratio(55, 3.8, 3, seed=9)
        extra = random_ksat_at_ratio(55, 1.2, 3, seed=41)
        batches = [list(c) for c in extra]
        third = len(batches) // 3

        inc = IncrementalSolver(base, deletion="size", deletion_bound=3,
                                deletion_interval=15)
        reference = base.copy()
        gc_total = 0
        for batch in (batches[:third], batches[third:2 * third],
                      batches[2 * third:]):
            for lits in batch:
                inc.add_clause(lits)
                reference.add_clause(lits)
            result = inc.solve()
            gc_total += result.stats.gc_runs
            fresh = CDCLSolver(reference).solve()
            assert result.status is fresh.status, \
                "incremental verdict diverged from a fresh solve"
            if result.status is Status.SATISFIABLE:
                # The model must satisfy every clause ever added --
                # fails if a GC compaction dropped or mangled one.
                assert_model_satisfies(reference, result.assignment)
        assert gc_total >= 2, \
            f"only {gc_total} collection(s) across the call sequence"
        occupancy = inc.arena_occupancy()
        assert occupancy["gc_runs"] == gc_total
        assert 0.0 < occupancy["fill_ratio"] <= 1.0
        # Original clauses all survive in the arena across every GC.
        assert occupancy["clauses"] >= len(reference.clauses) \
            - sum(1 for c in reference if len(c) == 1)
