"""Unit tests for repro.apps.crosstalk (functional noise analysis)."""

import pytest

from repro.apps.crosstalk import (
    CouplingScenario,
    CrosstalkAnalyzer,
    worst_coupled_scenario,
)
from repro.circuits.gates import GateType
from repro.circuits.library import c17
from repro.circuits.netlist import Circuit


def buffered_circuit():
    circuit = Circuit("buffered")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("y", GateType.BUFFER, ["a"])
    circuit.add_gate("nb", GateType.NOT, ["b"])
    circuit.add_gate("z", GateType.AND, ["y", "nb"])
    circuit.set_output("z")
    return circuit


class TestFeasibleAlignment:
    def test_driver_cannot_aggress_its_buffer(self):
        """Victim y = BUF(a) with aggressor a: a switching flips y,
        so the feasible alignment is 0 -- the structural worst case
        of 1 is logically impossible (the paper's core point)."""
        analyzer = CrosstalkAnalyzer(buffered_circuit())
        scenario = CouplingScenario("y", ("a",))
        report = analyzer.feasible_alignment(scenario)
        assert report.structural_worst_case == 1
        assert report.feasible_worst_case == 0
        assert report.overestimate == 1

    def test_independent_aggressor_fully_feasible(self):
        analyzer = CrosstalkAnalyzer(buffered_circuit())
        scenario = CouplingScenario("y", ("nb",))
        report = analyzer.feasible_alignment(scenario)
        assert report.feasible_worst_case == 1
        assert analyzer.verify_witness(report)

    def test_mixed_aggressors(self):
        # a cannot switch (drives the victim), nb can: feasible == 1.
        analyzer = CrosstalkAnalyzer(buffered_circuit())
        scenario = CouplingScenario("y", ("a", "nb"))
        report = analyzer.feasible_alignment(scenario)
        assert report.structural_worst_case == 2
        assert report.feasible_worst_case == 1
        assert report.overestimate == 1
        assert analyzer.verify_witness(report)

    def test_xor_pair_switches_under_stable_victim(self):
        # v = XOR(a, b): both inputs switching keeps v stable.
        circuit = Circuit("xorpair")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("v", GateType.XOR, ["a", "b"])
        circuit.set_output("v")
        analyzer = CrosstalkAnalyzer(circuit)
        report = analyzer.feasible_alignment(
            CouplingScenario("v", ("a", "b")))
        assert report.feasible_worst_case == 2
        assert analyzer.verify_witness(report)

    def test_victim_value_pinned(self):
        analyzer = CrosstalkAnalyzer(buffered_circuit())
        low = analyzer.feasible_alignment(
            CouplingScenario("y", ("nb",), victim_value=False))
        high = analyzer.feasible_alignment(
            CouplingScenario("y", ("nb",), victim_value=True))
        assert low.feasible_worst_case == 1
        assert high.feasible_worst_case == 1
        vector1, _ = low.witness
        from repro.circuits.simulate import simulate
        assert simulate(buffered_circuit(), vector1)["y"] is False

    def test_c17_scenario(self):
        circuit = c17()
        analyzer = CrosstalkAnalyzer(circuit)
        scenario = CouplingScenario("G22", ("G10", "G16", "G19"))
        report = analyzer.feasible_alignment(scenario)
        assert report.feasible_worst_case is not None
        assert 0 <= report.feasible_worst_case <= 3
        assert analyzer.verify_witness(report)


class TestHelpers:
    def test_worst_coupled_scenario(self):
        scenario = worst_coupled_scenario(c17(), "G22",
                                          num_aggressors=3)
        assert scenario.victim == "G22"
        assert len(scenario.aggressors) == 3
        assert "G22" not in scenario.aggressors

    def test_unknown_nets_rejected(self):
        analyzer = CrosstalkAnalyzer(c17())
        with pytest.raises(ValueError):
            analyzer.feasible_alignment(
                CouplingScenario("ghost", ("G10",)))

    def test_sequential_rejected(self):
        from repro.circuits.generators import binary_counter
        with pytest.raises(ValueError):
            CrosstalkAnalyzer(binary_counter(2))
