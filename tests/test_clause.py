"""Unit tests for repro.cnf.clause."""

import pytest

from repro.cnf.clause import Clause


class TestConstruction:
    def test_sorted_by_variable(self):
        assert Clause([3, -1, 2]).literals == (-1, 2, 3)

    def test_duplicates_removed(self):
        assert Clause([1, 1, 2]).literals == (1, 2)

    def test_empty_clause(self):
        clause = Clause()
        assert clause.is_empty()
        assert len(clause) == 0

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError):
            Clause([1, 0])

    def test_positive_before_negative_same_var(self):
        clause = Clause([-2, 2])
        assert clause.literals == (2, -2)


class TestPredicates:
    def test_unit(self):
        assert Clause([5]).is_unit()
        assert not Clause([5, 6]).is_unit()

    def test_binary(self):
        assert Clause([1, -2]).is_binary()
        assert not Clause([1]).is_binary()

    def test_tautology(self):
        assert Clause([1, -1]).is_tautology()
        assert not Clause([1, -2]).is_tautology()

    def test_contains(self):
        clause = Clause([1, -2])
        assert clause.contains(-2)
        assert not clause.contains(2)

    def test_variables(self):
        assert Clause([1, -2, 3]).variables() == frozenset({1, 2, 3})


class TestResolution:
    def test_basic_resolvent(self):
        left = Clause([1, 2])
        right = Clause([-1, 3])
        assert left.resolve(right, 1) == Clause([2, 3])

    def test_symmetric(self):
        left = Clause([1, 2])
        right = Clause([-1, 3])
        assert right.resolve(left, 1) == left.resolve(right, 1)

    def test_tautological_resolvent(self):
        left = Clause([1, 2])
        right = Clause([-1, -2])
        assert left.resolve(right, 1).is_tautology()

    def test_unit_resolution_gives_empty(self):
        assert Clause([1]).resolve(Clause([-1]), 1).is_empty()

    def test_nonclashing_raises(self):
        with pytest.raises(ValueError):
            Clause([1, 2]).resolve(Clause([1, 3]), 1)


class TestSubsumption:
    def test_subset_subsumes(self):
        assert Clause([1]).subsumes(Clause([1, 2]))

    def test_equal_subsumes(self):
        assert Clause([1, 2]).subsumes(Clause([2, 1]))

    def test_superset_does_not(self):
        assert not Clause([1, 2]).subsumes(Clause([1]))

    def test_polarity_matters(self):
        assert not Clause([-1]).subsumes(Clause([1, 2]))


class TestEvaluate:
    def test_satisfied(self):
        assert Clause([1, 2]).evaluate({1: True}) is True

    def test_falsified(self):
        assert Clause([1, 2]).evaluate({1: False, 2: False}) is False

    def test_undetermined(self):
        assert Clause([1, 2]).evaluate({1: False}) is None

    def test_empty_clause_false(self):
        assert Clause().evaluate({}) is False

    def test_negative_literal(self):
        assert Clause([-1]).evaluate({1: False}) is True


class TestRestrict:
    def test_satisfied_returns_none(self):
        assert Clause([1, 2]).restrict({1: True}) is None

    def test_drops_falsified(self):
        assert Clause([1, 2]).restrict({1: False}) == Clause([2])

    def test_to_empty(self):
        assert Clause([1]).restrict({1: False}) == Clause()


class TestMapVariables:
    def test_rename(self):
        assert Clause([1, -2]).map_variables({2: 5}) == Clause([1, -5])

    def test_negative_target_flips_polarity(self):
        assert Clause([2]).map_variables({2: -7}) == Clause([-7])
        assert Clause([-2]).map_variables({2: -7}) == Clause([7])

    def test_identity_where_missing(self):
        clause = Clause([1, -3])
        assert clause.map_variables({}) == clause


class TestValueSemantics:
    def test_equality_ignores_order(self):
        assert Clause([1, 2]) == Clause([2, 1])

    def test_hash_consistent(self):
        assert hash(Clause([1, 2])) == hash(Clause([2, 1]))

    def test_usable_in_sets(self):
        assert len({Clause([1, 2]), Clause([2, 1]), Clause([3])}) == 2

    def test_to_str(self):
        assert Clause([1, -2]).to_str() == "(x1 + x2')"
        assert Clause().to_str() == "()"
