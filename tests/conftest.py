"""Shared test helpers: reference (brute-force) solvers and builders.

Every solver test cross-checks against :func:`brute_force_status`,
an exhaustive enumeration that is slow but obviously correct.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

import pytest

from repro.cnf.formula import CNFFormula


def brute_force_status(formula: CNFFormula,
                       max_vars: int = 20) -> str:
    """Exhaustively decide satisfiability ('SAT'/'UNSAT')."""
    n = formula.num_vars
    if n > max_vars:
        raise ValueError(f"{n} variables exceed brute-force limit")
    for bits in itertools.product([False, True], repeat=n):
        assignment = {var: bits[var - 1] for var in range(1, n + 1)}
        if formula.evaluate(assignment) is True:
            return "SAT"
    return "UNSAT"


def brute_force_models(formula: CNFFormula,
                       max_vars: int = 16):
    """Yield every total model as a variable->bool dict."""
    n = formula.num_vars
    if n > max_vars:
        raise ValueError(f"{n} variables exceed brute-force limit")
    for bits in itertools.product([False, True], repeat=n):
        assignment = {var: bits[var - 1] for var in range(1, n + 1)}
        if formula.evaluate(assignment) is True:
            yield assignment


def assert_model_satisfies(formula: CNFFormula, assignment) -> None:
    """Fail unless *assignment* (possibly partial) satisfies the
    formula under any extension -- i.e. every clause has a satisfied
    literal or only unassigned ones that can still be chosen freely."""
    mapping: Dict[int, Optional[bool]] = (
        assignment.as_dict() if hasattr(assignment, "as_dict")
        else dict(assignment))
    for clause in formula:
        value = clause.evaluate(mapping)
        assert value is not False, \
            f"clause {clause} falsified by model"


@pytest.fixture
def tiny_sat_formula():
    """(a + b)(a' + b)(b' + c): satisfiable, forces b."""
    formula = CNFFormula(3)
    formula.add_clause([1, 2])
    formula.add_clause([-1, 2])
    formula.add_clause([-2, 3])
    return formula


@pytest.fixture
def tiny_unsat_formula():
    """All four clauses over two variables: unsatisfiable."""
    formula = CNFFormula(2)
    formula.add_clause([1, 2])
    formula.add_clause([1, -2])
    formula.add_clause([-1, 2])
    formula.add_clause([-1, -2])
    return formula
