"""Tests for the inprocessing engine (repro.solvers.inprocess) and the
vectorized simplification kernels (repro.solvers.kernels)."""

import random

import pytest

from conftest import assert_model_satisfies

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole, random_ksat
from repro.solvers import kernels
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import solve_dpll
from repro.solvers.inprocess import InprocessConfig, Inprocessor, PASSES
from repro.solvers.result import Status
from repro.verify.checker import check_proof_steps
from repro.verify.drat import MemoryProofSink, attach_proof_stream

HAS_NUMPY = kernels.kernels_available()


def small_random(rng, nv=None, nc=None):
    nv = nv or rng.randint(4, 10)
    nc = nc or rng.randint(nv, 4 * nv)
    return random_ksat(nv, nc, k=3, seed=rng.randrange(1 << 30))


def mixed_width(rng, nv=8, nc=24):
    """Random formula with clause widths 1..3 (units and binaries make
    the equivalence / root passes actually fire)."""
    f = CNFFormula(num_vars=nv)
    for _ in range(nc):
        width = rng.randint(1, 3)
        lits, seen = [], set()
        while len(lits) < width:
            var = rng.randint(1, nv)
            if var in seen:
                break
            seen.add(var)
            lits.append(var if rng.random() < 0.5 else -var)
        if lits:
            f.add_clause(lits)
    return f


def solo_pass(name, **extra):
    """InprocessConfig with only *name* (plus the always-on root
    sweep) enabled."""
    toggles = {"subsumption": False, "self_subsumption": False,
               "vivification": False, "bve": False, "equivalence": False}
    if name == "subsumption":
        toggles["subsumption"] = toggles["self_subsumption"] = True
    elif name != "root":
        toggles[name] = True
    return InprocessConfig(interval=1, **toggles, **extra)


def check_round_trip(formula, config, kernel_events=False):
    """Solve with inprocessing forced on every conflict; the verdict
    must match DPLL, SAT models must satisfy the *original* formula,
    and UNSAT proofs must pass the independent checker."""
    reference = solve_dpll(formula)
    solver = CDCLSolver(formula, inprocess=config)
    sink = attach_proof_stream(solver, MemoryProofSink())
    result = solver.solve()
    assert result.status == reference.status
    if result.status is Status.SATISFIABLE:
        assert_model_satisfies(formula, result.assignment)
    else:
        outcome = check_proof_steps(formula, sink.events)
        assert outcome.valid, outcome.error
    return result, solver


class TestKernels:
    def test_kernel_names_and_capability(self):
        assert set(kernels.KERNEL_NAMES) == {"auto", "numpy", "python"}
        cap = kernels.capability()
        assert cap["numpy"] == HAS_NUMPY
        assert cap["default_kernel"] in ("numpy", "python")
        assert kernels.resolve_kernel("python") == "python"
        assert kernels.resolve_kernel("auto") in ("numpy", "python")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernels.resolve_kernel("fortran")

    def test_clause_signature_bits(self):
        # Bit position is lit & 63, identical for both literal signs.
        assert kernels.clause_signature([1]) == 1 << 1
        assert kernels.clause_signature([-1]) == 1 << (-1 & 63)
        assert kernels.clause_signature([64]) == 1 << 0
        combined = kernels.clause_signature([3, -7, 100])
        for lit in (3, -7, 100):
            assert combined & (1 << (lit & 63))

    def test_subsumption_pairs_strict_subset(self):
        # Regression: a strictly shorter clause must subsume its
        # superset (signature filter direction).
        pairs = kernels.subsumption_pairs([[1, 2, 3], [1, 2]])
        assert pairs == [(0, 1)]

    def test_subsumption_pairs_duplicates(self):
        pairs = kernels.subsumption_pairs([[4, 5], [5, 4]])
        assert pairs == [(1, 0)]

    def test_subsumption_pairs_none(self):
        assert kernels.subsumption_pairs([[1, 2], [-1, 3], [2, -3]]) == []

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
    def test_kernel_parity(self):
        rng = random.Random(42)
        for _ in range(25):
            clauses = [sorted({rng.randint(1, 20)
                               * rng.choice([1, -1])
                               for _ in range(rng.randint(1, 5))})
                       for _ in range(rng.randint(2, 30))]
            sig_py = kernels.bulk_signatures(clauses, kernel="python")
            sig_np = kernels.bulk_signatures(clauses, kernel="numpy")
            assert list(sig_py) == [int(s) for s in sig_np]
            flat = [lit for c in clauses for lit in c]
            occ_py = kernels.occurrence_counts(flat, 20, kernel="python")
            occ_np = kernels.occurrence_counts(flat, 20, kernel="numpy")
            assert list(occ_py) == [int(x) for x in occ_np]
            arr_py = kernels.as_sig_array(sig_py, kernel="python")
            arr_np = kernels.as_sig_array(sig_np, kernel="numpy")
            idx = list(range(len(clauses)))
            probe = sig_py[0]
            assert (kernels.filter_supersets(probe, idx, arr_py,
                                             kernel="python")
                    == kernels.filter_supersets(probe, idx, arr_np,
                                                kernel="numpy"))
            assert (kernels.filter_subsets(probe, idx, arr_py,
                                           kernel="python")
                    == kernels.filter_subsets(probe, idx, arr_np,
                                              kernel="numpy"))
            assert (kernels.subsumption_pairs(clauses, kernel="python")
                    == kernels.subsumption_pairs(clauses, kernel="numpy"))


class TestPassRoundTrips:
    @pytest.mark.parametrize("name", PASSES)
    def test_single_pass_preserves_answers(self, name):
        rng = random.Random(hash(name) & 0xFFFF)
        for _ in range(25):
            check_round_trip(mixed_width(rng), solo_pass(name))

    def test_all_passes_together(self):
        rng = random.Random(7)
        for _ in range(40):
            check_round_trip(small_random(rng),
                             InprocessConfig(interval=1))

    def test_python_kernel_round_trip(self):
        rng = random.Random(13)
        for _ in range(20):
            check_round_trip(small_random(rng),
                             InprocessConfig(interval=1,
                                             kernel="python"))

    def test_pigeonhole_proof_checked(self):
        formula = pigeonhole(4)
        result, solver = check_round_trip(
            formula, InprocessConfig(interval=10))
        assert result.status is Status.UNSATISFIABLE
        assert solver.stats.inprocess_runs >= 1


class TestModelReconstruction:
    def drive(self, formula, config):
        solver = CDCLSolver(formula, inprocess=config)
        ip = Inprocessor(solver, config)
        solver._inprocessor = ip
        assert ip.run(()) is None
        return solver, ip

    def test_bve_restores_eliminated_variable(self):
        formula = CNFFormula(num_vars=3)
        formula.add_clauses([[1, 2], [-1, 3], [2, 3], [-2, -3, 1]])
        solver, ip = self.drive(formula, solo_pass("bve"))
        assert ip.eliminated
        result = solver.solve()
        assert result.status is Status.SATISFIABLE
        for var in ip.eliminated:
            assert result.assignment.value_of(var) is not None
        assert_model_satisfies(formula, result.assignment)

    def test_bve_pure_variable(self):
        # Variable 4 is pure-positive: BVE removes it with zero
        # resolvents; the witness loop must still give it a value
        # satisfying its saved clauses.
        formula = CNFFormula(num_vars=4)
        formula.add_clauses([[4, 1], [4, -2], [1, 2, 3], [-1, -2],
                             [-1, 2, -3]])
        solver, ip = self.drive(formula, solo_pass("bve"))
        assert 4 in ip.eliminated
        result = solver.solve()
        assert result.status is Status.SATISFIABLE
        assert_model_satisfies(formula, result.assignment)

    def test_equivalence_restores_substituted_variable(self):
        # 1 <-> 2 via the binary pair; one of them is substituted out.
        formula = CNFFormula(num_vars=4)
        formula.add_clauses([[-1, 2], [1, -2], [1, 3], [2, 4],
                             [-3, -4]])
        solver, ip = self.drive(formula, solo_pass("equivalence"))
        assert len(ip.eliminated) == 1
        result = solver.solve()
        assert result.status is Status.SATISFIABLE
        assert_model_satisfies(formula, result.assignment)
        # The equivalence itself must hold in the lifted model.
        assert (result.assignment.value_of(1)
                == result.assignment.value_of(2))

    def test_randomized_reconstruction(self):
        rng = random.Random(77)
        for _ in range(30):
            formula = mixed_width(rng, nv=7, nc=14)
            config = InprocessConfig(interval=1)
            solver = CDCLSolver(formula, inprocess=config)
            result = solver.solve()
            if result.status is Status.SATISFIABLE:
                assert_model_satisfies(formula, result.assignment)


class TestCompactionInterleaving:
    def test_gc_and_inprocessing_share_the_arena(self):
        rng = random.Random(5)
        for _ in range(15):
            formula = small_random(rng, nv=9, nc=34)
            reference = solve_dpll(formula)
            solver = CDCLSolver(
                formula, deletion="size", deletion_bound=3,
                deletion_interval=25,
                inprocess=InprocessConfig(interval=3))
            sink = attach_proof_stream(solver, MemoryProofSink())
            result = solver.solve()
            assert result.status == reference.status
            if result.status is Status.SATISFIABLE:
                assert_model_satisfies(formula, result.assignment)
            else:
                outcome = check_proof_steps(formula, sink.events)
                assert outcome.valid, outcome.error


class TestGuards:
    def eliminate_something(self):
        formula = CNFFormula(num_vars=3)
        formula.add_clauses([[1, 2], [-1, 3], [2, 3]])
        config = solo_pass("bve")
        solver = CDCLSolver(formula, inprocess=config)
        ip = Inprocessor(solver, config)
        solver._inprocessor = ip
        ip.run(())
        assert ip.eliminated
        return solver, next(iter(ip.eliminated))

    def test_assumption_on_eliminated_variable_rejected(self):
        solver, var = self.eliminate_something()
        with pytest.raises(RuntimeError, match="eliminated"):
            solver.solve([var])

    def test_added_clause_on_eliminated_variable_rejected(self):
        solver, var = self.eliminate_something()
        with pytest.raises(RuntimeError, match="eliminated"):
            solver.add_clause([var, 2])

    def test_incremental_disables_eliminating_passes(self):
        from repro.solvers.incremental import IncrementalSolver
        inc = IncrementalSolver(inprocess=True)
        config = inc._solver.inprocess_config
        assert config is not None
        assert config.bve is False
        assert config.equivalence is False
        assert config.subsumption is True

    def test_frozen_assumption_variables_survive(self):
        rng = random.Random(21)
        for _ in range(15):
            formula = mixed_width(rng, nv=7, nc=16)
            assumption = rng.choice([1, -1]) * rng.randint(1, 7)
            with_assumption = formula.copy()
            with_assumption.add_clause([assumption])
            reference = solve_dpll(with_assumption)
            solver = CDCLSolver(formula,
                                inprocess=InprocessConfig(interval=1))
            result = solver.solve([assumption])
            assert result.status == reference.status
            if result.status is Status.SATISFIABLE:
                assert_model_satisfies(with_assumption,
                                       result.assignment)


class TestWiring:
    def test_stats_fields_populate(self):
        solver = CDCLSolver(pigeonhole(4),
                            inprocess=InprocessConfig(interval=10))
        solver.solve()
        stats = solver.stats
        assert stats.inprocess_runs >= 1
        assert stats.inprocess_removed_clauses >= 0
        assert "inprocess_runs" in stats.as_dict()

    def test_trace_event_valid(self):
        from repro.obs import ListSink, Tracer, validate_event
        sink = ListSink()
        tracer = Tracer(sink)
        solver = CDCLSolver(pigeonhole(4),
                            inprocess=InprocessConfig(interval=10))
        solver.tracer = tracer
        solver.solve()
        tracer.close()
        events = [e for e in sink.events
                  if e.get("name") == "cdcl.inprocess"]
        assert events
        for event in events:
            assert validate_event(event) == []
            assert event["attrs"]["kernel"] in ("numpy", "python")

    def test_portfolio_diversification_axis(self):
        from repro.solvers.portfolio import (PortfolioConfig,
                                             default_portfolio)
        configs = default_portfolio(8)
        assert configs[0].inprocess is False
        assert any(c.inprocess for c in configs)
        assert any("-inp" in c.name for c in configs)
        config = PortfolioConfig(name="x", inprocess=True,
                                 inprocess_interval=500)
        solver = config.build_solver(pigeonhole(3))
        assert solver.inprocess_config is not None
        assert solver.inprocess_config.interval == 500

    def test_pass_totals_accumulate(self):
        config = InprocessConfig(interval=10)
        solver = CDCLSolver(pigeonhole(4), inprocess=config)
        solver.solve()
        ip = solver._inprocessor
        assert ip is not None and ip.runs >= 1
        assert set(ip.pass_totals) == set(PASSES)
        total = sum(sum(c.values()) for c in ip.pass_totals.values())
        assert total > 0
