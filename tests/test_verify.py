"""Tests for repro.verify: streaming DRUP proofs, the independent
checker, certificates, and the certified application paths."""

import os

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole, random_ksat_at_ratio
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.result import Status
from repro.verify import (
    Certificate,
    FileProofSink,
    MemoryProofSink,
    certified_solve,
    check_proof_file,
    check_proof_lines,
    check_proof_steps,
    check_unsat_proof,
    solve_with_proof_stream,
)


class TestCheckerIndependence:
    def test_checker_never_imports_the_solver_stack(self):
        """The trusted base is the checker alone: a checker built on
        the solver's BCP would faithfully reproduce the solver's bugs
        and certify nothing."""
        import ast
        import inspect

        import repro.verify.checker as checker

        tree = ast.parse(inspect.getsource(checker))
        imported = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                imported.update(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                imported.add(node.module or "")
        for module in imported:
            assert not module.startswith("repro"), \
                f"checker imports {module}"


class TestProofStreaming:
    def test_unsat_proof_checks_valid_in_memory(self):
        formula = pigeonhole(4)
        result, sink = solve_with_proof_stream(formula)
        assert result.status is Status.UNSATISFIABLE
        assert sink.concluded
        outcome = check_proof_steps(formula, sink.events)
        assert outcome.valid, outcome.error
        assert outcome.concluded

    def test_unsat_proof_checks_valid_on_disk(self, tmp_path):
        formula = pigeonhole(4)
        path = str(tmp_path / "php4.drup")
        result, sink = solve_with_proof_stream(formula,
                                               proof_path=path)
        assert result.status is Status.UNSATISFIABLE
        assert sink.bytes_written == os.path.getsize(path)
        outcome = check_proof_file(formula, path)
        assert outcome.valid, outcome.error
        assert outcome.adds == sink.adds + 1   # + concluding 0 line

    def test_memory_sink_lines_round_trip(self):
        """The rendered file body and the in-memory events are the
        same proof to the checker."""
        formula = pigeonhole(4)
        result, sink = solve_with_proof_stream(formula)
        assert result.status is Status.UNSATISFIABLE
        by_events = check_proof_steps(formula, sink.events)
        by_lines = check_proof_lines(formula,
                                     sink.lines().splitlines())
        assert by_events.valid and by_lines.valid
        assert by_events.adds == by_lines.adds
        assert by_events.deletes == by_lines.deletes

    def test_sat_run_emits_no_conclusion(self):
        formula = random_ksat_at_ratio(20, 3.5, 3, seed=0)
        result, sink = solve_with_proof_stream(formula)
        assert result.status is Status.SATISFIABLE
        assert not sink.concluded
        # The partial derivation is still all-RUP.
        outcome = check_proof_steps(formula, sink.events,
                                    require_empty=False)
        assert outcome.valid, outcome.error

    def test_proof_valid_across_gc_compactions(self):
        """Deletion lines keep the proof checkable across arena GC:
        the checker's database mirrors the solver's, shrinking in
        step.  At least two compactions must actually happen."""
        formula = pigeonhole(5)
        solver = CDCLSolver(formula, deletion="size",
                            deletion_bound=3, deletion_interval=20)
        sink = MemoryProofSink()
        from repro.verify import attach_proof_stream
        attach_proof_stream(solver, sink)
        result = solver.solve()
        assert result.status is Status.UNSATISFIABLE
        assert result.stats.gc_runs >= 2, \
            "instance no longer exercises the compacting GC"
        assert sink.deletes > 0, "GC emitted no deletion lines"
        outcome = check_proof_steps(formula, sink.events)
        assert outcome.valid, outcome.error
        assert outcome.deletes == sink.deletes


class TestCheckerRejections:
    @pytest.fixture()
    def php4_proof(self, tmp_path):
        formula = pigeonhole(4)
        path = str(tmp_path / "php4.drup")
        result, _ = solve_with_proof_stream(formula, proof_path=path)
        assert result.status is Status.UNSATISFIABLE
        return formula, path

    def test_corrupted_add_line_pinpointed(self, php4_proof):
        formula, path = php4_proof
        lines = open(path).read().splitlines()
        # Replace the first add with a clause the database cannot
        # derive (a fresh positive unit over a brand-new variable).
        lines[0] = "999 0"
        outcome = check_proof_lines(formula, lines)
        assert not outcome.valid
        assert outcome.line == 1
        assert outcome.error.startswith("line 1:")
        assert "not a RUP consequence" in outcome.error

    def test_truncated_proof_pinpointed(self, php4_proof):
        formula, path = php4_proof
        lines = open(path).read().splitlines()[:-1]   # drop final "0"
        # Drop the trailing derived units too so the database does
        # not already propagate to conflict.
        while lines and len(lines[-1].split()) <= 2:
            lines.pop()
        outcome = check_proof_lines(formula, lines)
        assert not outcome.valid
        assert outcome.line == len(lines)
        assert "without the empty clause" in outcome.error

    def test_malformed_literal_pinpointed(self, php4_proof):
        formula, path = php4_proof
        lines = open(path).read().splitlines()
        lines[2] = "1 bogus 0"
        outcome = check_proof_lines(formula, lines)
        assert not outcome.valid
        assert outcome.line == 3
        assert "malformed literal 'bogus'" in outcome.error

    def test_missing_terminator_pinpointed(self, php4_proof):
        formula, path = php4_proof
        lines = open(path).read().splitlines()
        lines[1] = lines[1].rsplit(" ", 1)[0]         # strip the 0
        outcome = check_proof_lines(formula, lines)
        assert not outcome.valid
        assert outcome.line == 2
        assert "missing terminating 0" in outcome.error

    def test_deleting_unknown_clause_rejected(self):
        formula = CNFFormula(num_vars=2, clauses=[[1, 2]])
        outcome = check_proof_lines(formula, ["d 1 -2 0"])
        assert not outcome.valid
        assert outcome.line == 1
        assert "not in the database" in outcome.error

    def test_missing_file_is_invalid_not_raised(self):
        formula = CNFFormula(num_vars=1, clauses=[[1]])
        outcome = check_proof_file(formula, "/nonexistent/p.drup")
        assert not outcome.valid
        assert "unreadable proof file" in outcome.error


class _TamperingSink(FileProofSink):
    """Drops every third add step: the proof file looks plausible but
    has holes the checker must catch."""

    def add(self, literals):
        if self.adds % 3 == 2:
            self.adds += 1              # count it, never emit it
            return
        super().add(literals)


class TestCertifiedSolve:
    def test_unsat_carries_valid_proof_certificate(self, tmp_path):
        path = str(tmp_path / "php4.drup")
        result = certified_solve(pigeonhole(4), proof_path=path)
        assert result.status is Status.UNSATISFIABLE
        cert = result.certificate
        assert cert.kind == "proof" and cert.valid
        assert cert.proof_path == path and os.path.exists(path)
        assert cert.steps > 0 and cert.bytes_written > 0

    def test_ephemeral_proof_cleaned_up(self):
        result = certified_solve(pigeonhole(4))
        cert = result.certificate
        assert cert.valid and cert.proof_path is None

    def test_sat_model_audited(self):
        formula = random_ksat_at_ratio(20, 3.5, 3, seed=0)
        result = certified_solve(formula)
        assert result.status is Status.SATISFIABLE
        cert = result.certificate
        assert cert.kind == "model" and cert.valid

    def test_unknown_gets_reasoned_none_certificate(self):
        result = certified_solve(pigeonhole(6), max_conflicts=5)
        assert result.status is Status.UNKNOWN
        assert result.certificate.kind == "none"
        assert "budget" in result.certificate.reason

    def test_learning_disabled_is_refused(self):
        with pytest.raises(ValueError, match="clause learning"):
            certified_solve(pigeonhole(4), learning=False)

    def test_invalid_proof_demotes_to_unknown(self, tmp_path):
        """A tampered stream must never surface as UNSAT: the answer
        is demoted and the diagnostic kept."""
        path = str(tmp_path / "bad.drup")
        result = certified_solve(pigeonhole(4), proof_path=path,
                                 sink_factory=_TamperingSink)
        assert result.status is Status.UNKNOWN
        cert = result.certificate
        assert cert.kind == "proof" and cert.valid is False
        assert cert.reason.startswith("line ")
        assert os.path.exists(path)     # kept for post-mortem

    def test_check_emits_trace_event(self, tmp_path):
        from repro.obs import ListSink, Tracer, validate_event

        sink = ListSink()
        tracer = Tracer(sink)
        path = str(tmp_path / "php4.drup")
        result = certified_solve(pigeonhole(4), proof_path=path,
                                 tracer=tracer)
        assert result.status is Status.UNSATISFIABLE
        checks = [e for e in sink.events
                  if e["kind"] == "event"
                  and e["name"] == "verify.check"]
        assert len(checks) == 1
        event = checks[0]
        assert validate_event(event) == []
        assert event["attrs"]["valid"] == 1
        assert event["attrs"]["steps"] > 0
        assert event["attrs"]["bytes"] == os.path.getsize(path)

    def test_check_unsat_proof_standalone(self, tmp_path):
        formula = pigeonhole(4)
        path = str(tmp_path / "php4.drup")
        solve_with_proof_stream(formula, proof_path=path)
        cert = check_unsat_proof(formula, path)
        assert isinstance(cert, Certificate)
        assert cert.valid and "proof verified" in cert.summary()


class TestCertifiedApplications:
    def test_atpg_redundant_fault_certified(self, tmp_path):
        from repro.apps.atpg import TestOutcome, solve_fault
        from repro.circuits.faults import StuckAtFault
        from repro.circuits.library import redundant_or_chain

        result = solve_fault(redundant_or_chain(),
                             StuckAtFault("ab", False),
                             certify=True, proof_dir=str(tmp_path))
        assert result.outcome is TestOutcome.REDUNDANT
        cert = result.certificate
        assert cert.valid
        assert os.path.exists(str(tmp_path / "atpg-ab-sa0.drup"))

    def test_atpg_detected_fault_model_audited(self):
        from repro.apps.atpg import TestOutcome, solve_fault
        from repro.circuits.faults import StuckAtFault
        from repro.circuits.library import c17

        result = solve_fault(c17(), StuckAtFault("G10", False),
                             certify=True)
        assert result.outcome is TestOutcome.DETECTED
        assert result.certificate.kind == "model"
        assert result.certificate.valid

    def test_atpg_circuit_method_cannot_certify(self):
        from repro.apps.atpg import solve_fault
        from repro.circuits.faults import StuckAtFault
        from repro.circuits.library import c17

        with pytest.raises(ValueError, match="structural"):
            solve_fault(c17(), StuckAtFault("G10", False),
                        method="circuit", certify=True)

    def test_cec_equivalence_certified(self, tmp_path):
        from repro.apps.equivalence import check_equivalence
        from repro.circuits.generators import (
            carry_select_adder,
            ripple_carry_adder,
        )

        report = check_equivalence(ripple_carry_adder(4),
                                   carry_select_adder(4),
                                   certify=True,
                                   proof_dir=str(tmp_path))
        assert report.equivalent is True
        assert report.certificate.valid
        assert report.certificate.proof_path.endswith(".drup")
        assert os.path.exists(report.certificate.proof_path)

    def test_cec_preprocessing_cannot_certify(self):
        from repro.apps.equivalence import check_equivalence
        from repro.circuits.generators import ripple_carry_adder

        with pytest.raises(ValueError, match="preprocess"):
            check_equivalence(ripple_carry_adder(4),
                              ripple_carry_adder(4),
                              use_preprocessing=True, certify=True)

    def test_bmc_per_depth_proofs(self, tmp_path):
        from repro.apps.bmc import check_safety
        from repro.circuits.generators import binary_counter

        result = check_safety(binary_counter(3), "rollover", True,
                              max_depth=4, certify=True,
                              proof_dir=str(tmp_path))
        # 2^3 counter: rollover unreachable within 4 steps.
        assert result.property_holds
        assert result.depths_proved == 5
        assert not result.discrepant
        assert len(result.certificates) == 5
        for depth, cert in enumerate(result.certificates):
            assert cert.valid, f"depth {depth}: {cert.reason}"
            assert os.path.exists(
                str(tmp_path / f"depth{depth}.drup"))

    def test_bmc_counterexample_model_audited(self):
        from repro.apps.bmc import check_safety
        from repro.circuits.generators import binary_counter

        result = check_safety(binary_counter(2), "rollover", True,
                              max_depth=5, certify=True)
        assert result.failure_depth == 3
        assert result.certificates[-1].kind == "model"
        assert result.certificates[-1].valid


class TestCertifiedPortfolio:
    def test_race_unsat_carries_checked_certificate(self, tmp_path):
        from repro.solvers.portfolio import solve_portfolio

        outcome = solve_portfolio(pigeonhole(5), processes=2,
                                  timeout=30.0,
                                  progress_interval=None,
                                  proof_dir=str(tmp_path))
        result = outcome.result
        assert result.status is Status.UNSATISFIABLE
        assert result.certificate is not None
        assert result.certificate.valid

    def test_false_unsat_lie_degrades_to_discrepant(self, tmp_path):
        """A worker lying UNSAT without a checkable proof must not
        settle the race: it is marked DISCREPANT and the honest
        workers carry on."""
        from repro.runtime.faults import FaultPlan
        from repro.solvers.portfolio import solve_portfolio

        formula = random_ksat_at_ratio(20, 3.0, 3, seed=3)
        plan = FaultPlan(false_unsat={0: 1})
        outcome = solve_portfolio(formula, processes=2,
                                  timeout=30.0, max_retries=1,
                                  fault_plan=plan,
                                  progress_interval=None,
                                  proof_dir=str(tmp_path))
        result = outcome.result
        assert result.status is Status.SATISFIABLE
        assert formula.is_satisfied_by(result.assignment)
        fates = [w.outcome.name for w in outcome.report.workers]
        assert "DISCREPANT" in fates
        liar = next(w for w in outcome.report.workers
                    if w.outcome.name == "DISCREPANT")
        assert liar.discrepancy
