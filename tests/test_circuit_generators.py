"""Unit tests for repro.circuits.generators."""

import itertools

import pytest

from repro.circuits.generators import (
    array_multiplier,
    binary_counter,
    carry_select_adder,
    comparator,
    mux_tree,
    parity_tree,
    random_circuit,
    ripple_carry_adder,
    shift_register,
)
from repro.circuits.simulate import simulate, simulate_sequence


def adder_inputs(width, x, y, carry):
    vector = {f"a{i}": bool((x >> i) & 1) for i in range(width)}
    vector.update({f"b{i}": bool((y >> i) & 1) for i in range(width)})
    vector["cin"] = carry
    return vector


def adder_output(width, values):
    total = sum((1 << i) for i in range(width) if values[f"s{i}"])
    if values["cout"]:
        total += 1 << width
    return total


class TestRippleCarryAdder:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_exhaustive(self, width):
        circuit = ripple_carry_adder(width)
        circuit.validate()
        for x in range(1 << width):
            for y in range(1 << width):
                for carry in (False, True):
                    values = simulate(circuit,
                                      adder_inputs(width, x, y, carry))
                    assert adder_output(width, values) == \
                        x + y + int(carry)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)


class TestCarrySelectAdder:
    @pytest.mark.parametrize("width,block", [(2, 1), (3, 2), (4, 2),
                                             (5, 3)])
    def test_matches_ripple(self, width, block):
        csa = carry_select_adder(width, block)
        csa.validate()
        for x in range(1 << width):
            for y in range(1 << width):
                for carry in (False, True):
                    vector = adder_inputs(width, x, y, carry)
                    assert adder_output(width, simulate(csa, vector)) \
                        == x + y + int(carry)

    def test_structurally_different_from_ripple(self):
        assert carry_select_adder(4).num_gates() != \
            ripple_carry_adder(4).num_gates()


class TestArrayMultiplier:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_exhaustive(self, width):
        circuit = array_multiplier(width)
        circuit.validate()
        for x in range(1 << width):
            for y in range(1 << width):
                vector = {f"a{i}": bool((x >> i) & 1)
                          for i in range(width)}
                vector.update({f"b{i}": bool((y >> i) & 1)
                               for i in range(width)})
                values = simulate(circuit, vector)
                product = sum((1 << i) for i in range(2 * width)
                              if values[f"p{i}"])
                assert product == x * y, (x, y)

    def test_output_count(self):
        assert len(array_multiplier(3).outputs) == 6


class TestTreeCircuits:
    @pytest.mark.parametrize("width", [1, 2, 5, 8])
    def test_parity_tree(self, width):
        circuit = parity_tree(width)
        circuit.validate()
        for bits in itertools.product([False, True],
                                      repeat=min(width, 6)):
            padded = list(bits) + [False] * (width - len(bits))
            vector = {f"i{k}": padded[k] for k in range(width)}
            values = simulate(circuit, vector)
            assert values["parity"] == (sum(padded) % 2 == 1)

    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_comparator(self, width):
        circuit = comparator(width)
        for x in range(1 << width):
            for y in range(1 << width):
                vector = {f"a{i}": bool((x >> i) & 1)
                          for i in range(width)}
                vector.update({f"b{i}": bool((y >> i) & 1)
                               for i in range(width)})
                assert simulate(circuit, vector)["eq"] == (x == y)

    @pytest.mark.parametrize("select_bits", [1, 2, 3])
    def test_mux_tree(self, select_bits):
        circuit = mux_tree(select_bits)
        data_count = 1 << select_bits
        for selected in range(data_count):
            vector = {f"d{i}": (i == selected)
                      for i in range(data_count)}
            vector.update({f"s{b}": bool((selected >> b) & 1)
                           for b in range(select_bits)})
            assert simulate(circuit, vector)["out"] is True


class TestRandomCircuit:
    def test_deterministic(self):
        from repro.circuits.bench_format import write_bench
        left = random_circuit(5, 20, seed=3)
        right = random_circuit(5, 20, seed=3)
        assert write_bench(left) == write_bench(right)

    def test_valid_and_sized(self):
        circuit = random_circuit(6, 30, seed=1)
        circuit.validate()
        assert circuit.num_gates() == 30
        assert len(circuit.inputs) == 6
        assert circuit.outputs

    def test_simulable(self):
        circuit = random_circuit(4, 15, seed=2)
        vector = {name: False for name in circuit.inputs}
        simulate(circuit, vector)


class TestSequentialGenerators:
    def test_counter_rolls_over_at_2_to_n(self):
        circuit = binary_counter(3)
        frames = simulate_sequence(circuit, [{"en": True}] * 10)
        first_rollover = next(i for i, f in enumerate(frames)
                              if f["rollover"])
        assert first_rollover == 7

    def test_counter_with_reset(self):
        circuit = binary_counter(2, with_reset=True)
        circuit.validate()
        vectors = [{"en": True, "rst": False}] * 2 + \
            [{"en": True, "rst": True}] + \
            [{"en": True, "rst": False}] * 4
        frames = simulate_sequence(circuit, vectors)
        # Reset at cycle 2 postpones the rollover past cycle 5.
        assert not any(frame["rollover"] for frame in frames[:6])

    def test_shift_register_length(self):
        circuit = shift_register(4)
        assert len(circuit.dffs) == 4
        circuit.validate()
