"""Unit tests for repro.apps.delay_fault (path delay faults, [7])."""

import pytest

from repro.apps.delay_fault import (
    DelayFaultATPG,
    PathDelayFault,
    PathTestability,
    enumerate_path_faults,
    validate_test,
)
from repro.circuits.gates import GateType
from repro.circuits.generators import ripple_carry_adder
from repro.circuits.library import c17, half_adder
from repro.circuits.netlist import Circuit


def false_path_circuit():
    """The p2->p3->y path needs a=1 and a=0 at once: untestable."""
    circuit = Circuit("falsepath")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("p1", GateType.BUFFER, ["b"])
    circuit.add_gate("p2", GateType.BUFFER, ["p1"])
    circuit.add_gate("p3", GateType.AND, ["p2", "a"])
    circuit.add_gate("na", GateType.NOT, ["a"])
    circuit.add_gate("y", GateType.AND, ["p3", "na"])
    circuit.set_output("y")
    return circuit


class TestPathDelayFault:
    def test_str(self):
        fault = PathDelayFault(("a", "g", "y"), rising=False)
        assert str(fault) == "F:a->g->y"

    def test_enumerate_both_transitions(self):
        faults = enumerate_path_faults(half_adder(), max_paths=2)
        assert len(faults) == 4
        assert {f.rising for f in faults} == {False, True}


class TestTestGeneration:
    def test_testable_path_on_half_adder(self):
        engine = DelayFaultATPG(half_adder())
        fault = PathDelayFault(("a", "carry"), rising=True)
        result = engine.test_path(fault)
        assert result.status is PathTestability.TESTABLE
        assert validate_test(half_adder(), fault, result.vector_pair)
        vector1, vector2 = result.vector_pair
        assert vector1["a"] is False and vector2["a"] is True
        assert vector2["b"] is True          # side input non-controlling

    def test_falling_transition(self):
        engine = DelayFaultATPG(half_adder())
        fault = PathDelayFault(("a", "carry"), rising=False)
        result = engine.test_path(fault)
        assert result.status is PathTestability.TESTABLE
        vector1, vector2 = result.vector_pair
        assert vector1["a"] is True and vector2["a"] is False

    def test_false_path_untestable(self):
        circuit = false_path_circuit()
        engine = DelayFaultATPG(circuit)
        fault = PathDelayFault(("b", "p1", "p2", "p3", "y"),
                               rising=True)
        result = engine.test_path(fault)
        assert result.status is PathTestability.UNTESTABLE

    def test_robust_implies_nonrobust(self):
        """Any robustly testable path is non-robustly testable."""
        circuit = c17()
        faults = enumerate_path_faults(circuit, max_paths=10)
        robust = DelayFaultATPG(circuit, robust=True)
        nonrobust = DelayFaultATPG(circuit, robust=False)
        for fault in faults:
            robust_result = robust.test_path(fault)
            if robust_result.status is PathTestability.TESTABLE:
                assert nonrobust.test_path(fault).status is \
                    PathTestability.TESTABLE

    def test_all_c17_paths(self):
        circuit = c17()
        engine = DelayFaultATPG(circuit)
        results = engine.run(enumerate_path_faults(circuit,
                                                   max_paths=20))
        assert results
        for result in results:
            assert result.status is not PathTestability.ABORTED
            if result.status is PathTestability.TESTABLE:
                assert validate_test(circuit, result.fault,
                                     result.vector_pair)

    def test_adder_carry_chain_testable(self):
        circuit = ripple_carry_adder(3)
        engine = DelayFaultATPG(circuit)
        faults = enumerate_path_faults(circuit, max_paths=4,
                                       min_length=circuit.depth())
        testable = [engine.test_path(f) for f in faults]
        assert any(r.status is PathTestability.TESTABLE
                   for r in testable)
        for result in testable:
            if result.status is PathTestability.TESTABLE:
                assert validate_test(circuit, result.fault,
                                     result.vector_pair)

    def test_incremental_reuse(self):
        """The shared solver accumulates clauses across paths."""
        circuit = c17()
        engine = DelayFaultATPG(circuit)
        faults = enumerate_path_faults(circuit, max_paths=10)
        engine.run(faults)
        assert engine.solver.calls == len(faults)


class TestValidation:
    def test_bad_path_rejected(self):
        engine = DelayFaultATPG(half_adder())
        with pytest.raises(ValueError):
            engine.test_path(PathDelayFault(("a",)))
        with pytest.raises(ValueError):
            engine.test_path(PathDelayFault(("a", "b")))  # b not a gate

    def test_disconnected_path_rejected(self):
        circuit = c17()
        engine = DelayFaultATPG(circuit)
        with pytest.raises(ValueError):
            engine.test_path(PathDelayFault(("G1", "G11")))

    def test_sequential_rejected(self):
        from repro.circuits.generators import binary_counter
        with pytest.raises(ValueError):
            DelayFaultATPG(binary_counter(2))

    def test_validate_test_rejects_wrong_pair(self):
        circuit = half_adder()
        fault = PathDelayFault(("a", "carry"), rising=True)
        bad_pair = ({"a": True, "b": True}, {"a": True, "b": True})
        assert not validate_test(circuit, fault, bad_pair)
