"""Unit tests for repro.apps.delay (Section 3)."""

import pytest

from repro.apps.delay import (
    arrival_times,
    compute_delay,
    enumerate_paths,
    is_path_sensitizable,
    topological_delay,
)
from repro.circuits.gates import GateType
from repro.circuits.generators import ripple_carry_adder
from repro.circuits.library import c17, half_adder
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import simulate


def false_path_circuit():
    """A circuit whose unique longest path is statically false.

    ``y = AND(chain(a), NOT(a))`` style: the long chain through ``a``
    requires the AND's side input ``NOT(a)`` to be non-controlling
    (1), i.e. a = 0; but then the chain input is 0 and the path is
    still traversed -- make it truly false by gating with ``a`` at
    both ends:

        p1 = BUF(a); p2 = BUF(p1); p3 = BUF(p2)       (long path)
        na = NOT(a)                                    (short path)
        y  = AND(p3, na)

    Sensitizing the long path (a -> p1 -> p2 -> p3 -> y) requires side
    input na = 1, hence a = 0... which is allowed (static
    sensitization ignores the data value on the path itself), so this
    path is statically sensitizable.  A genuinely false path needs
    conflicting side conditions:

        y = AND(p3, a')  AND  p3 = AND(p2, a)

    The p2 -> p3 -> y path needs a = 1 (side of p3) and a' = 1 i.e.
    a = 0 (side of y): contradiction -> false path.
    """
    circuit = Circuit("falsepath")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("p1", GateType.BUFFER, ["b"])
    circuit.add_gate("p2", GateType.BUFFER, ["p1"])
    circuit.add_gate("p3", GateType.AND, ["p2", "a"])
    circuit.add_gate("na", GateType.NOT, ["a"])
    circuit.add_gate("y", GateType.AND, ["p3", "na"])
    circuit.set_output("y")
    return circuit


class TestTopologicalDelay:
    def test_unit_delays(self):
        assert topological_delay(half_adder()) == 1
        assert topological_delay(c17()) == 3

    def test_custom_delays(self):
        delays = {"sum": 3}
        assert topological_delay(half_adder(), delays) == 3

    def test_arrival_times_monotone(self):
        circuit = c17()
        arrivals = arrival_times(circuit)
        for node in circuit:
            for fanin in node.fanins:
                assert arrivals[node.name] > arrivals[fanin]


class TestEnumeratePaths:
    def test_longest_first(self):
        lengths = [length for length, _ in
                   enumerate_paths(ripple_carry_adder(2))]
        assert lengths == sorted(lengths, reverse=True)

    def test_paths_are_connected(self):
        circuit = c17()
        for _, path in enumerate_paths(circuit):
            assert path[0] in circuit.inputs
            assert path[-1] in circuit.outputs
            for previous, current in zip(path, path[1:]):
                assert previous in circuit.fanin(current)

    def test_min_length_filter(self):
        circuit = c17()
        top = topological_delay(circuit)
        lengths = [length for length, _ in
                   enumerate_paths(circuit, min_length=top)]
        assert lengths and all(length == top for length in lengths)

    def test_path_count_on_c17(self):
        # Each path is a distinct input-to-output route.
        paths = list(enumerate_paths(c17()))
        assert len(paths) == len({tuple(p) for _, p in paths})
        assert len(paths) >= 10


class TestSensitization:
    def test_true_path(self):
        circuit = half_adder()
        sensitizable, vector = is_path_sensitizable(
            circuit, ["a", "carry"])
        assert sensitizable
        assert vector is not None

    def test_false_path_detected(self):
        circuit = false_path_circuit()
        # The long path through p2, p3 into y is false.
        sensitizable, _ = is_path_sensitizable(
            circuit, ["b", "p1", "p2", "p3", "y"])
        assert sensitizable is False

    def test_sensitizing_vector_is_valid(self):
        """All side inputs take non-controlling values under the
        returned vector."""
        circuit = c17()
        length, path = next(iter(enumerate_paths(circuit)))
        sensitizable, vector = is_path_sensitizable(circuit, path)
        if not sensitizable:
            pytest.skip("topologically longest c17 path not static")
        values = simulate(circuit, vector)
        for position in range(1, len(path)):
            node = circuit.node(path[position])
            if node.gate_type is not GateType.NAND:
                continue
            for fanin in node.fanins:
                if fanin != path[position - 1]:
                    assert values[fanin] is True   # non-controlling


class TestComputeDelay:
    def test_no_false_paths_in_adder(self):
        circuit = ripple_carry_adder(2)
        report = compute_delay(circuit)
        assert report.sensitizable_delay == report.topological_delay
        assert not report.has_false_critical_path

    def test_false_critical_path_reported(self):
        report = compute_delay(false_path_circuit())
        assert report.topological_delay == 4
        assert report.sensitizable_delay is not None
        assert report.sensitizable_delay < 4
        assert report.has_false_critical_path
        assert report.false_paths_examined >= 1

    def test_critical_path_returned(self):
        report = compute_delay(c17())
        assert report.critical_path is not None
        assert len(report.critical_path) >= 2
        assert report.sensitizing_vector is not None
