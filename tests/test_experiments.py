"""Unit tests for repro.experiments (tables, workloads, runner)."""

import pytest

from conftest import brute_force_status

from repro.experiments.runner import (
    RUN_HEADERS,
    RunRecord,
    run_matrix,
    run_solver,
    timed,
)
from repro.experiments.tables import format_table
from repro.experiments.workloads import (
    equivalence_pairs,
    figure4_condition,
    figure4_formula,
    medium_circuit_suite,
    sat_formula_suite,
    small_circuit_suite,
    unsat_formula_suite,
)


class TestTables:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"],
                            [["alpha", 1], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159265]])
        assert "3.142" in text

    def test_none_rendered_as_dash(self):
        text = format_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestWorkloads:
    def test_figure4_formula_clauses(self):
        formula = figure4_formula()
        rendered = formula.to_str()
        assert "(u + w' + x)" in rendered
        assert "(x + y')" in rendered
        assert "(w + y + z')" in rendered

    def test_figure4_condition(self):
        condition = figure4_condition()
        assert condition == {5: True, 1: False}

    def test_circuit_suites_validate(self):
        for circuit in small_circuit_suite() + medium_circuit_suite():
            circuit.validate()

    def test_equivalence_pairs_interfaces_match(self):
        for left, right in equivalence_pairs():
            assert left.inputs == right.inputs
            assert len(left.outputs) == len(right.outputs)

    def test_unsat_suite_is_unsat(self):
        from repro.solvers.cdcl import solve_cdcl
        for name, formula in unsat_formula_suite():
            assert solve_cdcl(formula).is_unsat, name

    def test_sat_suite_mostly_sat(self):
        from repro.solvers.cdcl import solve_cdcl
        outcomes = [solve_cdcl(formula).is_sat
                    for _, formula in sat_formula_suite(20, count=4)]
        assert sum(outcomes) >= 3


class TestRunner:
    @pytest.mark.parametrize("config", [
        "dpll", "cdcl", "cdcl-chrono", "cdcl-nolearn",
        "cdcl-decisioncut", "cdcl-size5", "cdcl-rel3",
        "cdcl-restart10", "cdcl-luby8", "cdcl-h:dlis", "walksat",
        "gsat",
    ])
    def test_configs_sound_on_small_instance(self, config,
                                             tiny_sat_formula,
                                             tiny_unsat_formula):
        sat_result = run_solver(config, tiny_sat_formula, seed=0)
        assert not sat_result.is_unsat
        unsat_result = run_solver(config, tiny_unsat_formula, seed=0)
        assert not unsat_result.is_sat

    def test_unknown_config_rejected(self, tiny_sat_formula):
        with pytest.raises(ValueError):
            run_solver("zchaff", tiny_sat_formula)
        with pytest.raises(ValueError):
            run_solver("cdcl-frob", tiny_sat_formula)

    def test_run_matrix_shape(self, tiny_sat_formula):
        records = run_matrix(["dpll", "cdcl"],
                             [("tiny", tiny_sat_formula)])
        assert len(records) == 2
        assert {r.config for r in records} == {"dpll", "cdcl"}
        assert all(len(r.row()) == len(RUN_HEADERS) for r in records)

    def test_record_from_result(self, tiny_unsat_formula):
        result = run_solver("cdcl", tiny_unsat_formula)
        record = RunRecord.from_result("cdcl", "t", result)
        assert record.status == "UNSATISFIABLE"
        assert record.seconds >= 0

    def test_timed(self):
        seconds, value = timed(sum, [1, 2, 3])
        assert value == 6
        assert seconds >= 0
