"""Unit tests for repro.cnf.pseudo_boolean and repro.apps.optimization."""

import itertools

import pytest

from conftest import brute_force_models, brute_force_status

from repro.apps.optimization import (
    PBProblem,
    knapsack_problem,
    minimize,
)
from repro.cnf.formula import CNFFormula
from repro.cnf.pseudo_boolean import (
    evaluate_terms,
    pb_at_least,
    pb_at_most,
    pb_equal,
)
from repro.solvers.result import Status


def projected_models(formula, base_vars):
    """Models projected onto variables 1..base_vars."""
    seen = set()
    for model in brute_force_models(formula, max_vars=18):
        seen.add(tuple(model[v] for v in range(1, base_vars + 1)))
    return seen


def expected_models(terms, base_vars, predicate):
    out = set()
    for bits in itertools.product([False, True], repeat=base_vars):
        model = {v: bits[v - 1] for v in range(1, base_vars + 1)}
        if predicate(evaluate_terms(terms, model)):
            out.add(bits)
    return out


class TestPBAtMost:
    @pytest.mark.parametrize("weights,bound", [
        ([1, 1, 1], 2),
        ([2, 3, 4], 5),
        ([1, 2, 3, 4], 6),
        ([5, 5, 5], 4),
    ])
    def test_semantics(self, weights, bound):
        n = len(weights)
        terms = [(w, i + 1) for i, w in enumerate(weights)]
        formula = CNFFormula(n)
        pb_at_most(formula, terms, bound)
        assert projected_models(formula, n) == \
            expected_models(terms, n, lambda s: s <= bound)

    def test_negative_bound_unsat(self):
        formula = CNFFormula(2)
        pb_at_most(formula, [(1, 1), (1, 2)], -1)
        assert brute_force_status(formula) == "UNSAT"

    def test_trivial_bound_noop(self):
        formula = CNFFormula(2)
        pb_at_most(formula, [(1, 1), (1, 2)], 5)
        assert formula.num_clauses == 0

    def test_negated_literals(self):
        # 2*x1' + 1*x2 <= 2
        terms = [(2, -1), (1, 2)]
        formula = CNFFormula(2)
        pb_at_most(formula, terms, 2)
        assert projected_models(formula, 2) == \
            expected_models(terms, 2, lambda s: s <= 2)

    def test_zero_weights_dropped(self):
        formula = CNFFormula(2)
        pb_at_most(formula, [(0, 1), (1, 2)], 0)
        models = projected_models(formula, 2)
        assert (True, False) in models
        assert (False, True) not in models

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            pb_at_most(CNFFormula(1), [(-1, 1)], 0)


class TestPBAtLeastEqual:
    @pytest.mark.parametrize("weights,bound", [
        ([1, 1, 1], 2),
        ([2, 3, 4], 5),
    ])
    def test_at_least(self, weights, bound):
        n = len(weights)
        terms = [(w, i + 1) for i, w in enumerate(weights)]
        formula = CNFFormula(n)
        pb_at_least(formula, terms, bound)
        assert projected_models(formula, n) == \
            expected_models(terms, n, lambda s: s >= bound)

    def test_at_least_impossible(self):
        formula = CNFFormula(2)
        pb_at_least(formula, [(1, 1), (1, 2)], 3)
        assert brute_force_status(formula) == "UNSAT"

    def test_equal(self):
        terms = [(2, 1), (3, 2), (4, 3)]
        formula = CNFFormula(3)
        pb_equal(formula, terms, 6)
        assert projected_models(formula, 3) == \
            expected_models(terms, 3, lambda s: s == 6)


class TestOptimization:
    def brute_optimum(self, problem, num_vars):
        best = None
        for bits in itertools.product([False, True], repeat=num_vars):
            model = {v: bits[v - 1] for v in range(1, num_vars + 1)}
            if problem.formula.evaluate(model) is True:
                cost = evaluate_terms(problem.objective, model)
                best = cost if best is None else min(best, cost)
        return best

    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    def test_weighted_vertex_cover(self, strategy):
        # Cover edges of a path a-b-c-d with weights 3,1,1,3.
        problem = PBProblem()
        variables = [problem.new_var() for _ in range(4)]
        weights = [3, 1, 1, 3]
        for left, right in ((0, 1), (1, 2), (2, 3)):
            problem.add_clause([variables[left], variables[right]])
        problem.set_objective(list(zip(weights, variables)))
        base_vars = problem.formula.num_vars
        solution = minimize(problem, strategy=strategy)
        assert solution.status is Status.SATISFIABLE
        assert solution.proven_optimal
        assert solution.cost == self.brute_optimum(problem, base_vars)
        assert solution.cost == 2        # pick b and c

    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    def test_knapsack(self, strategy):
        weights = [3, 4, 5, 2]
        values = [4, 5, 6, 3]
        capacity = 7
        problem, selections = knapsack_problem(weights, values,
                                               capacity)
        solution = minimize(problem, strategy=strategy)
        assert solution.proven_optimal
        picked = [i for i, var in enumerate(selections)
                  if solution.assignment.value_of(var) is True]
        total_weight = sum(weights[i] for i in picked)
        total_value = sum(values[i] for i in picked)
        assert total_weight <= capacity
        # Brute-force optimum: items {1,3}? w=6 v=8; {2,4}: w=7 v=9;
        # {0,3}: w=5 v=7; {0,1}: w=7 v=9 -- best value 9.
        assert total_value == 9

    def test_unsat_constraints(self):
        problem = PBProblem()
        var = problem.new_var()
        problem.add_clause([var])
        problem.add_clause([-var])
        problem.set_objective([(1, var)])
        solution = minimize(problem)
        assert solution.status is Status.UNSATISFIABLE

    def test_zero_cost_floor(self):
        problem = PBProblem()
        var = problem.new_var()
        problem.add_clause([var, -var])
        problem.set_objective([(5, var)])
        solution = minimize(problem)
        assert solution.cost == 0
        assert solution.assignment.value_of(var) is not True

    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            minimize(PBProblem(), strategy="simulated-annealing")

    def test_bad_objective_cost(self):
        problem = PBProblem()
        var = problem.new_var()
        with pytest.raises(ValueError):
            problem.set_objective([(0, var)])
