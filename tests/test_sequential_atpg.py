"""Unit tests for repro.apps.sequential_atpg (time-frame expansion)."""

import pytest

from repro.apps.sequential_atpg import (
    SequenceOutcome,
    SequentialATPG,
    generate_sequential_tests,
    validate_sequence,
)
from repro.circuits.faults import StuckAtFault, full_fault_list
from repro.circuits.gates import GateType
from repro.circuits.generators import binary_counter, shift_register
from repro.circuits.library import half_adder
from repro.circuits.netlist import Circuit


class TestShiftRegister:
    def test_internal_stage_fault_needs_propagation_frames(self):
        """A stuck stage in a 3-deep shift register needs >= 3 frames:
        the difference must shift to the output."""
        circuit = shift_register(3)
        result = SequentialATPG(circuit,
                                StuckAtFault("r1", False)).solve(8)
        assert result.outcome is SequenceOutcome.DETECTED
        assert result.detect_frame == 3
        assert validate_sequence(circuit, result)

    def test_input_fault(self):
        circuit = shift_register(2)
        result = SequentialATPG(circuit,
                                StuckAtFault("sin", True)).solve(8)
        assert result.outcome is SequenceOutcome.DETECTED
        assert validate_sequence(circuit, result)

    def test_sequence_length_matches_frame(self):
        circuit = shift_register(2)
        result = SequentialATPG(circuit,
                                StuckAtFault("r0", True)).solve(8)
        assert result.outcome is SequenceOutcome.DETECTED
        assert len(result.sequence) == result.detect_frame + 1


class TestCounter:
    def test_full_fault_list_detected(self):
        circuit = binary_counter(2)
        # The final carry (c1) drives nothing: its faults are genuine
        # sequential redundancies, so target only observable logic.
        faults = [fault for fault in full_fault_list(circuit)
                  if circuit.fanout(fault.node)
                  or fault.node in circuit.outputs]
        results = generate_sequential_tests(circuit, faults,
                                            max_depth=8)
        assert all(r.outcome is SequenceOutcome.DETECTED
                   for r in results), \
            [str(r.fault) for r in results
             if r.outcome is not SequenceOutcome.DETECTED]
        for result in results:
            assert validate_sequence(circuit, result)

    def test_dead_carry_faults_undetectable(self):
        circuit = binary_counter(2)
        for value in (False, True):
            result = SequentialATPG(
                circuit, StuckAtFault("c1", value)).solve(8)
            assert result.outcome is \
                SequenceOutcome.UNDETECTABLE_WITHIN_BOUND

    def test_deep_fault_needs_many_frames(self):
        """rollover stuck-at-0 on a 2-bit counter only shows when the
        counter reaches 11 with enable: frame 3."""
        circuit = binary_counter(2)
        result = SequentialATPG(
            circuit, StuckAtFault("rollover", False)).solve(8)
        assert result.outcome is SequenceOutcome.DETECTED
        assert result.detect_frame == 3

    def test_depth_bound_respected(self):
        circuit = binary_counter(2)
        result = SequentialATPG(
            circuit, StuckAtFault("rollover", False)).solve(2)
        assert result.outcome is \
            SequenceOutcome.UNDETECTABLE_WITHIN_BOUND


class TestCombinationalDegenerate:
    def test_combinational_circuit_detects_at_frame_zero(self):
        circuit = half_adder()
        result = SequentialATPG(circuit,
                                StuckAtFault("carry", True)).solve(3)
        assert result.outcome is SequenceOutcome.DETECTED
        assert result.detect_frame == 0
        assert validate_sequence(circuit, result)


class TestUndetectable:
    def test_sequentially_redundant_fault(self):
        """A DFF that never influences the output: fault undetectable
        at any depth."""
        circuit = Circuit("deadstate")
        circuit.add_input("d")
        circuit.add_dff("q", "d")        # q drives nothing
        circuit.add_gate("y", GateType.BUFFER, ["d"])
        circuit.set_output("y")
        result = SequentialATPG(circuit,
                                StuckAtFault("q", True)).solve(4)
        assert result.outcome is \
            SequenceOutcome.UNDETECTABLE_WITHIN_BOUND

    def test_initial_state_override(self):
        """Starting a counter at 11 makes rollover/sa0 visible in the
        very first frame."""
        circuit = binary_counter(2)
        engine = SequentialATPG(circuit,
                                StuckAtFault("rollover", False),
                                initial_state={"q0": True, "q1": True})
        result = engine.solve(2)
        assert result.outcome is SequenceOutcome.DETECTED
        assert result.detect_frame == 0
        assert validate_sequence(circuit, result,
                                 initial_state={"q0": True,
                                                "q1": True})

    def test_validate_rejects_non_detected(self):
        circuit = binary_counter(2)
        result = SequentialATPG(
            circuit, StuckAtFault("rollover", False)).solve(1)
        assert not validate_sequence(circuit, result)
