"""Unit tests for repro.apps.equivalence (Section 3)."""

import pytest

from repro.apps.equivalence import check_equivalence, mutate_circuit
from repro.circuits.generators import (
    carry_select_adder,
    parity_tree,
    random_circuit,
    ripple_carry_adder,
)
from repro.circuits.library import c17, half_adder
from repro.circuits.simulate import output_values, simulate


class TestEquivalentPairs:
    def test_identical_circuits(self):
        report = check_equivalence(c17(), c17())
        assert report.equivalent is True
        assert report.counterexample is None

    @pytest.mark.parametrize("width,block", [(3, 1), (4, 2)])
    def test_adder_architectures(self, width, block):
        report = check_equivalence(ripple_carry_adder(width),
                                   carry_select_adder(width, block))
        assert report.equivalent is True

    def test_preprocessing_eliminates_variables(self):
        """Miters are equivalence-rich: the Section 6 pass must
        eliminate variables without changing the verdict."""
        left = ripple_carry_adder(3)
        right = carry_select_adder(3)
        plain = check_equivalence(left, right, simulation_vectors=0)
        preprocessed = check_equivalence(left, right,
                                         simulation_vectors=0,
                                         use_preprocessing=True)
        assert plain.equivalent is True
        assert preprocessed.equivalent is True
        assert preprocessed.variables_eliminated > 0


class TestInequivalentPairs:
    def test_mutated_circuit_caught(self):
        circuit = c17()
        mutated = mutate_circuit(circuit, seed=1)
        report = check_equivalence(circuit, mutated,
                                   simulation_vectors=0)
        assert report.equivalent is False
        vector = report.counterexample
        left = output_values(circuit, simulate(circuit, vector))
        right = output_values(mutated, simulate(mutated, vector))
        assert list(left.values()) != list(right.values())

    def test_simulation_prefilter_catches_easy_bugs(self):
        circuit = parity_tree(6)
        mutated = mutate_circuit(circuit, seed=0)
        report = check_equivalence(circuit, mutated,
                                   simulation_vectors=64)
        assert report.equivalent is False
        # Parity bugs flip ~half the outputs: simulation finds them.
        assert report.refuted_by_simulation

    def test_counterexample_with_preprocessing_valid(self):
        circuit = half_adder()
        mutated = mutate_circuit(circuit, seed=3)
        report = check_equivalence(circuit, mutated,
                                   simulation_vectors=0,
                                   use_preprocessing=True)
        assert report.equivalent is False
        vector = report.counterexample
        left = output_values(circuit, simulate(circuit, vector))
        right = output_values(mutated, simulate(mutated, vector))
        assert list(left.values()) != list(right.values())

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuit_mutations(self, seed):
        circuit = random_circuit(5, 15, seed=seed)
        mutated = mutate_circuit(circuit, seed=seed)
        report = check_equivalence(circuit, mutated)
        # A gate swap may coincidentally preserve the function; when
        # reported inequivalent the counterexample must be genuine.
        if report.equivalent is False and report.counterexample:
            vector = report.counterexample
            left = output_values(circuit, simulate(circuit, vector))
            right = output_values(mutated, simulate(mutated, vector))
            assert list(left.values()) != list(right.values())


class TestMutateCircuit:
    def test_interface_preserved(self):
        circuit = c17()
        mutated = mutate_circuit(circuit, seed=0)
        assert mutated.inputs == circuit.inputs
        assert mutated.outputs == circuit.outputs
        mutated.validate()

    def test_exactly_one_gate_changed(self):
        circuit = c17()
        mutated = mutate_circuit(circuit, seed=0)
        changed = [node.name for node in circuit
                   if node.is_gate and
                   mutated.node(node.name).gate_type != node.gate_type]
        assert len(changed) == 1

    def test_no_mutable_gate(self):
        from repro.circuits.netlist import Circuit
        circuit = Circuit()
        circuit.add_input("a")
        circuit.set_output("a")
        with pytest.raises(ValueError):
            mutate_circuit(circuit)
