"""Unit tests for repro.hw.accelerator."""

import pytest

from conftest import assert_model_satisfies, brute_force_status

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import (
    parity_chain,
    pigeonhole,
    random_ksat_at_ratio,
)
from repro.hw.accelerator import HardwareSATAccelerator, estimate_speedup
from repro.solvers.result import Status


class TestSoundness:
    def test_sat(self, tiny_sat_formula):
        result = HardwareSATAccelerator(tiny_sat_formula).run()
        assert result.is_sat
        assert tiny_sat_formula.is_satisfied_by(result.assignment)

    def test_unsat(self, tiny_unsat_formula):
        assert HardwareSATAccelerator(tiny_unsat_formula).run().is_unsat

    def test_empty_clause(self):
        formula = CNFFormula()
        formula.add_clause([])
        assert HardwareSATAccelerator(formula).run().is_unsat

    def test_unit_conflict_at_power_on(self):
        formula = CNFFormula()
        formula.add_clauses([[1], [-1]])
        assert HardwareSATAccelerator(formula).run().is_unsat

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_brute_force(self, seed):
        formula = random_ksat_at_ratio(8, ratio=4.3, seed=seed)
        expected = brute_force_status(formula)
        result = HardwareSATAccelerator(formula).run()
        assert result.is_sat == (expected == "SAT")
        if result.is_sat:
            assert_model_satisfies(formula, result.assignment)

    def test_pigeonhole(self):
        assert HardwareSATAccelerator(pigeonhole(4)).run().is_unsat

    def test_parity_chain(self):
        assert HardwareSATAccelerator(parity_chain(8)).run().is_unsat
        assert HardwareSATAccelerator(
            parity_chain(8, satisfiable=True)).run().is_sat


class TestCycleModel:
    def test_wave_costs_one_clock_regardless_of_width(self):
        """Many simultaneous implications in one wave: one clock."""
        formula = CNFFormula(5)
        formula.add_clause([1])
        for var in range(2, 6):
            formula.add_clause([-1, var])    # all fire together
        machine = HardwareSATAccelerator(formula)
        result = machine.run()
        assert result.is_sat
        # Wave 1: unit (1). Wave 2: four implications. Wave 3: quiet.
        assert machine.hw.implications == 5
        assert machine.hw.implication_waves == 3
        assert machine.hw.decisions == 0

    def test_clock_budget(self):
        machine = HardwareSATAccelerator(pigeonhole(6), max_clocks=20)
        assert machine.run().status is Status.UNKNOWN

    def test_counters_populated_on_search(self):
        machine = HardwareSATAccelerator(pigeonhole(3))
        result = machine.run()
        assert result.is_unsat
        assert machine.hw.decisions > 0
        assert machine.hw.conflicts > 0
        assert machine.hw.backtrack_clocks > 0
        assert machine.hw.clocks >= machine.hw.decisions

    def test_speedup_estimate(self):
        from repro.solvers.cdcl import CDCLSolver
        formula = pigeonhole(3)
        machine = HardwareSATAccelerator(formula)
        machine.run()
        software = CDCLSolver(pigeonhole(3)).solve()
        ratio = estimate_speedup(formula,
                                 software.stats.propagations,
                                 machine.hw)
        assert ratio > 0

    def test_tautologies_dropped(self):
        formula = CNFFormula(2)
        formula.add_clause([1, -1])
        formula.add_clause([2])
        result = HardwareSATAccelerator(formula).run()
        assert result.is_sat
        assert result.assignment.value_of(2) is True
