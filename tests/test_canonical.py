"""Canonical formula form (repro.cnf.canonical).

The canonical key is the service-cache key, so these tests pin
exactly the invariances the cache relies on: clause order, literal
order, duplicate literals and variable-numbering gaps must not change
the key; genuinely different formulas must not collide.
"""

import random

import pytest

from repro.cnf import canonical_key, normal_form, renumber
from repro.cnf.canonical import clauses_key
from repro.cnf.formula import CNFFormula


def _formula(clauses, num_vars):
    return CNFFormula(num_vars=num_vars,
                      clauses=[tuple(c) for c in clauses])


class TestRenumber:
    def test_compacts_gaps_preserving_order(self):
        formula = _formula([(3, -7), (7, 9)], num_vars=9)
        renamed, mapping = renumber(formula)
        assert mapping == {3: 1, 7: 2, 9: 3}
        assert renamed.num_vars == 3
        assert [tuple(c) for c in renamed.clauses] == [(1, -2), (2, 3)]

    def test_dense_formula_maps_identity(self):
        formula = _formula([(1, -2), (2,)], num_vars=2)
        renamed, mapping = renumber(formula)
        assert mapping == {1: 1, 2: 2}
        assert [tuple(c) for c in renamed.clauses] == \
            [tuple(c) for c in formula.clauses]

    def test_unused_trailing_variables_dropped(self):
        formula = _formula([(1,)], num_vars=50)
        renamed, _ = renumber(formula)
        assert renamed.num_vars == 1

    def test_preserves_satisfiability(self):
        rng = random.Random(7)
        from repro.cnf.generators import random_ksat
        from repro.solvers.dpll import solve_dpll
        for trial in range(10):
            base = random_ksat(8, rng.randint(10, 30), k=3,
                               seed=rng.randrange(1 << 20))
            # Punch gaps into the variable space.
            spread = CNFFormula(
                num_vars=base.num_vars * 3,
                clauses=[tuple(lit * 3 for lit in clause)
                         for clause in base.clauses])
            renamed, _ = renumber(spread)
            assert solve_dpll(renamed).status is \
                solve_dpll(base).status


class TestCanonicalKey:
    def test_clause_order_invariant(self):
        a = _formula([(1, 2), (-1, 3), (2, -3)], 3)
        b = _formula([(2, -3), (1, 2), (-1, 3)], 3)
        assert canonical_key(a) == canonical_key(b)

    def test_literal_order_invariant(self):
        a = _formula([(1, 2, -3)], 3)
        b = _formula([(-3, 2, 1)], 3)
        assert canonical_key(a) == canonical_key(b)

    def test_duplicate_literals_invariant(self):
        a = _formula([(1, 2)], 2)
        b = _formula([(1, 2, 2, 1)], 2)
        assert canonical_key(a) == canonical_key(b)

    def test_variable_gap_invariant(self):
        a = _formula([(1, -2)], 2)
        b = _formula([(5, -9)], 9)
        assert canonical_key(a) == canonical_key(b)

    def test_polarity_matters(self):
        assert canonical_key(_formula([(1, 2)], 2)) != \
            canonical_key(_formula([(1, -2)], 2))

    def test_clause_multiplicity_matters(self):
        assert canonical_key(_formula([(1, 2)], 2)) != \
            canonical_key(_formula([(1, 2), (1, 2)], 2))

    def test_different_formulas_differ(self):
        seen = set()
        from repro.cnf.generators import random_ksat
        for seed in range(25):
            formula = random_ksat(10, 30, k=3, seed=seed)
            seen.add(canonical_key(formula))
        assert len(seen) == 25

    def test_clauses_key_matches_formula_key(self):
        clauses = [(1, -2), (2, 3)]
        assert clauses_key(clauses, 3) == \
            canonical_key(_formula(clauses, 3))

    def test_normal_form_sorted(self):
        formula = _formula([(9, -5), (5,)], 9)
        assert normal_form(formula) == [(-1, 2), (1,)]


class TestFuzzerUsesRenumber:
    def test_shrinker_compacts_variables(self):
        from repro.verify.fuzz import shrink_formula
        formula = _formula([(4, 8), (-4, 8), (4, -8), (-4, -8), (2, 6)],
                           num_vars=9)

        def unsat_core_present(candidate):
            # Fires while the 4/8 "xor-ish" block survives.
            lits = {tuple(sorted(c, key=abs)) for c in candidate.clauses}
            return sum(1 for c in lits if len(c) == 2
                       and {abs(l) for l in c} != {2, 6}) >= 4

        shrunk = shrink_formula(formula, unsat_core_present)
        assert shrunk.num_vars == 2
        assert {abs(l) for c in shrunk.clauses for l in c} == {1, 2}
