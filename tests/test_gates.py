"""Unit tests for repro.circuits.gates (incl. paper Tables 1-3)."""

import itertools

import pytest

from repro.circuits.gates import (
    GateArityError,
    GateType,
    check_arity,
    controlling_value,
    counter_updates,
    evaluate_gate,
    evaluate_gate3,
    gate_cnf_clauses,
    gate_type_from_name,
    inversion_parity,
    justification_thresholds,
)

LOGIC_GATES = [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
               GateType.XOR, GateType.XNOR]
UNARY_GATES = [GateType.NOT, GateType.BUFFER]


class TestEvaluate:
    @pytest.mark.parametrize("gate,inputs,expected", [
        (GateType.AND, [True, True], True),
        (GateType.AND, [True, False], False),
        (GateType.NAND, [True, True], False),
        (GateType.NAND, [False, True], True),
        (GateType.OR, [False, False], False),
        (GateType.OR, [False, True], True),
        (GateType.NOR, [False, False], True),
        (GateType.XOR, [True, False], True),
        (GateType.XOR, [True, True], False),
        (GateType.XNOR, [True, True], True),
        (GateType.NOT, [True], False),
        (GateType.BUFFER, [True], True),
        (GateType.CONST0, [], False),
        (GateType.CONST1, [], True),
    ])
    def test_truth_table_points(self, gate, inputs, expected):
        assert evaluate_gate(gate, inputs) is expected

    def test_wide_xor_parity(self):
        assert evaluate_gate(GateType.XOR, [True] * 5) is True
        assert evaluate_gate(GateType.XOR, [True] * 4) is False

    def test_arity_checked(self):
        with pytest.raises(GateArityError):
            evaluate_gate(GateType.NOT, [True, False])
        with pytest.raises(GateArityError):
            evaluate_gate(GateType.CONST0, [True])

    def test_input_has_no_semantics(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INPUT, [])


class TestEvaluate3:
    def test_controlling_through_x(self):
        assert evaluate_gate3(GateType.AND, [False, None]) is False
        assert evaluate_gate3(GateType.NAND, [False, None]) is True
        assert evaluate_gate3(GateType.OR, [True, None]) is True
        assert evaluate_gate3(GateType.NOR, [True, None]) is False

    def test_undetermined(self):
        assert evaluate_gate3(GateType.AND, [True, None]) is None
        assert evaluate_gate3(GateType.XOR, [True, None]) is None

    def test_all_assigned_matches_two_valued(self):
        for gate in LOGIC_GATES:
            for bits in itertools.product([False, True], repeat=3):
                assert evaluate_gate3(gate, list(bits)) is \
                    evaluate_gate(gate, list(bits))

    def test_unary(self):
        assert evaluate_gate3(GateType.NOT, [None]) is None
        assert evaluate_gate3(GateType.BUFFER, [False]) is False


class TestStructuralFacts:
    def test_controlling_values(self):
        assert controlling_value(GateType.AND) is False
        assert controlling_value(GateType.NAND) is False
        assert controlling_value(GateType.OR) is True
        assert controlling_value(GateType.NOR) is True
        assert controlling_value(GateType.XOR) is None

    def test_inversion_parity(self):
        assert inversion_parity(GateType.NAND) is True
        assert inversion_parity(GateType.AND) is False
        assert inversion_parity(GateType.INPUT) is None

    def test_gate_type_from_name_aliases(self):
        assert gate_type_from_name("buf") is GateType.BUFFER
        assert gate_type_from_name("BUFF") is GateType.BUFFER
        assert gate_type_from_name("inv") is GateType.NOT
        assert gate_type_from_name("nand") is GateType.NAND

    def test_gate_type_from_name_unknown(self):
        with pytest.raises(ValueError):
            gate_type_from_name("FROB")

    def test_dff_arity_relaxed(self):
        check_arity(GateType.DFF, 0)
        check_arity(GateType.DFF, 1)
        with pytest.raises(GateArityError):
            check_arity(GateType.DFF, 2)


class TestTable2Thresholds:
    """Paper Table 2: u0/u1 in {1, |FI|} for every simple gate."""

    @pytest.mark.parametrize("gate,u0,u1", [
        (GateType.AND, 1, "n"),
        (GateType.NAND, "n", 1),
        (GateType.OR, "n", 1),
        (GateType.NOR, 1, "n"),
        (GateType.XOR, "n", "n"),
        (GateType.XNOR, "n", "n"),
    ])
    def test_multi_input(self, gate, u0, u1):
        for n in (2, 3, 5):
            expect0 = n if u0 == "n" else u0
            expect1 = n if u1 == "n" else u1
            assert justification_thresholds(gate, n) == (expect0, expect1)

    def test_unary(self):
        assert justification_thresholds(GateType.NOT, 1) == (1, 1)
        assert justification_thresholds(GateType.BUFFER, 1) == (1, 1)

    def test_values_in_paper_range(self):
        for gate in LOGIC_GATES:
            u0, u1 = justification_thresholds(gate, 4)
            assert u0 in (1, 4) and u1 in (1, 4)


class TestTable3Counters:
    """Paper Table 3: which counters an input assignment bumps."""

    @pytest.mark.parametrize("gate,value,expected", [
        (GateType.AND, False, (True, False)),
        (GateType.AND, True, (False, True)),
        (GateType.NAND, False, (False, True)),
        (GateType.NAND, True, (True, False)),
        (GateType.OR, False, (True, False)),
        (GateType.OR, True, (False, True)),
        (GateType.NOR, True, (True, False)),
        (GateType.XOR, False, (True, True)),
        (GateType.XOR, True, (True, True)),
        (GateType.XNOR, True, (True, True)),
        (GateType.NOT, False, (False, True)),
        (GateType.NOT, True, (True, False)),
        (GateType.BUFFER, True, (False, True)),
    ])
    def test_update_rules(self, gate, value, expected):
        assert counter_updates(gate, value) == expected

    def test_counters_consistent_with_thresholds(self):
        """An all-inputs assignment that produces output v must bump
        t_v at least u_v times (justified once fully assigned)."""
        for gate in LOGIC_GATES:
            n = 3
            u0, u1 = justification_thresholds(gate, n)
            for bits in itertools.product([False, True], repeat=n):
                output = evaluate_gate(gate, list(bits))
                t0 = sum(1 for b in bits if counter_updates(gate, b)[0])
                t1 = sum(1 for b in bits if counter_updates(gate, b)[1])
                if output:
                    assert t1 >= u1, (gate, bits)
                else:
                    assert t0 >= u0, (gate, bits)


class TestTable1CNF:
    """Paper Table 1: per-gate CNF == gate truth table, exhaustively."""

    @pytest.mark.parametrize("gate", LOGIC_GATES)
    @pytest.mark.parametrize("fanin", [1, 2, 3, 4])
    def test_multi_input_gates(self, gate, fanin):
        self._check(gate, fanin)

    @pytest.mark.parametrize("gate", UNARY_GATES)
    def test_unary_gates(self, gate):
        self._check(gate, 1)

    def _check(self, gate, fanin):
        inputs = list(range(1, fanin + 1))
        output = fanin + 1
        clauses = gate_cnf_clauses(gate, output, inputs)
        for bits in itertools.product([False, True], repeat=fanin + 1):
            model = {var: bits[var - 1] for var in range(1, fanin + 2)}
            valid = evaluate_gate(gate, list(bits[:fanin])) is bits[fanin]
            satisfied = all(
                any(model[abs(lit)] == (lit > 0) for lit in clause)
                for clause in clauses)
            assert satisfied == valid, (gate, bits)

    def test_and_clause_shape_matches_paper(self):
        # Table 1 row for x = AND(w1, w2):
        # (w1 + x')(w2 + x')(w1' + w2' + x)
        clauses = {tuple(sorted(c))
                   for c in gate_cnf_clauses(GateType.AND, 3, [1, 2])}
        assert clauses == {(-3, 1), (-3, 2), (-2, -1, 3)}

    def test_not_clause_shape_matches_paper(self):
        # (x + w)(x' + w')
        clauses = {tuple(sorted(c))
                   for c in gate_cnf_clauses(GateType.NOT, 2, [1])}
        assert clauses == {(1, 2), (-2, -1)}

    def test_buffer_clause_shape_matches_paper(self):
        # (x + w')(x' + w)
        clauses = {tuple(sorted(c))
                   for c in gate_cnf_clauses(GateType.BUFFER, 2, [1])}
        assert clauses == {(-1, 2), (-2, 1)}

    def test_negated_io_literals(self):
        # Folding an inversion into the encoding must stay consistent.
        clauses = gate_cnf_clauses(GateType.AND, -3, [1, -2])
        for bits in itertools.product([False, True], repeat=3):
            model = {var: bits[var - 1] for var in range(1, 4)}
            valid = (bits[0] and not bits[1]) is (not bits[2])
            satisfied = all(
                any(model[abs(lit)] == (lit > 0) for lit in clause)
                for clause in clauses)
            assert satisfied == valid

    def test_const_gates(self):
        assert gate_cnf_clauses(GateType.CONST0, 1, []) == [[-1]]
        assert gate_cnf_clauses(GateType.CONST1, 1, []) == [[1]]
