"""SolverStats completeness: merge/serialization must cover every
field.

The PR-2 supervisor hand-listed the stats fields it forwarded over the
worker pipe and silently dropped ``flips``/``tries`` (and any future
field).  ``merge``/``as_dict``/``from_dict`` now iterate
``dataclasses.fields``; these tests pin that contract so adding a
counter can never silently fall out of the merge or the wire format
again.
"""

from dataclasses import fields

from repro.runtime.supervisor import stats_from_dict, stats_to_dict
from repro.solvers.result import SolverStats


def fully_populated():
    """A SolverStats with every field set to a distinct nonzero value."""
    stats = SolverStats()
    for offset, f in enumerate(fields(SolverStats)):
        if f.name == "metrics":
            stats.metrics = {"c": {"type": "counter",
                                   "value": 100 + offset}}
        elif f.name == "time_seconds":
            stats.time_seconds = 0.5 + offset
        elif f.name == "bcp_backend":
            stats.bcp_backend = f"backend-{offset}"
        else:
            setattr(stats, f.name, 1 + offset)
    return stats


class TestFieldCoverage:
    def test_as_dict_covers_every_field(self):
        stats = fully_populated()
        payload = stats.as_dict()
        assert set(payload) == {f.name for f in fields(SolverStats)}
        for f in fields(SolverStats):
            assert payload[f.name] == getattr(stats, f.name), f.name

    def test_from_dict_round_trips_every_field(self):
        stats = fully_populated()
        rebuilt = SolverStats.from_dict(stats.as_dict())
        for f in fields(SolverStats):
            assert getattr(rebuilt, f.name) == \
                getattr(stats, f.name), f.name

    def test_merge_touches_every_field(self):
        """Merging a fully populated stats into defaults must change
        every field (no field is silently skipped)."""
        base = SolverStats()
        defaults = SolverStats()
        base.merge(fully_populated())
        for f in fields(SolverStats):
            assert getattr(base, f.name) != \
                getattr(defaults, f.name), f.name

    def test_merge_sums_and_maxes(self):
        a = SolverStats(decisions=2, flips=3, tries=1,
                        max_decision_level=5, time_seconds=0.25)
        b = SolverStats(decisions=10, flips=7, tries=2,
                        max_decision_level=3, time_seconds=0.5)
        a.merge(b)
        assert a.decisions == 12
        assert a.flips == 10            # dropped by the PR-2 code
        assert a.tries == 3             # dropped by the PR-2 code
        assert a.max_decision_level == 5
        assert abs(a.time_seconds - 0.75) < 1e-9


class TestFromDictAudit:
    def test_unknown_keys_dropped(self):
        rebuilt = SolverStats.from_dict({"decisions": 3,
                                         "shutil": "rmtree"})
        assert rebuilt.decisions == 3
        assert not hasattr(rebuilt, "shutil")

    def test_wrong_types_dropped(self):
        rebuilt = SolverStats.from_dict({
            "decisions": "many", "conflicts": True,
            "time_seconds": "fast", "metrics": [1, 2]})
        assert rebuilt.decisions == 0
        assert rebuilt.conflicts == 0
        assert rebuilt.time_seconds == 0.0
        assert rebuilt.metrics is None


class TestSupervisorWireFormat:
    def test_round_trip_preserves_every_field(self):
        stats = fully_populated()
        rebuilt = stats_from_dict(stats_to_dict(stats))
        for f in fields(SolverStats):
            assert getattr(rebuilt, f.name) == \
                getattr(stats, f.name), f.name

    def test_malformed_payload_yields_defaults(self):
        rebuilt = stats_from_dict({"decisions": None, "evil": object()})
        assert rebuilt == SolverStats()
