"""Unit tests for repro.cnf.simplify."""

from conftest import brute_force_status

from repro.cnf.formula import CNFFormula
from repro.cnf.simplify import (
    eliminate_pure_literals,
    propagate_units,
    remove_duplicates,
    remove_subsumed,
    remove_tautologies,
    simplify,
)


def build(clauses, num_vars=0):
    formula = CNFFormula(num_vars)
    formula.add_clauses(clauses)
    return formula


class TestPropagateUnits:
    def test_single_unit(self):
        result = propagate_units(build([[1], [1, 2], [-1, 3]]))
        assert result.forced == {1: True, 3: True}
        assert result.formula.num_clauses == 0

    def test_cascade(self):
        result = propagate_units(build([[1], [-1, 2], [-2, 3]]))
        assert result.forced == {1: True, 2: True, 3: True}

    def test_conflict_detected(self):
        result = propagate_units(build([[1], [-1]]))
        assert result.unsat

    def test_derived_conflict(self):
        result = propagate_units(build([[1], [-1, 2], [-1, -2]]))
        assert result.unsat

    def test_no_units_is_identity(self):
        formula = build([[1, 2], [-1, -2]])
        result = propagate_units(formula)
        assert result.formula.num_clauses == 2
        assert not result.forced

    def test_preserves_satisfiability(self):
        formula = build([[1], [1, 2], [-2, 3], [-1, -3, 2]])
        result = propagate_units(formula)
        assert not result.unsat
        assert brute_force_status(formula) == "SAT"


class TestPureLiterals:
    def test_pure_positive(self):
        result = eliminate_pure_literals(build([[1, 2], [1, -2]]))
        assert result.forced[1] is True
        assert result.formula.num_clauses == 0

    def test_pure_negative(self):
        result = eliminate_pure_literals(build([[-1, 2], [-1, -2]]))
        assert result.forced[1] is False

    def test_mixed_not_pure(self):
        result = eliminate_pure_literals(build([[1, 2], [-1, -2]]))
        assert 1 not in result.forced
        assert 2 not in result.forced


class TestTautologiesAndDuplicates:
    def test_remove_tautology(self):
        result = remove_tautologies(build([[1, -1], [2]]))
        assert result.removed_clauses == 1
        assert result.formula.num_clauses == 1

    def test_remove_duplicates_keeps_first(self):
        result = remove_duplicates(build([[1, 2], [2, 1], [3]]))
        assert result.formula.num_clauses == 2
        assert result.removed_clauses == 1


class TestSubsumption:
    def test_shorter_subsumes_longer(self):
        result = remove_subsumed(build([[1], [1, 2], [1, 2, 3]]))
        assert result.formula.num_clauses == 1
        assert list(result.formula.clauses[0]) == [1]

    def test_unrelated_kept(self):
        result = remove_subsumed(build([[1, 2], [3, 4]]))
        assert result.formula.num_clauses == 2

    def test_polarity_blocks_subsumption(self):
        result = remove_subsumed(build([[1], [-1, 2]]))
        assert result.formula.num_clauses == 2


class TestFullSimplify:
    def test_detects_unsat(self):
        assert simplify(build([[1], [-1]])).unsat

    def test_fixpoint_chains(self):
        # Unit 1 satisfies first clause, then 2 becomes pure, etc.
        formula = build([[1], [-1, 2], [2, 3]])
        result = simplify(formula)
        assert result.forced[1] is True
        assert result.forced[2] is True
        assert result.formula.num_clauses == 0

    def test_equisatisfiable_sat(self):
        formula = build([[1, 2], [-1, 3], [2, -3], [1, -2, 3]])
        result = simplify(formula)
        assert not result.unsat
        assert brute_force_status(formula) == "SAT"

    def test_equisatisfiable_unsat(self):
        formula = build([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        result = simplify(formula)
        survived = "UNSAT" if result.unsat else \
            brute_force_status(result.formula)
        assert survived == "UNSAT"

    def test_subsumption_flag(self):
        formula = build([[1, 2], [1, 2, 3], [-1, -2], [-3, 1]])
        with_sub = simplify(formula, subsumption=True)
        assert with_sub.formula.num_clauses <= 3

    def test_preserves_names(self):
        formula = CNFFormula()
        formula.new_var("a")
        formula.add_clause([1, 1])
        result = simplify(formula, units=False, pure=False)
        assert result.formula.name_of(1) == "a"
