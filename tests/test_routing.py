"""Unit tests for repro.apps.routing (SAT-based FPGA routing)."""

import pytest

from repro.apps.routing import (
    Net,
    channel_density,
    encode_routing,
    minimum_tracks,
    random_channel,
    route,
    validate_routing,
)


class TestNet:
    def test_overlap(self):
        assert Net("a", 0, 5).overlaps(Net("b", 5, 9))
        assert Net("a", 0, 4).overlaps(Net("b", 2, 3))
        assert not Net("a", 0, 4).overlaps(Net("b", 5, 9))

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            Net("a", 4, 2)


class TestChannelDensity:
    def test_stacked_intervals(self):
        nets = [Net("a", 0, 9), Net("b", 0, 9), Net("c", 0, 9)]
        assert channel_density(nets) == 3

    def test_disjoint_intervals(self):
        nets = [Net("a", 0, 1), Net("b", 2, 3), Net("c", 4, 5)]
        assert channel_density(nets) == 1

    def test_staircase(self):
        nets = [Net("a", 0, 2), Net("b", 1, 3), Net("c", 2, 4)]
        assert channel_density(nets) == 3   # all overlap at column 2

    def test_empty(self):
        assert channel_density([]) == 0


class TestRoute:
    def test_routable_within_density(self):
        nets = [Net("a", 0, 2), Net("b", 1, 3), Net("c", 4, 6)]
        result = route(nets, tracks=2)
        assert result.routable is True
        assert validate_routing(nets, result.assignment)

    def test_unroutable_below_density(self):
        nets = [Net("a", 0, 5), Net("b", 0, 5), Net("c", 0, 5)]
        result = route(nets, tracks=2)
        assert result.routable is False

    def test_single_net(self):
        result = route([Net("a", 0, 1)], tracks=1)
        assert result.routable is True
        assert result.assignment == {"a": 0}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            encode_routing([Net("a", 0, 1), Net("a", 2, 3)], 1)

    def test_zero_tracks_rejected(self):
        with pytest.raises(ValueError):
            route([Net("a", 0, 1)], tracks=0)


class TestMinimumTracks:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_density_certificate(self, seed):
        """Interval conflict graphs are perfect: the SAT minimum must
        equal the channel density exactly."""
        nets = random_channel(8, columns=12, seed=seed)
        result = minimum_tracks(nets)
        assert result.routable is True
        assert result.tracks == channel_density(nets)
        assert validate_routing(nets, result.assignment)

    def test_respects_max_tracks_cap(self):
        nets = [Net("a", 0, 5), Net("b", 0, 5), Net("c", 0, 5)]
        result = minimum_tracks(nets, max_tracks=2)
        assert result.routable is False


class TestValidateRouting:
    def test_rejects_missing_net(self):
        nets = [Net("a", 0, 1), Net("b", 0, 1)]
        assert not validate_routing(nets, {"a": 0})

    def test_rejects_conflicting_tracks(self):
        nets = [Net("a", 0, 3), Net("b", 2, 5)]
        assert not validate_routing(nets, {"a": 0, "b": 0})

    def test_accepts_valid(self):
        nets = [Net("a", 0, 3), Net("b", 2, 5)]
        assert validate_routing(nets, {"a": 0, "b": 1})


class TestRandomChannel:
    def test_deterministic(self):
        assert random_channel(5, seed=3) == random_channel(5, seed=3)

    def test_within_columns(self):
        for net in random_channel(10, columns=8, seed=1):
            assert 0 <= net.left <= net.right < 8
