"""Unit tests for repro.solvers.circuit_sat (Section 5)."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.library import c17, figure1_circuit, majority3
from repro.circuits.generators import parity_tree, ripple_carry_adder
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import simulate3
from repro.circuits.tseitin import encode_circuit
from repro.solvers.circuit_sat import (
    CircuitSATSolver,
    JustificationLayer,
    solve_circuit,
)
from repro.solvers.result import Status


class TestJustificationLayer:
    def setup_method(self):
        self.circuit = Circuit("and2")
        self.circuit.add_input("a")
        self.circuit.add_input("b")
        self.circuit.add_gate("g", GateType.AND, ["a", "b"])
        self.circuit.set_output("g")
        self.encoding = encode_circuit(self.circuit)
        self.layer = JustificationLayer(self.circuit, self.encoding)

    def lit(self, name, value):
        return self.encoding.literal(name, value)

    def test_thresholds_installed(self):
        assert self.layer.u0["g"] == 1
        assert self.layer.u1["g"] == 2

    def test_unassigned_gate_not_in_frontier(self):
        assert self.layer.frontier_empty()

    def test_assigned_unjustified_enters_frontier(self):
        self.layer.on_assign(self.lit("g", False))
        assert self.layer.frontier == {"g"}

    def test_counter_updates_justify(self):
        self.layer.on_assign(self.lit("g", False))
        self.layer.on_assign(self.lit("a", False))  # controlling 0
        assert self.layer.t0["g"] == 1
        assert self.layer.frontier_empty()

    def test_output_one_needs_all_inputs(self):
        self.layer.on_assign(self.lit("g", True))
        self.layer.on_assign(self.lit("a", True))
        assert not self.layer.frontier_empty()
        self.layer.on_assign(self.lit("b", True))
        assert self.layer.frontier_empty()

    def test_unassign_reverses(self):
        self.layer.on_assign(self.lit("g", False))
        self.layer.on_assign(self.lit("a", False))
        assert self.layer.frontier_empty()
        self.layer.on_unassign(self.lit("a", False))
        assert self.layer.frontier == {"g"}
        assert self.layer.t0["g"] == 0
        self.layer.on_unassign(self.lit("g", False))
        assert self.layer.frontier_empty()

    def test_backtrace_returns_controlling_literal(self):
        self.layer.on_assign(self.lit("g", False))
        lit = self.layer.backtrace()
        # Simple backtrace: first unassigned fanin at value 0.
        assert lit == self.lit("a", False)

    def test_backtrace_empty_frontier(self):
        assert self.layer.backtrace() is None


class TestSolveCircuit:
    def test_figure1_z0(self):
        result = solve_circuit(figure1_circuit(), {"z": False})
        assert result.is_sat

    def test_figure1_contradictory_objective(self):
        result = solve_circuit(figure1_circuit(),
                               {"z": True, "a": False})
        assert result.status is Status.UNSATISFIABLE

    @pytest.mark.parametrize("use_backtrace", [True, False])
    @pytest.mark.parametrize("early_stop", [True, False])
    def test_c17_all_objectives(self, use_backtrace, early_stop):
        circuit = c17()
        for output in circuit.outputs:
            for value in (False, True):
                result = CircuitSATSolver(
                    circuit, {output: value},
                    use_backtrace=use_backtrace,
                    early_stop=early_stop).solve()
                assert result.is_sat, (output, value)

    def test_partial_vector_implies_objective(self):
        """The paper's overspecification fix: unassigned inputs must be
        true don't-cares, certified by 3-valued simulation."""
        circuit = c17()
        for output in circuit.outputs:
            for value in (False, True):
                result = solve_circuit(circuit, {output: value})
                assert result.is_sat
                partial = {name: v for name, v
                           in result.input_vector.items()
                           if v is not None}
                values = simulate3(circuit, partial)
                assert values[output] is value

    def test_partial_vectors_smaller_than_total(self):
        """Early frontier termination must leave some inputs free on
        easy objectives (NAND output 1 needs a single 0 input)."""
        circuit = c17()
        result = solve_circuit(circuit, {"G22": True})
        assert result.specified_inputs() < len(circuit.inputs)

    def test_plain_cnf_mode_specifies_everything(self):
        circuit = c17()
        result = CircuitSATSolver(circuit, {"G22": True},
                                  use_backtrace=False,
                                  early_stop=False).solve()
        assert result.is_sat
        assert result.specified_inputs() == len(circuit.inputs)

    def test_majority_objectives(self):
        result = solve_circuit(majority3(), {"maj": True})
        assert result.is_sat
        partial = {k: v for k, v in result.input_vector.items()
                   if v is not None}
        assert simulate3(majority3(), partial)["maj"] is True

    def test_adder_carry_chain(self):
        circuit = ripple_carry_adder(3)
        result = solve_circuit(circuit, {"cout": True})
        assert result.is_sat
        partial = {k: v for k, v in result.input_vector.items()
                   if v is not None}
        assert simulate3(circuit, partial)["cout"] is True

    def test_xor_tree_needs_full_specification(self):
        """Parity objectives admit no don't-cares: every input must be
        assigned even with the frontier optimization."""
        circuit = parity_tree(4)
        result = solve_circuit(circuit, {"parity": True})
        assert result.is_sat
        assert result.specified_inputs() == 4

    def test_objective_on_internal_node(self):
        circuit = figure1_circuit()
        result = solve_circuit(circuit, {"w1": True})
        assert result.is_sat
        partial = {k: v for k, v in result.input_vector.items()
                   if v is not None}
        assert simulate3(circuit, partial)["w1"] is True

    def test_stats_populated(self):
        result = solve_circuit(c17(), {"G23": False})
        assert result.stats.propagations >= 0
        assert result.stats.time_seconds >= 0
