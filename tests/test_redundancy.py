"""Unit tests for repro.apps.redundancy (Section 3)."""

from repro.apps.redundancy import (
    find_redundancies,
    optimize,
    remove_redundancy,
    sweep,
)
from repro.apps.equivalence import check_equivalence
from repro.circuits.faults import StuckAtFault
from repro.circuits.gates import GateType
from repro.circuits.library import c17, redundant_or_chain
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import exhaustive_truth_table


class TestFindRedundancies:
    def test_absorption_redundancy_found(self):
        redundancies = find_redundancies(redundant_or_chain())
        assert StuckAtFault("ab", False) in redundancies

    def test_irredundant_circuit_clean(self):
        assert find_redundancies(c17()) == []


class TestRemoveRedundancy:
    def test_function_preserved(self):
        circuit = redundant_or_chain()
        optimized = remove_redundancy(circuit,
                                      StuckAtFault("ab", False))
        report = check_equivalence(circuit, optimized)
        assert report.equivalent is True

    def test_gates_removed(self):
        circuit = redundant_or_chain()
        optimized = remove_redundancy(circuit,
                                      StuckAtFault("ab", False))
        assert optimized.num_gates() < circuit.num_gates()


class TestSweep:
    def test_constant_folding(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_const("zero", False)
        circuit.add_gate("g", GateType.AND, ["a", "zero"])
        circuit.add_gate("y", GateType.OR, ["g", "a"])
        circuit.set_output("y")
        swept = sweep(circuit)
        table = exhaustive_truth_table(swept)
        assert table[(False,)] == (False,)
        assert table[(True,)] == (True,)

    def test_wire_splicing(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_const("one", True)
        circuit.add_gate("g", GateType.AND, ["a", "one"])   # wire to a
        circuit.add_gate("y", GateType.NOT, ["g"])
        circuit.set_output("y")
        swept = sweep(circuit)
        assert "g" not in swept or swept.node("y").fanins == ("a",)
        table = exhaustive_truth_table(swept)
        assert table[(True,)] == (False,)

    def test_dead_logic_eliminated(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("dead", GateType.NOT, ["a"])
        circuit.add_gate("y", GateType.BUFFER, ["a"])
        circuit.set_output("y")
        swept = sweep(circuit)
        assert "dead" not in swept

    def test_output_constant_kept_by_name(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_const("one", True)
        circuit.add_gate("y", GateType.OR, ["a", "one"])
        circuit.set_output("y")
        swept = sweep(circuit)
        assert "y" in swept.outputs
        assert exhaustive_truth_table(swept)[(False,)] == (True,)

    def test_inputs_always_preserved(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("unused")
        circuit.add_gate("y", GateType.BUFFER, ["a"])
        circuit.set_output("y")
        assert sweep(circuit).inputs == ["a", "unused"]


class TestOptimize:
    def test_fixpoint_on_redundant_circuit(self):
        circuit = redundant_or_chain()
        optimized, report = optimize(circuit)
        assert report.removals >= 1
        assert report.optimized_gates < report.original_gates
        assert report.equivalent is True
        assert find_redundancies(optimized) == []

    def test_clean_circuit_untouched(self):
        circuit = c17()
        optimized, report = optimize(circuit)
        assert report.removals == 0
        assert optimized.num_gates() == circuit.num_gates()

    def test_stacked_redundancies(self):
        # y = OR(a, AND(a, b), AND(a, c)): two removable gates.
        circuit = Circuit()
        for name in ("a", "b", "c"):
            circuit.add_input(name)
        circuit.add_gate("ab", GateType.AND, ["a", "b"])
        circuit.add_gate("ac", GateType.AND, ["a", "c"])
        circuit.add_gate("y", GateType.OR, ["a", "ab", "ac"])
        circuit.set_output("y")
        optimized, report = optimize(circuit)
        assert report.equivalent is True
        table = exhaustive_truth_table(optimized)
        for key, outputs in table.items():
            assert outputs == (key[0],)
