"""Unit tests for repro.cnf.generators."""

import pytest

from conftest import brute_force_status

from repro.cnf.generators import (
    equivalence_ladder,
    graph_coloring,
    parity_chain,
    pigeonhole,
    random_ksat,
    random_ksat_at_ratio,
    xor_clauses,
)


class TestRandomKSat:
    def test_shape(self):
        formula = random_ksat(10, 42, k=3, seed=1)
        assert formula.num_vars == 10
        assert formula.num_clauses == 42
        assert all(len(c) == 3 for c in formula)

    def test_deterministic_given_seed(self):
        left = random_ksat(10, 20, seed=7)
        right = random_ksat(10, 20, seed=7)
        assert left == right

    def test_different_seeds_differ(self):
        assert random_ksat(10, 20, seed=1) != random_ksat(10, 20, seed=2)

    def test_distinct_variables_per_clause(self):
        formula = random_ksat(5, 50, k=3, seed=3)
        for clause in formula:
            assert len(clause.variables()) == 3

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            random_ksat(2, 5, k=3)

    def test_ratio_helper(self):
        formula = random_ksat_at_ratio(20, ratio=4.0, seed=0)
        assert formula.num_clauses == 80


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [1, 2, 3])
    def test_unsat(self, holes):
        assert brute_force_status(pigeonhole(holes), max_vars=12) == "UNSAT"

    def test_structure(self):
        formula = pigeonhole(3)
        assert formula.num_vars == 4 * 3
        # 4 at-least-one clauses + 3 * C(4,2) exclusion clauses
        assert formula.num_clauses == 4 + 3 * 6

    def test_rejects_zero_holes(self):
        with pytest.raises(ValueError):
            pigeonhole(0)


class TestXorClauses:
    def test_two_var_equality(self):
        clauses = xor_clauses([1, 2], False)   # x1 == x2
        assert sorted(tuple(sorted(c)) for c in clauses) == \
            [(-2, 1), (-1, 2)]

    def test_two_var_difference(self):
        clauses = xor_clauses([1, 2], True)    # x1 != x2
        assert sorted(tuple(sorted(c)) for c in clauses) == \
            [(-2, -1), (1, 2)]

    def test_semantics_three_vars(self):
        from repro.cnf.formula import CNFFormula
        formula = CNFFormula(3)
        formula.add_clauses(xor_clauses([1, 2, 3], True))
        import itertools
        for bits in itertools.product([False, True], repeat=3):
            model = {i + 1: bits[i] for i in range(3)}
            expected = (sum(bits) % 2) == 1
            assert formula.evaluate(model) is expected


class TestParityChain:
    def test_unsat_chain(self):
        assert brute_force_status(parity_chain(6), max_vars=10) == "UNSAT"

    def test_sat_chain(self):
        formula = parity_chain(6, satisfiable=True)
        assert brute_force_status(formula, max_vars=10) == "SAT"

    def test_minimum_length(self):
        with pytest.raises(ValueError):
            parity_chain(2)


class TestEquivalenceLadder:
    def test_contains_equivalence_pairs(self):
        formula = equivalence_ladder(3, seed=0)
        clause_set = {tuple(sorted(c)) for c in formula}
        for pair in range(1, 4):
            a, b = 2 * pair - 1, 2 * pair
            assert (-b, a) in clause_set
            assert (-a, b) in clause_set

    def test_deterministic(self):
        assert equivalence_ladder(4, seed=5) == \
            equivalence_ladder(4, seed=5)


class TestGraphColoring:
    def test_triangle_needs_three_colors(self):
        triangle = [(0, 1), (1, 2), (0, 2)]
        assert brute_force_status(
            graph_coloring(triangle, 2), max_vars=8) == "UNSAT"
        assert brute_force_status(
            graph_coloring(triangle, 3), max_vars=9) == "SAT"

    def test_edgeless_graph(self):
        formula = graph_coloring([], 2, num_nodes=2)
        assert brute_force_status(formula, max_vars=4) == "SAT"
