"""Unit tests for repro.cnf.assignment."""

import pytest

from repro.cnf.assignment import Assignment


class TestBasics:
    def test_empty(self):
        assignment = Assignment()
        assert assignment.num_assigned() == 0
        assert assignment.value_of(1) is None

    def test_assign_and_query(self):
        assignment = Assignment()
        assignment.assign(3, True)
        assert assignment.value_of(3) is True
        assert assignment.is_assigned(3)
        assert 3 in assignment

    def test_assign_coerces_to_bool(self):
        assignment = Assignment()
        assignment.assign(1, 1)
        assert assignment.value_of(1) is True

    def test_rejects_bad_variable(self):
        with pytest.raises(ValueError):
            Assignment().assign(0, True)

    def test_unassign(self):
        assignment = Assignment({2: False})
        assignment.unassign(2)
        assert assignment.value_of(2) is None

    def test_unassign_missing_is_noop(self):
        Assignment().unassign(5)

    def test_overwrite(self):
        assignment = Assignment({1: True})
        assignment.assign(1, False)
        assert assignment.value_of(1) is False


class TestLiteralQueries:
    def test_literal_value(self):
        assignment = Assignment({2: False})
        assert assignment.literal_value(2) is False
        assert assignment.literal_value(-2) is True
        assert assignment.literal_value(9) is None

    def test_satisfies_literal(self):
        assignment = Assignment({2: False})
        assert assignment.satisfies_literal(-2)
        assert not assignment.satisfies_literal(2)
        assert not assignment.satisfies_literal(5)


class TestConversions:
    def test_from_literals(self):
        assignment = Assignment.from_literals([1, -3])
        assert assignment.value_of(1) is True
        assert assignment.value_of(3) is False

    def test_to_literals_sorted(self):
        assignment = Assignment({3: False, 1: True})
        assert assignment.to_literals() == (1, -3)

    def test_roundtrip(self):
        original = Assignment({1: True, 2: False, 5: True})
        again = Assignment.from_literals(original.to_literals())
        assert again == original

    def test_as_dict_is_copy(self):
        assignment = Assignment({1: True})
        mapping = assignment.as_dict()
        mapping[1] = False
        assert assignment.value_of(1) is True


class TestCopyAndExtend:
    def test_copy_independent(self):
        original = Assignment({1: True})
        duplicate = original.copy()
        duplicate.assign(2, False)
        assert not original.is_assigned(2)

    def test_extend_unassigned(self):
        assignment = Assignment({1: True})
        extended = assignment.extend_unassigned([1, 2, 3], default=False)
        assert extended.value_of(1) is True      # untouched
        assert extended.value_of(2) is False
        assert extended.value_of(3) is False
        assert not assignment.is_assigned(2)     # original untouched

    def test_assigned_variables(self):
        assignment = Assignment({4: True, 2: False})
        assert assignment.assigned_variables() == frozenset({2, 4})

    def test_len_and_iter(self):
        assignment = Assignment({4: True, 2: False})
        assert len(assignment) == 2
        assert sorted(assignment) == [2, 4]
