"""Unit tests for repro.circuits.parallel_sim."""

import random

import pytest

from repro.circuits.faults import (
    StuckAtFault,
    fault_simulate,
    full_fault_list,
)
from repro.circuits.generators import alu, ripple_carry_adder
from repro.circuits.library import c17, half_adder
from repro.circuits.parallel_sim import (
    pack_vectors,
    parallel_fault_simulate,
    random_pattern_coverage,
    simulate_parallel,
    unpack_word,
)
from repro.circuits.simulate import simulate


def random_vectors(circuit, count, seed=0):
    rng = random.Random(seed)
    return [{name: rng.random() < 0.5 for name in circuit.inputs}
            for _ in range(count)]


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        circuit = half_adder()
        vectors = random_vectors(circuit, 10, seed=1)
        words = pack_vectors(circuit, vectors)
        for name in circuit.inputs:
            assert unpack_word(words[name], 10) == \
                [v[name] for v in vectors]


class TestParallelSimulation:
    @pytest.mark.parametrize("factory,count", [
        (half_adder, 4), (c17, 40), (lambda: ripple_carry_adder(4), 70),
        (lambda: alu(2), 100),
    ])
    def test_matches_scalar_simulation(self, factory, count):
        circuit = factory()
        vectors = random_vectors(circuit, count, seed=3)
        words = simulate_parallel(circuit,
                                  pack_vectors(circuit, vectors), count)
        for index, vector in enumerate(vectors):
            scalar = simulate(circuit, vector)
            for name in circuit.topological_order():
                assert bool((words[name] >> index) & 1) == \
                    scalar[name], (name, index)

    def test_fault_injection_matches(self):
        circuit = c17()
        vectors = random_vectors(circuit, 16, seed=4)
        fault = {"G10": True}
        words = simulate_parallel(circuit,
                                  pack_vectors(circuit, vectors), 16,
                                  faults=fault)
        for index, vector in enumerate(vectors):
            scalar = simulate(circuit, vector, faults=fault)
            for output in circuit.outputs:
                assert bool((words[output] >> index) & 1) == \
                    scalar[output]

    def test_constants(self):
        from repro.circuits.gates import GateType
        from repro.circuits.netlist import Circuit
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_const("one", True)
        circuit.add_gate("y", GateType.AND, ["a", "one"])
        circuit.set_output("y")
        words = simulate_parallel(
            circuit, {"a": 0b1010}, 4)
        assert words["one"] == 0b1111
        assert words["y"] == 0b1010


class TestParallelFaultSimulation:
    def test_agrees_with_serial(self):
        circuit = c17()
        faults = full_fault_list(circuit)
        vectors = random_vectors(circuit, 12, seed=5)
        serial = fault_simulate(circuit, faults, vectors)
        parallel = parallel_fault_simulate(circuit, faults, vectors)
        assert serial == parallel

    def test_empty_block(self):
        circuit = half_adder()
        result = parallel_fault_simulate(
            circuit, [StuckAtFault("sum", True)], [])
        assert result[StuckAtFault("sum", True)] is None

    def test_first_detection_index(self):
        circuit = half_adder()
        vectors = [{"a": True, "b": True},       # carry/sa1 masked
                   {"a": False, "b": False}]     # detects carry/sa1
        result = parallel_fault_simulate(
            circuit, [StuckAtFault("carry", True)], vectors)
        assert result[StuckAtFault("carry", True)] == 1


class TestRandomPatternCoverage:
    def test_c17_random_coverage_high(self):
        circuit = c17()
        faults = full_fault_list(circuit)
        detection, coverage = random_pattern_coverage(circuit, faults,
                                                      num_patterns=64,
                                                      seed=0)
        assert coverage >= 0.9       # c17 is random-pattern testable

    def test_redundant_fault_never_detected(self):
        from repro.circuits.library import redundant_or_chain
        circuit = redundant_or_chain()
        faults = [StuckAtFault("ab", False)]
        detection, coverage = random_pattern_coverage(circuit, faults,
                                                      num_patterns=128,
                                                      seed=1)
        assert coverage == 0.0
        assert detection[faults[0]] is None

    def test_deterministic(self):
        circuit = c17()
        faults = full_fault_list(circuit)
        first = random_pattern_coverage(circuit, faults, seed=7)
        second = random_pattern_coverage(circuit, faults, seed=7)
        assert first == second
