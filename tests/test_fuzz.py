"""Tests for repro.verify.fuzz: the differential fuzzer, its
cross-checks, and the delta-debugging shrinker."""

import json
import os

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole
from repro.solvers.result import SolverResult, Status
from repro.verify.fuzz import (
    CDCLEngine,
    DPLLEngine,
    Engine,
    default_engines,
    differential_failure,
    run_fuzz,
    shrink_formula,
)


class TestDifferentialFailure:
    def test_honest_engines_agree(self):
        import random
        formula = pigeonhole(3)
        engines = default_engines(random.Random(7))
        assert differential_failure(formula, engines) is None

    def test_unknown_is_never_a_disagreement(self):
        class GiveUp(Engine):
            name = "give-up"

            def run(self, formula):
                return SolverResult(Status.UNKNOWN)

        formula = pigeonhole(3)
        engines = [CDCLEngine("cdcl"), GiveUp()]
        assert differential_failure(formula, engines) is None

    def test_flipped_verdict_is_a_disagreement(self):
        class Liar(Engine):
            name = "liar"

            def run(self, formula):
                return SolverResult(Status.SATISFIABLE)

        formula = pigeonhole(3)           # UNSAT
        failure = differential_failure(formula, [Liar()])
        assert failure is not None
        kind, detail, culprits = failure
        # A SAT claim with no model is caught as bad-model before any
        # pairwise comparison happens.
        assert kind == "bad-model"
        assert culprits[0].name == "liar"

    def test_invalid_streamed_proof_is_bad_proof(self):
        class ProofDropper(CDCLEngine):
            """Honest verdicts, dishonest proof: drops half the
            derivation before the cross-check sees it."""

            def run(self, formula):
                result = super().run(formula)
                if self.proof_events:
                    self.proof_events = self.proof_events[1::2]
                return result

        formula = pigeonhole(3)
        failure = differential_failure(formula,
                                       [ProofDropper("dropper")])
        assert failure is not None
        assert failure[0] == "bad-proof"
        assert "failed" in failure[1]


class TestShrinker:
    def test_shrinks_to_the_failing_core(self):
        """Bury a tiny UNSAT core in satisfiable padding: the shrinker
        must dig it out."""
        core = [(1,), (-1,)]
        padding = [(i, i + 1) for i in range(2, 40)]
        formula = CNFFormula(num_vars=41,
                             clauses=[list(c) for c in core + padding])

        def is_unsat(candidate):
            from repro.solvers.dpll import solve_dpll
            return solve_dpll(candidate).status is Status.UNSATISFIABLE

        shrunk = shrink_formula(formula, is_unsat)
        assert shrunk.num_clauses == 2
        assert is_unsat(shrunk)
        # Variables were renumbered down to the survivors.
        assert shrunk.num_vars == 1

    def test_respects_eval_budget(self):
        calls = []

        def predicate(candidate):
            calls.append(1)
            return True

        formula = CNFFormula(
            num_vars=30, clauses=[[i] for i in range(1, 31)])
        shrink_formula(formula, predicate, max_evals=10)
        # + up to 1 for the renumbering probe
        assert len(calls) <= 11


class TestRunFuzz:
    def test_clean_seeded_run_has_zero_failures(self, tmp_path):
        report = run_fuzz(iterations=25, seed=11,
                          out_dir=str(tmp_path))
        assert report.ok, report.failures
        assert report.iterations == 25
        assert report.sat + report.unsat + report.unknown == 25
        assert report.unsat > 0 and report.proofs_checked > 0
        assert os.listdir(str(tmp_path)) == []   # no reproducers

    def test_injected_bug_is_caught_and_shrunk(self, tmp_path):
        class BuggyEngine(Engine):
            """Solves a weakened formula: drops the last clause, so it
            sometimes answers SAT with a model falsifying the
            original."""

            name = "buggy"

            def run(self, formula):
                from repro.solvers.dpll import solve_dpll
                weakened = CNFFormula(
                    num_vars=formula.num_vars,
                    clauses=[list(c) for c in formula.clauses][:-1])
                return solve_dpll(weakened)

        def engines(rng):
            return [BuggyEngine(), DPLLEngine()]

        report = run_fuzz(iterations=40, seed=5,
                          out_dir=str(tmp_path),
                          engines_factory=engines,
                          max_shrink_evals=150)
        assert not report.ok, "injected bug escaped the fuzzer"
        failure = report.failures[0]
        assert failure.kind in ("bad-model", "disagreement")
        assert failure.shrunk_clauses <= failure.original_clauses
        assert os.path.exists(failure.cnf_path)
        assert os.path.exists(failure.meta_path)
        meta = json.load(open(failure.meta_path))
        assert meta["kind"] == failure.kind
        assert meta["seed"] == failure.seed
        # The reproducer replays: the shrunk formula still trips the
        # same engines.
        from repro.cnf.dimacs import load_dimacs
        shrunk = load_dimacs(failure.cnf_path)
        assert differential_failure(
            shrunk, [BuggyEngine(), DPLLEngine()]) is not None

    def test_progress_callback_fires(self):
        ticks = []
        run_fuzz(iterations=6, seed=1, shrink=False,
                 on_progress=lambda i, rep: ticks.append(i))
        assert ticks and ticks[-1] == 6

    def test_portfolio_rounds_counted(self):
        report = run_fuzz(iterations=4, seed=2, portfolio_every=2)
        assert report.portfolio_rounds == 2
        assert report.ok, report.failures
