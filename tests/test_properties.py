"""Property-based tests (hypothesis) on core invariants.

These pin down the library-wide contracts:

* every solver agrees with brute force on random formulas;
* SAT models actually satisfy the formula;
* circuit CNF encodings agree with circuit simulation;
* preprocessing preserves satisfiability and models lift back;
* DIMACS round-trips; clause resolution is sound.
"""

import itertools

from hypothesis import HealthCheck, given, settings, strategies as st

from conftest import brute_force_status

from repro.cnf.clause import Clause
from repro.cnf.dimacs import parse_dimacs, write_dimacs
from repro.cnf.formula import CNFFormula
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import simulate
from repro.circuits.tseitin import encode_circuit
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import solve_dpll
from repro.solvers.preprocess import preprocess
from repro.solvers.recursive_learning import recursive_learn

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def formulas(draw, max_vars=6, max_clauses=14, max_len=4):
    """Random small CNF formulas (possibly with units/duplicates)."""
    num_vars = draw(st.integers(1, max_vars))
    num_clauses = draw(st.integers(0, max_clauses))
    formula = CNFFormula(num_vars)
    for _ in range(num_clauses):
        length = draw(st.integers(1, max_len))
        lits = draw(st.lists(
            st.integers(1, num_vars).flatmap(
                lambda v: st.sampled_from([v, -v])),
            min_size=length, max_size=length))
        formula.add_clause(lits)
    return formula


@st.composite
def circuits(draw, max_inputs=4, max_gates=8):
    """Random small combinational circuits."""
    num_inputs = draw(st.integers(1, max_inputs))
    num_gates = draw(st.integers(1, max_gates))
    circuit = Circuit("prop")
    pool = [circuit.add_input(f"i{k}") for k in range(num_inputs)]
    gate_types = [GateType.AND, GateType.OR, GateType.NAND,
                  GateType.NOR, GateType.XOR, GateType.NOT]
    for index in range(num_gates):
        gate_type = draw(st.sampled_from(gate_types))
        if gate_type is GateType.NOT:
            fanins = [draw(st.sampled_from(pool))]
        else:
            size = draw(st.integers(min(2, len(pool)),
                                    min(3, len(pool))))
            fanins = draw(st.lists(st.sampled_from(pool), min_size=size,
                                   max_size=size, unique=True))
        pool.append(circuit.add_gate(f"g{index}", gate_type, fanins))
    circuit.set_output(pool[-1])
    return circuit


class TestSolverSoundness:
    @SETTINGS
    @given(formulas())
    def test_cdcl_agrees_with_brute_force(self, formula):
        expected = brute_force_status(formula)
        result = CDCLSolver(formula).solve()
        assert result.is_sat == (expected == "SAT")
        if result.is_sat:
            total = result.assignment.extend_unassigned(
                formula.variables())
            assert formula.evaluate(total) is True

    @SETTINGS
    @given(formulas())
    def test_dpll_agrees_with_cdcl(self, formula):
        assert solve_dpll(formula).is_sat == \
            CDCLSolver(formula).solve().is_sat

    @SETTINGS
    @given(formulas())
    def test_learned_clauses_are_implicates(self, formula):
        solver = CDCLSolver(formula)
        solver.solve()
        for clause in solver.learned_clauses()[:5]:
            probe = formula.copy()
            for lit in clause:
                probe.add_clause([-lit])
            assert brute_force_status(probe) == "UNSAT"


class TestPreprocessing:
    @SETTINGS
    @given(formulas())
    def test_preserves_satisfiability(self, formula):
        expected = brute_force_status(formula)
        result = preprocess(formula)
        if result.unsat:
            assert expected == "UNSAT"
        else:
            assert brute_force_status(result.formula) == expected

    @SETTINGS
    @given(formulas())
    def test_models_lift_back(self, formula):
        result = preprocess(formula)
        if result.unsat:
            return
        solved = CDCLSolver(result.formula).solve()
        if not solved.is_sat:
            return
        lifted = result.lift_model(solved.assignment)
        total = lifted.extend_unassigned(formula.variables())
        assert formula.evaluate(total) is True

    @SETTINGS
    @given(formulas())
    def test_recursive_learning_sound(self, formula):
        result = recursive_learn(formula, {})
        expected = brute_force_status(formula)
        if result.conflict:
            assert expected == "UNSAT"
            return
        if expected == "SAT":
            probe = formula.copy()
            for var, value in result.necessary.items():
                probe.add_clause([var if value else -var])
            assert brute_force_status(probe) == "SAT"


class TestCNFDataStructures:
    @SETTINGS
    @given(formulas())
    def test_dimacs_roundtrip(self, formula):
        assert parse_dimacs(write_dimacs(formula)) == formula

    @SETTINGS
    @given(st.lists(st.integers(-6, 6).filter(bool), min_size=1,
                    max_size=5),
           st.lists(st.integers(-6, 6).filter(bool), min_size=1,
                    max_size=5))
    def test_resolution_soundness(self, left_lits, right_lits):
        """Any model of both parents satisfies the resolvent."""
        left, right = Clause(left_lits), Clause(right_lits)
        pivots = [v for v in left.variables()
                  if left.contains(v) and right.contains(-v)
                  or left.contains(-v) and right.contains(v)]
        if not pivots:
            return
        resolvent = left.resolve(right, pivots[0])
        variables = sorted(left.variables() | right.variables())
        for bits in itertools.product([False, True],
                                      repeat=len(variables)):
            model = dict(zip(variables, bits))
            if left.evaluate(model) and right.evaluate(model):
                assert resolvent.evaluate(model) is True


class TestCircuitEncoding:
    @SETTINGS
    @given(circuits(), st.integers(0, 2 ** 16 - 1))
    def test_encoding_agrees_with_simulation(self, circuit, bits):
        """Constraining the CNF to an input vector forces exactly the
        simulated node values."""
        vector = {name: bool((bits >> index) & 1)
                  for index, name in enumerate(circuit.inputs)}
        expected = simulate(circuit, vector)
        encoding = encode_circuit(circuit)
        formula = encoding.formula.copy()
        for name, value in vector.items():
            formula.add_clause([encoding.literal(name, value)])
        result = CDCLSolver(formula).solve()
        assert result.is_sat
        total = result.assignment.extend_unassigned(formula.variables())
        for name, var in encoding.var_of.items():
            assert total.value_of(var) == expected[name], name

    @SETTINGS
    @given(circuits())
    def test_objective_solutions_replay(self, circuit):
        """Any SAT objective query yields a vector that simulation
        confirms."""
        from repro.solvers.circuit_sat import solve_circuit
        output = circuit.outputs[0]
        for value in (False, True):
            result = solve_circuit(circuit, {output: value})
            if not result.is_sat:
                continue
            from repro.circuits.simulate import simulate3
            partial = {k: v for k, v in result.input_vector.items()
                       if v is not None}
            assert simulate3(circuit, partial)[output] is value
