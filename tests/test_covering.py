"""Unit tests for repro.apps.covering (Section 3)."""

import pytest

from repro.apps.covering import (
    greedy_covering,
    is_implicant_of,
    minimum_size_implicant,
    solve_covering,
)
from repro.cnf.formula import CNFFormula


class TestSolveCovering:
    def test_simple_optimum(self):
        # Columns: 0 covers rows {0,1}; 1 covers {2}; 2 covers {0,2}.
        rows = [[0, 2], [0], [1, 2]]
        solution = solve_covering(3, rows)
        assert solution.cost == 2
        assert solution.proven_optimal
        chosen = set(solution.selected)
        for row in rows:
            assert chosen & set(row)

    def test_single_column_dominates(self):
        rows = [[0, 1], [0, 2], [0]]
        solution = solve_covering(3, rows)
        assert solution.cost == 1
        assert solution.selected == [0]

    def test_infeasible(self):
        solution = solve_covering(2, [[0], []])
        assert solution.selected is None

    def test_empty_rows_trivial(self):
        solution = solve_covering(3, [])
        assert solution.cost == 0
        assert solution.selected == []

    def test_disjoint_rows_need_all(self):
        rows = [[0], [1], [2]]
        solution = solve_covering(3, rows)
        assert solution.cost == 3

    def test_optimal_beats_or_ties_greedy(self):
        # The classic greedy trap: overlapping columns.
        rows = [[0, 1], [0, 2], [1, 3], [2, 3], [1, 2]]
        sat = solve_covering(4, rows)
        greedy = greedy_covering(4, rows)
        assert sat.cost <= len(greedy)


class TestGreedyCovering:
    def test_covers_everything(self):
        rows = [[0, 2], [0], [1, 2]]
        chosen = set(greedy_covering(3, rows))
        for row in rows:
            assert chosen & set(row)

    def test_infeasible(self):
        assert greedy_covering(2, [[0], []]) is None


class TestMinimumSizeImplicant:
    def test_two_level_function(self):
        # f = ab + a'c  as CNF: (a' + b)(a + c)  [check: a=1 -> b; a=0
        # -> c; equivalent to the implicants {ab, a'c}].
        formula = CNFFormula(3)
        formula.add_clause([-1, 2])
        formula.add_clause([1, 3])
        solution = minimum_size_implicant(formula)
        assert solution.size == 2
        assert is_implicant_of(formula, solution.literals)
        assert set(map(abs, solution.literals)) in ({1, 2}, {1, 3})

    def test_unit_implicant(self):
        # f = (a): minimum implicant is the single literal a.
        formula = CNFFormula(1)
        formula.add_clause([1])
        solution = minimum_size_implicant(formula)
        assert solution.literals == (1,)
        assert solution.size == 1

    def test_unsat_function_has_no_implicant(self):
        formula = CNFFormula(1)
        formula.add_clause([1])
        formula.add_clause([-1])
        solution = minimum_size_implicant(formula)
        assert solution.literals is None

    def test_primality(self):
        """No literal of the returned cube is droppable."""
        formula = CNFFormula(4)
        formula.add_clause([1, 2])
        formula.add_clause([3, 4])
        solution = minimum_size_implicant(formula)
        assert solution.is_prime
        lits = list(solution.literals)
        for lit in lits:
            smaller = [l for l in lits if l != lit]
            assert not is_implicant_of(formula, smaller)

    def test_minimality_by_enumeration(self):
        """Cross-check the SAT optimum against exhaustive cube search."""
        import itertools
        formula = CNFFormula(3)
        formula.add_clause([1, 2, 3])
        formula.add_clause([-1, 2])
        solution = minimum_size_implicant(formula)
        best = None
        variables = range(1, 4)
        for size in range(0, 4):
            for combo in itertools.combinations(variables, size):
                for signs in itertools.product([1, -1], repeat=size):
                    cube = [s * v for s, v in zip(signs, combo)]
                    if is_implicant_of(formula, cube):
                        best = size
                        break
                if best is not None:
                    break
            if best is not None:
                break
        assert solution.size == best


class TestIsImplicantOf:
    def test_positive_case(self):
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        assert is_implicant_of(formula, [1])

    def test_negative_case(self):
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        formula.add_clause([-1, 2])
        assert not is_implicant_of(formula, [1])
        assert is_implicant_of(formula, [2])
