"""Unit tests for repro.obs.export: the Prometheus text renderer
over registry snapshots and the matching exposition linter."""

from repro.obs import (
    Histogram,
    MetricsRegistry,
    lint_exposition,
    render_prometheus,
)


def sample_snapshots():
    registry = MetricsRegistry()
    registry.counter("service.submits").inc(3)
    registry.gauge("service.workers_busy").set(2)
    registry.histogram("service.queue_wait_seconds",
                       bounds=(0.01, 0.1, 1.0)).observe(0.05)
    return registry.snapshot()


class TestRenderPrometheus:
    def test_counter_gets_total_suffix_and_type_line(self):
        text = render_prometheus(sample_snapshots())
        assert "# TYPE service_submits_total counter" in text
        assert "service_submits_total 3" in text

    def test_existing_total_suffix_not_doubled(self):
        snap = {"hits_total": {"type": "counter", "value": 1}}
        text = render_prometheus(snap)
        assert "hits_total 1" in text
        assert "hits_total_total" not in text

    def test_gauge_renders_verbatim(self):
        text = render_prometheus(sample_snapshots())
        assert "# TYPE service_workers_busy gauge" in text
        assert "service_workers_busy 2" in text

    def test_histogram_cumulative_buckets_and_moments(self):
        hist = Histogram(bounds=(1, 4, 16))
        for value in (0, 1, 2, 4, 5, 100):
            hist.observe(value)
        text = render_prometheus({"h": hist.snapshot()})
        # per-bucket counts 2,2,1 + overflow 1 -> cumulative 2,4,5,6
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="4"} 4' in text
        assert 'h_bucket{le="16"} 5' in text
        assert 'h_bucket{le="+Inf"} 6' in text
        assert "h_sum 112" in text
        assert "h_count 6" in text

    def test_labeled_series_share_one_family(self):
        snap = {
            'service.results{tenant="a"}': {"type": "counter",
                                            "value": 1},
            'service.results{tenant="b"}': {"type": "counter",
                                            "value": 2},
        }
        text = render_prometheus(snap)
        assert text.count("# TYPE service_results_total counter") == 1
        assert 'service_results_total{tenant="a"} 1' in text
        assert 'service_results_total{tenant="b"} 2' in text

    def test_histogram_labels_merge_with_le(self):
        hist = Histogram(bounds=(1,))
        hist.observe(0.5)
        text = render_prometheus(
            {'wait{tenant="acme"}': hist.snapshot()})
        assert 'wait_bucket{tenant="acme",le="1"} 1' in text
        assert 'wait_bucket{tenant="acme",le="+Inf"} 1' in text
        assert 'wait_sum{tenant="acme"} 0.5' in text

    def test_dots_sanitized_and_prefix_applied(self):
        snap = {"solver.learned_clause.size": {"type": "gauge",
                                               "value": 7}}
        text = render_prometheus(snap, prefix="repro_")
        assert "repro_solver_learned_clause_size 7" in text

    def test_unknown_snapshot_types_skipped(self):
        snap = {"weird": {"type": "mystery", "value": 1},
                "ok": {"type": "gauge", "value": 2}}
        text = render_prometheus(snap)
        assert "weird" not in text
        assert "ok 2" in text

    def test_type_conflict_first_family_wins(self):
        snap = {'x{t="a"}': {"type": "gauge", "value": 1},
                'x{t="b"}': {"type": "histogram", "count": 1,
                             "sum": 1.0, "bounds": [1],
                             "buckets": [1, 0]}}
        text = render_prometheus(snap)
        assert text.count("# TYPE x") == 1

    def test_deterministic_and_newline_terminated(self):
        snapshots = sample_snapshots()
        text = render_prometheus(snapshots)
        assert text == render_prometheus(dict(
            reversed(list(snapshots.items()))))
        assert text.endswith("\n")
        assert render_prometheus({}) == ""

    def test_rendered_output_lints_clean(self):
        assert lint_exposition(
            render_prometheus(sample_snapshots())) == []


class TestLintExposition:
    def test_accepts_empty(self):
        assert lint_exposition("") == []

    def test_missing_trailing_newline(self):
        problems = lint_exposition("# TYPE a gauge\na 1")
        assert any("newline" in p for p in problems)

    def test_sample_without_type_line(self):
        problems = lint_exposition("orphan 1\n")
        assert any("without TYPE" in p for p in problems)

    def test_counter_without_total_suffix(self):
        problems = lint_exposition("# TYPE hits counter\nhits 1\n")
        assert any("_total" in p for p in problems)

    def test_duplicate_type_line(self):
        text = "# TYPE a gauge\na 1\n# TYPE a gauge\n"
        assert any("duplicate" in p for p in lint_exposition(text))

    def test_non_numeric_value(self):
        text = "# TYPE a gauge\na fast\n"
        assert any("non-numeric" in p for p in lint_exposition(text))

    def test_special_values_allowed(self):
        text = ("# TYPE a gauge\n"
                "a +Inf\na -Inf\na NaN\n")
        assert lint_exposition(text) == []

    def test_bad_label_pair(self):
        text = '# TYPE a gauge\na{tenant=unquoted} 1\n'
        assert any("label" in p for p in lint_exposition(text))

    def test_malformed_sample_line(self):
        text = "# TYPE a gauge\n{nothing} 1\n"
        assert any("malformed" in p for p in lint_exposition(text))

    def test_histogram_bucket_monotonicity(self):
        good = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 2\nh_bucket{le="+Inf"} 3\n'
                "h_sum 4\nh_count 3\n")
        assert lint_exposition(good) == []
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
               "h_sum 4\nh_count 3\n")
        assert any("monotonic" in p for p in lint_exposition(bad))

    def test_bucket_series_tracked_per_label_set(self):
        # Two tenants' cumulative counts interleave; each is
        # monotonic on its own and must not be compared cross-tenant.
        text = ("# TYPE h histogram\n"
                'h_bucket{tenant="a",le="1"} 9\n'
                'h_bucket{tenant="a",le="+Inf"} 9\n'
                'h_bucket{tenant="b",le="1"} 2\n'
                'h_bucket{tenant="b",le="+Inf"} 2\n'
                'h_sum{tenant="a"} 1\nh_count{tenant="a"} 9\n'
                'h_sum{tenant="b"} 1\nh_count{tenant="b"} 2\n')
        assert lint_exposition(text) == []

    def test_every_mutation_of_a_real_render_is_caught(self):
        text = render_prometheus(sample_snapshots())
        lines = text.splitlines()
        mutations = []
        for index, line in enumerate(lines):
            if line.startswith("# TYPE"):
                mutations.append(lines[:index] + lines[index + 1:])
        for mutated in mutations:
            assert lint_exposition("\n".join(mutated) + "\n") != []
