"""Unit tests for repro.solvers.dpll (Figure 2, chronological)."""

import pytest

from conftest import assert_model_satisfies, brute_force_status

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import parity_chain, pigeonhole, random_ksat
from repro.solvers.dpll import DPLLSolver, solve_dpll
from repro.solvers.heuristics import JeroslowWangHeuristic
from repro.solvers.result import Status


class TestBasics:
    def test_sat(self, tiny_sat_formula):
        result = solve_dpll(tiny_sat_formula)
        assert result.is_sat
        assert tiny_sat_formula.is_satisfied_by(result.assignment)

    def test_unsat(self, tiny_unsat_formula):
        assert solve_dpll(tiny_unsat_formula).is_unsat

    def test_empty_formula(self):
        assert solve_dpll(CNFFormula(3)).is_sat

    def test_empty_clause(self):
        formula = CNFFormula()
        formula.add_clause([])
        assert solve_dpll(formula).is_unsat

    def test_unit_only(self):
        formula = CNFFormula()
        formula.add_clauses([[1], [-2]])
        result = solve_dpll(formula)
        assert result.is_sat
        assert result.assignment.value_of(1) is True
        assert result.assignment.value_of(2) is False

    def test_forced_variable(self, tiny_sat_formula):
        result = solve_dpll(tiny_sat_formula)
        assert result.assignment.value_of(2) is True  # b forced


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_brute_force(self, seed):
        formula = random_ksat(8, 35, seed=seed)
        result = solve_dpll(formula)
        expected = brute_force_status(formula)
        assert result.is_sat == (expected == "SAT")
        assert result.is_unsat == (expected == "UNSAT")
        if result.is_sat:
            assert_model_satisfies(formula, result.assignment)

    def test_pigeonhole_unsat(self):
        assert solve_dpll(pigeonhole(3)).is_unsat

    def test_parity_chain_unsat(self):
        assert solve_dpll(parity_chain(8)).is_unsat

    def test_parity_chain_sat(self):
        result = solve_dpll(parity_chain(8, satisfiable=True))
        assert result.is_sat


class TestBudgets:
    def test_decision_budget(self):
        result = solve_dpll(pigeonhole(5), max_decisions=5)
        assert result.is_unknown

    def test_conflict_budget(self):
        result = solve_dpll(pigeonhole(5), max_conflicts=3)
        assert result.is_unknown


class TestStatistics:
    def test_counts_positive_on_search(self):
        result = solve_dpll(pigeonhole(3))
        assert result.stats.decisions > 0
        assert result.stats.conflicts > 0
        assert result.stats.backtracks > 0
        assert result.stats.time_seconds >= 0

    def test_no_decisions_on_forced_instance(self):
        formula = CNFFormula()
        formula.add_clauses([[1], [-1, 2]])
        result = solve_dpll(formula)
        assert result.stats.decisions == 0
        assert result.stats.propagations >= 2

    def test_chronological_only(self):
        result = solve_dpll(pigeonhole(3))
        assert result.stats.nonchronological_backtracks == 0
        assert result.stats.learned_clauses == 0


class TestHeuristicIntegration:
    def test_custom_heuristic(self):
        formula = pigeonhole(3)
        result = DPLLSolver(formula,
                            heuristic=JeroslowWangHeuristic()).solve()
        assert result.is_unsat
