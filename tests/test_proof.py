"""Unit tests for repro.solvers.proof (RUP proof logging/checking)."""

import pytest

from conftest import brute_force_status

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import (
    parity_chain,
    pigeonhole,
    random_ksat_at_ratio,
)
from repro.solvers.proof import (
    Proof,
    check_rup_proof,
    solve_with_proof,
)


class TestProofLogging:
    def test_unsat_proof_complete_and_valid(self):
        formula = pigeonhole(4)
        result, proof = solve_with_proof(formula)
        assert result.is_unsat
        assert proof.complete
        assert len(proof) > 0
        check = check_rup_proof(formula, proof)
        assert check.valid, f"failed at step {check.failed_step}"

    def test_sat_proof_incomplete_but_steps_valid(self):
        formula = random_ksat_at_ratio(20, ratio=3.5, seed=0)
        result, proof = solve_with_proof(formula)
        assert result.is_sat
        assert not proof.complete
        assert check_rup_proof(formula, proof).valid

    @pytest.mark.parametrize("seed", range(6))
    def test_random_unsat_instances(self, seed):
        formula = random_ksat_at_ratio(8, ratio=5.5, seed=seed)
        if brute_force_status(formula) != "UNSAT":
            pytest.skip("instance happens to be satisfiable")
        result, proof = solve_with_proof(formula)
        assert result.is_unsat
        assert check_rup_proof(formula, proof).valid

    def test_parity_chain_proof(self):
        formula = parity_chain(10)
        result, proof = solve_with_proof(formula)
        assert result.is_unsat
        assert check_rup_proof(formula, proof).valid

    def test_proof_with_minimization(self):
        formula = pigeonhole(4)
        result, proof = solve_with_proof(formula,
                                         minimize_learned=True)
        assert result.is_unsat
        assert check_rup_proof(formula, proof).valid

    def test_proof_with_decision_cut(self):
        formula = pigeonhole(3)
        result, proof = solve_with_proof(formula,
                                         conflict_cut="decision")
        assert result.is_unsat
        assert check_rup_proof(formula, proof).valid

    def test_proof_with_deletion(self):
        """Deleted clauses stay in the proof transcript; checking
        accumulates them, so validity is unaffected."""
        formula = pigeonhole(5)
        result, proof = solve_with_proof(formula, deletion="size",
                                         deletion_bound=5,
                                         deletion_interval=20)
        assert result.is_unsat
        assert check_rup_proof(formula, proof).valid

    def test_trivially_unsat_formula(self):
        formula = CNFFormula(1)
        formula.add_clause([1])
        formula.add_clause([-1])
        result, proof = solve_with_proof(formula)
        assert result.is_unsat
        assert proof.complete
        assert check_rup_proof(formula, proof).valid


class TestChecker:
    def test_rejects_non_consequence(self):
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        bogus = Proof(steps=[Clause([1])])        # (1) not implied
        check = check_rup_proof(formula, bogus)
        assert not check.valid
        assert check.failed_step == 0

    def test_rejects_fake_completion(self):
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        fake = Proof(steps=[], complete=True)
        check = check_rup_proof(formula, fake)
        assert not check.valid

    def test_accepts_unit_step(self):
        # (a + b)(a + b') |= (a) by RUP.
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        formula.add_clause([1, -2])
        proof = Proof(steps=[Clause([1])])
        assert check_rup_proof(formula, proof).valid

    def test_steps_checked_counter(self):
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        formula.add_clause([1, -2])
        proof = Proof(steps=[Clause([1]), Clause([2])])
        check = check_rup_proof(formula, proof)
        assert not check.valid and check.failed_step == 1

    def test_tautological_step_accepted(self):
        formula = CNFFormula(1)
        formula.add_clause([1])
        proof = Proof(steps=[Clause([1, -1])])
        assert check_rup_proof(formula, proof).valid
