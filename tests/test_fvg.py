"""Unit tests for repro.apps.fvg (functional vector generation)."""

import pytest

from repro.apps.fvg import CoverageReport, generate_vectors, toggle_goals
from repro.circuits.gates import GateType
from repro.circuits.library import c17, half_adder
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import simulate


class TestToggleGoals:
    def test_goal_universe(self):
        goals = toggle_goals(half_adder())
        assert ("sum", True) in goals
        assert ("a", False) in goals
        assert len(goals) == 8            # 4 nodes x 2 values

    def test_restricted_nodes(self):
        goals = toggle_goals(half_adder(), nodes=["carry"])
        assert set(goals) == {("carry", False), ("carry", True)}


class TestGenerateVectors:
    def test_full_toggle_coverage_on_c17(self):
        report = generate_vectors(c17(), seed=0)
        total = len(toggle_goals(c17()))
        assert report.coverage(total) == 1.0
        assert not report.unreachable
        assert not report.aborted

    def test_vectors_actually_cover_goals(self):
        circuit = c17()
        report = generate_vectors(circuit, seed=1)
        observed = set()
        for vector in report.vectors:
            for name, value in simulate(circuit, vector).items():
                observed.add((name, value))
        assert report.covered <= observed

    def test_unreachable_goal_reported(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("na", GateType.NOT, ["a"])
        circuit.add_gate("y", GateType.AND, ["a", "na"])  # constant 0
        circuit.set_output("y")
        report = generate_vectors(circuit, random_warmup=0, seed=0)
        assert ("y", True) in report.unreachable
        assert ("y", False) in report.covered

    def test_directed_goals_only(self):
        circuit = half_adder()
        report = generate_vectors(
            circuit, goals=[("carry", True)], random_warmup=0, seed=0)
        assert report.covered == {("carry", True)}
        assert len(report.vectors) == 1

    def test_warmup_reduces_sat_calls(self):
        circuit = c17()
        cold = generate_vectors(circuit, random_warmup=0, seed=0)
        warm = generate_vectors(circuit, random_warmup=16, seed=0)
        assert warm.sat_calls <= cold.sat_calls

    def test_sequential_rejected(self):
        from repro.circuits.generators import binary_counter
        with pytest.raises(ValueError):
            generate_vectors(binary_counter(2))

    def test_coverage_excludes_unreachable_from_denominator(self):
        report = CoverageReport(covered={("x", True)},
                                unreachable={("x", False)})
        assert report.coverage(2) == 1.0

    def test_coverage_all_unreachable(self):
        report = CoverageReport(unreachable={("x", True), ("x", False)})
        assert report.coverage(2) == 1.0
