"""Public-API surface tests: imports, exports, docstrings.

A downstream user's first contact is ``from repro import ...``; these
tests pin the advertised names and the documentation contract (every
public module and export carries a docstring).
"""

import importlib
import inspect

import pytest

import repro
import repro.apps as apps

PUBLIC_MODULES = [
    "repro",
    "repro.cnf",
    "repro.cnf.literals",
    "repro.cnf.clause",
    "repro.cnf.formula",
    "repro.cnf.assignment",
    "repro.cnf.dimacs",
    "repro.cnf.simplify",
    "repro.cnf.cardinality",
    "repro.cnf.pseudo_boolean",
    "repro.cnf.generators",
    "repro.circuits",
    "repro.circuits.gates",
    "repro.circuits.netlist",
    "repro.circuits.tseitin",
    "repro.circuits.simulate",
    "repro.circuits.parallel_sim",
    "repro.circuits.bench_format",
    "repro.circuits.library",
    "repro.circuits.generators",
    "repro.circuits.faults",
    "repro.circuits.strash",
    "repro.solvers",
    "repro.solvers.result",
    "repro.solvers.dpll",
    "repro.solvers.cdcl",
    "repro.solvers.heuristics",
    "repro.solvers.restarts",
    "repro.solvers.local_search",
    "repro.solvers.recursive_learning",
    "repro.solvers.preprocess",
    "repro.solvers.circuit_sat",
    "repro.solvers.incremental",
    "repro.solvers.portfolio",
    "repro.solvers.forward_implication",
    "repro.solvers.proof",
    "repro.runtime",
    "repro.runtime.budget",
    "repro.runtime.supervisor",
    "repro.runtime.faults",
    "repro.obs",
    "repro.obs.trace",
    "repro.obs.metrics",
    "repro.obs.profile",
    "repro.bdd",
    "repro.bdd.manager",
    "repro.bdd.circuit",
    "repro.hw",
    "repro.hw.accelerator",
    "repro.apps",
    "repro.apps.atpg",
    "repro.apps.sequential_atpg",
    "repro.apps.delay_fault",
    "repro.apps.redundancy",
    "repro.apps.equivalence",
    "repro.apps.seq_equivalence",
    "repro.apps.delay",
    "repro.apps.bmc",
    "repro.apps.fvg",
    "repro.apps.covering",
    "repro.apps.routing",
    "repro.apps.crosstalk",
    "repro.apps.optimization",
    "repro.experiments",
    "repro.experiments.tables",
    "repro.experiments.workloads",
    "repro.experiments.runner",
    "repro.cli",
]


class TestModuleSurface:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_importable_with_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a docstring"

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_apps_all_resolves(self):
        for name in apps.__all__:
            assert hasattr(apps, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestDocstringDiscipline:
    @pytest.mark.parametrize("module_name", [
        "repro.cnf.formula", "repro.cnf.clause",
        "repro.solvers.cdcl", "repro.solvers.circuit_sat",
        "repro.circuits.netlist", "repro.bdd.manager",
        "repro.apps.atpg",
    ])
    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name, member in inspect.getmembers(module):
            if name.startswith("_"):
                continue
            if inspect.isclass(member) or inspect.isfunction(member):
                if getattr(member, "__module__", None) != module_name:
                    continue
                assert member.__doc__, f"{module_name}.{name}"
                if inspect.isclass(member):
                    for method_name, method in inspect.getmembers(
                            member, inspect.isfunction):
                        if method_name.startswith("_"):
                            continue
                        assert method.__doc__, \
                            f"{module_name}.{name}.{method_name}"


class TestQuickstartContract:
    def test_readme_quickstart_snippet(self):
        """The README's first snippet must keep working verbatim."""
        from repro import CNFFormula, solve_cdcl

        formula = CNFFormula()
        a, b, c = formula.new_vars(3)
        formula.add_clause([a, b])
        formula.add_clause([-a, c])
        formula.add_clause([-b, c])
        result = solve_cdcl(formula)
        assert result.is_sat
        assert result.assignment.value_of(c) is True

    def test_module_docstring_snippet(self):
        from repro import CNFFormula, solve_cdcl

        formula = CNFFormula()
        a, b = formula.new_vars(2)
        formula.add_clause([a, b])
        formula.add_clause([-a, b])
        result = solve_cdcl(formula)
        assert result.is_sat
        assert result.assignment.value_of(b) is True
