"""Unit tests for repro.bdd (the BDD baseline package)."""

import itertools

import pytest

from repro.bdd.circuit import build_output_bdds, check_equivalence_bdd
from repro.bdd.manager import BDDBlowup, BDDManager
from repro.circuits.generators import (
    carry_select_adder,
    parity_tree,
    ripple_carry_adder,
)
from repro.circuits.library import c17, half_adder, majority3
from repro.circuits.simulate import exhaustive_truth_table


class TestManagerBasics:
    def test_terminals_distinct(self):
        manager = BDDManager(1)
        assert manager.zero is not manager.one
        assert manager.constant(True) is manager.one
        assert manager.constant(False) is manager.zero

    def test_var_canonical(self):
        manager = BDDManager(2)
        assert manager.var(1) is manager.var(1)
        assert manager.var(1) is not manager.var(2)

    def test_negation_involution(self):
        manager = BDDManager(2)
        f = manager.apply_and(manager.var(1), manager.var(2))
        assert manager.apply_not(manager.apply_not(f)) is f

    def test_nvar(self):
        manager = BDDManager(1)
        assert manager.nvar(1) is manager.apply_not(manager.var(1))

    def test_reduction_rule(self):
        manager = BDDManager(2)
        # x AND (y OR NOT y) == x: redundant test on y collapses.
        y_or_ny = manager.apply_or(manager.var(2), manager.nvar(2))
        assert y_or_ny is manager.one
        f = manager.apply_and(manager.var(1), y_or_ny)
        assert f is manager.var(1)

    def test_canonicity_across_syntaxes(self):
        manager = BDDManager(3)
        a, b, c = (manager.var(i) for i in (1, 2, 3))
        # Distributivity: a(b + c) == ab + ac -- same node.
        left = manager.apply_and(a, manager.apply_or(b, c))
        right = manager.apply_or(manager.apply_and(a, b),
                                 manager.apply_and(a, c))
        assert left is right

    def test_blowup_budget(self):
        manager = BDDManager(16, max_nodes=10)
        with pytest.raises(BDDBlowup):
            f = manager.zero
            for var in range(1, 17):
                f = manager.apply_xor(f, manager.var(var))


class TestSemantics:
    @pytest.mark.parametrize("op,function", [
        ("apply_and", lambda a, b: a and b),
        ("apply_or", lambda a, b: a or b),
        ("apply_xor", lambda a, b: a != b),
        ("apply_xnor", lambda a, b: a == b),
    ])
    def test_binary_ops(self, op, function):
        manager = BDDManager(2)
        node = getattr(manager, op)(manager.var(1), manager.var(2))
        for a, b in itertools.product([False, True], repeat=2):
            assert manager.evaluate(node, {1: a, 2: b}) == function(a, b)

    def test_ite_semantics(self):
        manager = BDDManager(3)
        node = manager.ite(manager.var(1), manager.var(2),
                           manager.var(3))
        for bits in itertools.product([False, True], repeat=3):
            model = {1: bits[0], 2: bits[1], 3: bits[2]}
            expected = bits[1] if bits[0] else bits[2]
            assert manager.evaluate(node, model) == expected

    def test_apply_many(self):
        manager = BDDManager(3)
        operands = [manager.var(i) for i in (1, 2, 3)]
        node = manager.apply_many("NAND", operands)
        for bits in itertools.product([False, True], repeat=3):
            model = dict(zip((1, 2, 3), bits))
            assert manager.evaluate(node, model) == (not all(bits))

    def test_apply_many_unknown(self):
        with pytest.raises(ValueError):
            BDDManager(1).apply_many("MAJ", [])

    def test_restrict(self):
        manager = BDDManager(2)
        f = manager.apply_and(manager.var(1), manager.var(2))
        assert manager.restrict(f, 1, True) is manager.var(2)
        assert manager.restrict(f, 1, False) is manager.zero

    def test_exists(self):
        manager = BDDManager(2)
        f = manager.apply_and(manager.var(1), manager.var(2))
        assert manager.exists(f, 1) is manager.var(2)

    def test_count_solutions(self):
        manager = BDDManager(3)
        a, b, c = (manager.var(i) for i in (1, 2, 3))
        f = manager.apply_or(manager.apply_and(a, b),
                             manager.apply_and(manager.apply_not(a), c))
        assert manager.count_solutions(f, 3) == 4
        assert manager.count_solutions(manager.one, 3) == 8
        assert manager.count_solutions(manager.zero, 3) == 0

    def test_any_model(self):
        manager = BDDManager(2)
        f = manager.apply_and(manager.var(1), manager.nvar(2))
        model = manager.any_model(f)
        assert manager.evaluate(f, {1: model.get(1, False),
                                    2: model.get(2, False)})
        assert manager.any_model(manager.zero) is None

    def test_iter_cubes_cover_exactly(self):
        manager = BDDManager(3)
        a, b, c = (manager.var(i) for i in (1, 2, 3))
        f = manager.apply_or(manager.apply_and(a, b), c)
        covered = set()
        for cube in manager.iter_cubes(f):
            free = [v for v in (1, 2, 3) if v not in cube]
            for bits in itertools.product([False, True],
                                          repeat=len(free)):
                model = dict(cube)
                model.update(zip(free, bits))
                covered.add((model[1], model[2], model[3]))
        expected = {bits for bits in
                    itertools.product([False, True], repeat=3)
                    if (bits[0] and bits[1]) or bits[2]}
        assert covered == expected

    def test_size(self):
        manager = BDDManager(2)
        f = manager.apply_and(manager.var(1), manager.var(2))
        assert manager.size(f) == 2
        assert manager.size(manager.one) == 0


class TestCircuitBDDs:
    @pytest.mark.parametrize("factory", [half_adder, majority3, c17])
    def test_matches_simulation(self, factory):
        circuit = factory()
        manager = BDDManager(len(circuit.inputs))
        nodes = build_output_bdds(circuit, manager)
        table = exhaustive_truth_table(circuit)
        for key, outputs in table.items():
            model = {index + 1: value
                     for index, value in enumerate(key)}
            for out_name, expected in zip(circuit.outputs, outputs):
                assert manager.evaluate(nodes[out_name], model) \
                    == expected

    def test_sequential_rejected(self):
        from repro.circuits.generators import binary_counter
        with pytest.raises(ValueError):
            build_output_bdds(binary_counter(2))

    def test_input_order_respected(self):
        circuit = half_adder()
        manager = BDDManager(2)
        nodes = build_output_bdds(circuit, manager,
                                  input_order=["b", "a"])
        # With order [b, a], variable 1 is b.
        assert manager.evaluate(nodes["carry"], {1: True, 2: False}) \
            is False

    def test_bad_input_order(self):
        with pytest.raises(ValueError):
            build_output_bdds(half_adder(), input_order=["a"])


class TestBDDEquivalence:
    def test_adder_architectures(self):
        report = check_equivalence_bdd(ripple_carry_adder(3),
                                       carry_select_adder(3))
        assert report.equivalent is True
        assert all(report.per_output)
        assert report.peak_nodes > 0

    def test_counterexample_on_mutation(self):
        from repro.apps.equivalence import mutate_circuit
        circuit = parity_tree(4)
        mutated = mutate_circuit(circuit, seed=1)
        report = check_equivalence_bdd(circuit, mutated)
        assert report.equivalent is False
        from repro.circuits.simulate import simulate
        vector = report.counterexample
        assert simulate(circuit, vector)["parity"] != \
            simulate(mutated, vector)["parity"]

    def test_blowup_reported_as_unknown(self):
        from repro.circuits.generators import array_multiplier
        report = check_equivalence_bdd(array_multiplier(3),
                                       array_multiplier(3),
                                       max_nodes=50)
        assert report.equivalent is None

    def test_agrees_with_sat_cec(self):
        from repro.apps.equivalence import check_equivalence
        left = ripple_carry_adder(3)
        right = carry_select_adder(3)
        assert check_equivalence_bdd(left, right).equivalent == \
            check_equivalence(left, right).equivalent

    def test_mismatched_interfaces(self):
        with pytest.raises(ValueError):
            check_equivalence_bdd(half_adder(), c17())
