"""Unit tests for repro.apps.seq_equivalence."""

import pytest

from repro.apps.seq_equivalence import (
    SequentialEquivalenceChecker,
    check_sequential_equivalence,
    verify_divergence,
)
from repro.circuits.gates import GateType
from repro.circuits.generators import binary_counter, shift_register
from repro.circuits.netlist import Circuit


def delayed_not(extra_stage: bool) -> Circuit:
    """sout = NOT(sin) delayed by 1 (or 2) cycles."""
    circuit = Circuit("delaynot" + ("2" if extra_stage else "1"))
    circuit.add_input("sin")
    circuit.add_gate("ninv", GateType.NOT, ["sin"])
    circuit.add_dff("r0", "ninv")
    last = "r0"
    if extra_stage:
        circuit.add_dff("r1", "r0")
        last = "r1"
    circuit.add_gate("sout", GateType.BUFFER, [last])
    circuit.set_output("sout")
    return circuit


class TestEquivalentPairs:
    def test_identical_counters(self):
        report = check_sequential_equivalence(binary_counter(2),
                                              binary_counter(2),
                                              max_depth=6)
        assert report.bounded_equivalent
        assert report.equivalent_through == 6

    def test_structurally_different_same_function(self):
        """A shift register vs the same register with its output
        buffered differently."""
        left = shift_register(2)
        right = Circuit("shift2b")
        right.add_input("sin")
        right.add_dff("s0", "sin")
        right.add_dff("s1", "s0")
        right.add_gate("tmp", GateType.BUFFER, ["s1"])
        right.add_gate("sout", GateType.BUFFER, ["tmp"])
        right.set_output("sout")
        report = check_sequential_equivalence(left, right, max_depth=6)
        assert report.bounded_equivalent


class TestDivergentPairs:
    def test_different_latency_detected(self):
        """One vs two cycles of delay: diverges at frame 1 (first
        frame where the inputs can differ from the zero state)."""
        report = check_sequential_equivalence(delayed_not(False),
                                              delayed_not(True),
                                              max_depth=6)
        assert report.failure_depth is not None
        assert report.failure_depth <= 2
        assert verify_divergence(delayed_not(False),
                                 delayed_not(True), report)

    def test_counter_width_mismatch(self):
        """2-bit vs 3-bit counters: rollover differs first at frame 3."""
        report = check_sequential_equivalence(binary_counter(2),
                                              binary_counter(3),
                                              max_depth=8)
        assert report.failure_depth == 3
        assert verify_divergence(binary_counter(2), binary_counter(3),
                                 report)

    def test_bound_too_shallow_misses_divergence(self):
        report = check_sequential_equivalence(binary_counter(2),
                                              binary_counter(3),
                                              max_depth=2)
        assert report.bounded_equivalent          # the bounded caveat
        assert report.equivalent_through == 2


class TestInterfaces:
    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            check_sequential_equivalence(binary_counter(2),
                                         shift_register(2))

    def test_initial_state_override(self):
        """Identical counters from different initial states diverge
        immediately via rollover at different times."""
        checker = SequentialEquivalenceChecker(
            binary_counter(2), binary_counter(2),
            initial_a={"q0": True, "q1": True})
        report = checker.check(max_depth=4)
        assert report.failure_depth == 0
