"""Unit tests for repro.circuits.netlist."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit, CircuitError, Node


def simple_circuit():
    circuit = Circuit("simple")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("g1", GateType.AND, ["a", "b"])
    circuit.add_gate("g2", GateType.NOT, ["g1"])
    circuit.set_output("g2")
    return circuit


class TestConstruction:
    def test_basic_counts(self):
        circuit = simple_circuit()
        assert circuit.inputs == ["a", "b"]
        assert circuit.outputs == ["g2"]
        assert circuit.num_gates() == 2
        assert len(circuit) == 4

    def test_duplicate_name_rejected(self):
        circuit = simple_circuit()
        with pytest.raises(CircuitError):
            circuit.add_input("a")

    def test_unknown_fanin_rejected(self):
        circuit = Circuit()
        with pytest.raises(CircuitError):
            circuit.add_gate("g", GateType.NOT, ["missing"])

    def test_unknown_output_rejected(self):
        with pytest.raises(CircuitError):
            simple_circuit().set_output("nope")

    def test_add_gate_rejects_nongate_types(self):
        circuit = Circuit()
        with pytest.raises(CircuitError):
            circuit.add_gate("x", GateType.INPUT, [])

    def test_const_nodes(self):
        circuit = Circuit()
        circuit.add_const("zero", False)
        circuit.add_const("one", True)
        assert circuit.node("zero").gate_type is GateType.CONST0
        assert circuit.node("one").gate_type is GateType.CONST1

    def test_set_output_idempotent(self):
        circuit = simple_circuit()
        circuit.set_output("g2")
        assert circuit.outputs == ["g2"]


class TestNode:
    def test_predicates(self):
        assert Node("a", GateType.INPUT).is_input
        assert Node("q", GateType.DFF, ("a",)).is_state
        assert Node("g", GateType.AND, ("a", "b")).is_gate

    def test_frozen(self):
        node = Node("a", GateType.INPUT)
        with pytest.raises(AttributeError):
            node.name = "b"


class TestStructure:
    def test_fanin_fanout(self):
        circuit = simple_circuit()
        assert circuit.fanin("g1") == ("a", "b")
        assert circuit.fanout("a") == ["g1"]
        assert circuit.fanout("g1") == ["g2"]
        assert circuit.fanout("g2") == []

    def test_topological_order(self):
        order = simple_circuit().topological_order()
        assert order.index("a") < order.index("g1") < order.index("g2")

    def test_levelize(self):
        levels = simple_circuit().levelize()
        assert levels == {"a": 0, "b": 0, "g1": 1, "g2": 2}

    def test_depth(self):
        assert simple_circuit().depth() == 2

    def test_transitive_fanin(self):
        circuit = simple_circuit()
        assert circuit.transitive_fanin(["g2"]) == {"a", "b", "g1", "g2"}
        assert circuit.transitive_fanin(["g1"]) == {"a", "b", "g1"}

    def test_transitive_fanout(self):
        circuit = simple_circuit()
        assert circuit.transitive_fanout(["a"]) == {"a", "g1", "g2"}

    def test_gate_names_topological(self):
        assert simple_circuit().gate_names() == ["g1", "g2"]


class TestSequential:
    def test_dff_forward_reference(self):
        circuit = Circuit()
        circuit.add_input("d")
        circuit.add_dff("q")
        circuit.add_gate("nq", GateType.NOT, ["q"])
        circuit.connect_dff("q", "nq")       # feedback through the DFF
        circuit.set_output("nq")
        circuit.validate()
        assert circuit.is_sequential()
        assert circuit.dffs == ["q"]

    def test_unconnected_dff_fails_validation(self):
        circuit = Circuit()
        circuit.add_dff("q")
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_connect_dff_on_non_dff(self):
        circuit = simple_circuit()
        with pytest.raises(CircuitError):
            circuit.connect_dff("g1", "a")

    def test_combinational_cycle_detected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_dff("q")         # placeholder to smuggle a name in
        circuit.add_gate("g1", GateType.AND, ["a", "q"])
        # Rewire the DFF into a gate-level cycle is impossible through
        # the API; instead check validate() raises for a cycle formed
        # via nodes dict manipulation (defensive path).
        from repro.circuits.netlist import Node
        circuit._nodes["g2"] = Node("g2", GateType.NOT, ("g3",))
        circuit._nodes["g3"] = Node("g3", GateType.NOT, ("g2",))
        circuit._order.extend(["g2", "g3"])
        with pytest.raises(CircuitError):
            circuit.topological_order()


class TestTransforms:
    def test_copy_independent(self):
        circuit = simple_circuit()
        duplicate = circuit.copy()
        duplicate.add_input("c")
        assert "c" not in circuit

    def test_renamed(self):
        renamed = simple_circuit().renamed("p_")
        assert renamed.inputs == ["p_a", "p_b"]
        assert renamed.outputs == ["p_g2"]
        assert renamed.fanin("p_g1") == ("p_a", "p_b")
        renamed.validate()

    def test_renamed_preserves_structure(self):
        original = simple_circuit()
        renamed = original.renamed("x_")
        assert renamed.depth() == original.depth()
        assert renamed.num_gates() == original.num_gates()

    def test_stats(self):
        stats = simple_circuit().stats()
        assert stats["inputs"] == 2
        assert stats["gates"] == 2
        assert stats["depth"] == 2
        assert stats["type_AND"] == 1

    def test_repr(self):
        assert "simple" in repr(simple_circuit())
