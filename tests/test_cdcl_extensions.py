"""Tests for the CDCL refinements: clause minimization, phase saving.

These are the solver-engineering directions the paper's Section 7
anticipates ("a continuing effort towards improving SAT algorithms");
both must preserve the soundness contract of the base engine.
"""

import itertools

import pytest

from conftest import assert_model_satisfies, brute_force_status

from repro.cnf.generators import pigeonhole, random_ksat_at_ratio
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.heuristics import FixedOrderHeuristic


class TestClauseMinimization:
    @pytest.mark.parametrize("seed", range(8))
    def test_soundness_on_random(self, seed):
        formula = random_ksat_at_ratio(8, ratio=4.3, seed=seed)
        expected = brute_force_status(formula)
        result = CDCLSolver(formula, minimize_learned=True).solve()
        assert result.is_sat == (expected == "SAT")
        if result.is_sat:
            assert_model_satisfies(formula, result.assignment)

    def test_minimized_clauses_still_implicates(self):
        formula = pigeonhole(4)
        solver = CDCLSolver(formula, minimize_learned=True)
        assert solver.solve().is_unsat
        for clause in solver.learned_clauses()[:10]:
            probe = formula.copy()
            for lit in clause:
                probe.add_clause([-lit])
            assert brute_force_status(probe, max_vars=20) == "UNSAT"

    def test_minimization_never_lengthens(self):
        """Total learned-literal volume with minimization must not
        exceed the volume without it on the same deterministic run."""
        def volume(minimize):
            solver = CDCLSolver(pigeonhole(5),
                                heuristic=FixedOrderHeuristic(),
                                minimize_learned=minimize)
            solver.solve()
            return sum(len(c) for c in solver.learned_clauses())

        assert volume(True) <= volume(False)

    def test_minimization_shrinks_somewhere(self):
        """On pigeonhole refutations at least one clause shrinks."""
        def lengths(minimize):
            solver = CDCLSolver(pigeonhole(5),
                                heuristic=FixedOrderHeuristic(),
                                minimize_learned=minimize)
            solver.solve()
            return [len(c) for c in solver.learned_clauses()]

        plain = lengths(False)
        minimized = lengths(True)
        assert sum(minimized) / max(len(minimized), 1) <= \
            sum(plain) / max(len(plain), 1)


class TestPhaseSaving:
    @pytest.mark.parametrize("seed", range(8))
    def test_soundness_on_random(self, seed):
        formula = random_ksat_at_ratio(8, ratio=4.3, seed=seed)
        expected = brute_force_status(formula)
        result = CDCLSolver(formula, phase_saving=True).solve()
        assert result.is_sat == (expected == "SAT")
        if result.is_sat:
            assert_model_satisfies(formula, result.assignment)

    def test_combined_options(self):
        for seed in range(4):
            formula = random_ksat_at_ratio(10, ratio=4.2, seed=seed)
            expected = brute_force_status(formula)
            result = CDCLSolver(formula, phase_saving=True,
                                minimize_learned=True,
                                deletion="size", deletion_bound=5,
                                deletion_interval=20).solve()
            assert result.is_sat == (expected == "SAT")

    def test_phase_reused_after_restart(self):
        """After a restart, saved phases steer re-decisions: the model
        found must still satisfy the formula (sanity of the plumbing).
        """
        from repro.solvers.restarts import FixedRestarts
        formula = random_ksat_at_ratio(30, ratio=3.5, seed=3)
        solver = CDCLSolver(formula, phase_saving=True,
                            restart_policy=FixedRestarts(5))
        result = solver.solve()
        assert result.is_sat
        assert_model_satisfies(formula, result.assignment)


class TestRunnerSwitches:
    def test_minimize_and_phase_configs(self, tiny_unsat_formula):
        from repro.experiments.runner import run_solver
        for config in ("cdcl-minimize", "cdcl-phase",
                       "cdcl-minimize-phase"):
            assert run_solver(config, tiny_unsat_formula).is_unsat
