"""Unit tests for repro.obs.trace: tracer, sinks, schema validation,
and solver-side emission (CDCL / DPLL / local search spans and
progress snapshots)."""

import json

import pytest

from repro.cnf.generators import pigeonhole, random_ksat_at_ratio
from repro.obs import (
    JsonlSink,
    ListSink,
    NullSink,
    Tracer,
    validate_event,
    validate_trace_file,
)
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import DPLLSolver
from repro.solvers.local_search import solve_gsat, solve_walksat


def assert_valid(events):
    problems = [p for e in events for p in validate_event(e)]
    assert problems == [], problems


class TestTracer:
    def test_span_nesting_and_parent_ids(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer", a=1):
            with tracer.span("inner"):
                tracer.event("tick", n=3)
        events = sink.events
        assert_valid(events)
        kinds = [e["kind"] for e in events]
        assert kinds == ["span_begin", "span_begin", "event",
                         "span_end", "span_end"]
        outer_begin, inner_begin, tick, inner_end, outer_end = events
        assert outer_begin["parent"] is None
        assert inner_begin["parent"] == outer_begin["span"]
        assert tick["span"] == inner_begin["span"]
        assert inner_end["span"] == inner_begin["span"]
        assert outer_end["attrs"]["duration"] >= 0

    def test_span_end_attrs_carry_outcome(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("solve") as end:
            end["status"] = "SAT"
        assert sink.events[-1]["attrs"]["status"] == "SAT"
        assert "duration" in sink.events[-1]["attrs"]

    def test_span_end_emitted_on_exception(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert sink.events[-1]["kind"] == "span_end"
        assert_valid(sink.events)

    def test_progress_throttling_per_name(self):
        sink = ListSink()
        tracer = Tracer(sink, progress_interval=3600.0)
        assert tracer.progress("a", n=1) is True
        assert tracer.progress("a", n=2) is False
        assert tracer.progress("b", n=1) is True
        names = [e["name"] for e in sink.events]
        assert names == ["a", "b"]

    def test_progress_interval_zero_keeps_everything(self):
        sink = ListSink()
        tracer = Tracer(sink, progress_interval=0.0)
        for n in range(5):
            assert tracer.progress("a", n=n) is True
        assert len(sink.events) == 5

    def test_negative_progress_interval_rejected(self):
        with pytest.raises(ValueError):
            Tracer(ListSink(), progress_interval=-1.0)

    def test_null_sink_swallows(self):
        tracer = Tracer(NullSink())
        with tracer.span("s"):
            tracer.event("e")
        tracer.close()


class TestValidateEvent:
    def base(self, **override):
        event = {"ts": 0.5, "kind": "event", "name": "x",
                 "span": None, "attrs": {}}
        event.update(override)
        return event

    def test_valid(self):
        assert validate_event(self.base()) == []

    def test_non_dict(self):
        assert validate_event([1, 2]) != []

    def test_unknown_key(self):
        assert validate_event(self.base(extra=1)) != []

    def test_missing_key(self):
        event = self.base()
        del event["ts"]
        assert validate_event(event) != []

    def test_bad_kind(self):
        assert validate_event(self.base(kind="weird")) != []

    def test_bool_ts_rejected(self):
        assert validate_event(self.base(ts=True)) != []

    def test_negative_ts_rejected(self):
        assert validate_event(self.base(ts=-0.1)) != []

    def test_empty_name_rejected(self):
        assert validate_event(self.base(name="")) != []

    def test_non_scalar_attr_rejected(self):
        assert validate_event(self.base(attrs={"k": [1]})) != []

    def test_parent_only_on_span_begin(self):
        assert validate_event(self.base(parent=None)) != []
        begin = self.base(kind="span_begin", span=0, parent=None)
        assert validate_event(begin) == []

    def test_span_begin_requires_span_id(self):
        begin = self.base(kind="span_begin", parent=None)
        assert validate_event(begin) != []

    def test_span_end_requires_duration(self):
        end = self.base(kind="span_end", span=0)
        assert validate_event(end) != []
        end["attrs"] = {"duration": 0.25}
        assert validate_event(end) == []


class TestJsonlSink:
    def test_round_trip_and_file_validation(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(JsonlSink(path), progress_interval=0.0)
        with tracer.span("solve", n=3):
            tracer.event("restart", count=1)
            tracer.progress("cdcl", decisions=10)
        tracer.close()
        count, problems = validate_trace_file(path)
        assert count == 4
        assert problems == []
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert [e["kind"] for e in lines] == \
            ["span_begin", "event", "progress", "span_end"]

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.emit({"ts": 0, "kind": "event", "name": "x",
                   "span": None, "attrs": {}})
        sink.close()
        sink.close()
        sink.emit({"ts": 1})        # silently dropped after close

    def test_invalid_file_reported(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"ts": 1}\n')
            handle.write("not json\n")
        count, problems = validate_trace_file(path)
        assert count == 2
        assert len(problems) >= 2


class _CountingFile:
    """A text-file stand-in that counts flush calls."""

    def __init__(self):
        self.chunks = []
        self.flushes = 0

    def write(self, data):
        self.chunks.append(data)

    def flush(self):
        self.flushes += 1

    def close(self):
        pass


class TestJsonlSinkBuffering:
    EVENT = {"ts": 0.0, "kind": "event", "name": "x", "span": None,
             "attrs": {}}

    def test_default_flushes_every_line(self):
        target = _CountingFile()
        sink = JsonlSink(target)
        for _ in range(3):
            sink.emit(dict(self.EVENT))
        assert target.flushes == 3

    def test_buffered_skips_per_line_flush(self):
        target = _CountingFile()
        sink = JsonlSink(target, buffered=True)
        for _ in range(3):
            sink.emit(dict(self.EVENT))
        assert target.flushes == 0
        sink.flush()
        assert target.flushes == 1

    def test_buffered_path_target_round_trips(self, tmp_path):
        path = str(tmp_path / "buffered.jsonl")
        sink = JsonlSink(path, buffered=True)
        for n in range(10):
            sink.emit({**self.EVENT, "attrs": {"n": n}})
        sink.close()
        count, problems = validate_trace_file(path)
        assert count == 10
        assert problems == []


class TestJsonlSinkRotation:
    def emit_n(self, sink, n):
        for index in range(n):
            sink.emit({"ts": float(index), "kind": "event",
                       "name": "tick", "span": None,
                       "attrs": {"n": index}})

    def test_rotates_at_size_cap(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, max_bytes=512)
        self.emit_n(sink, 40)
        sink.close()
        assert sink.rotations >= 1
        import os
        assert os.path.exists(path + ".1")
        assert os.path.getsize(path) <= 512
        assert os.path.getsize(path + ".1") <= 512

    def test_rotated_halves_both_parse_and_keep_the_tail(self,
                                                         tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, max_bytes=400)
        self.emit_n(sink, 30)
        sink.close()
        # Older generations are dropped by design; the live file and
        # one predecessor remain, both valid, ending at the newest
        # event.
        total = 0
        for part in (path + ".1", path):
            count, problems = validate_trace_file(part)
            assert problems == []
            total += count
        assert 0 < total <= 30
        with open(path, "r", encoding="utf-8") as handle:
            last = json.loads(handle.readlines()[-1])
        assert last["attrs"]["n"] == 29

    def test_single_oversized_line_still_written(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path, max_bytes=16)
        sink.emit({"ts": 0.0, "kind": "event", "name": "big" * 20,
                   "span": None, "attrs": {}})
        sink.close()
        count, problems = validate_trace_file(path)
        assert count == 1 and problems == []

    def test_no_cap_never_rotates(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        self.emit_n(sink, 50)
        sink.close()
        import os
        assert sink.rotations == 0
        assert not os.path.exists(path + ".1")

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(str(tmp_path / "t.jsonl"), max_bytes=0)

    def test_rotation_requires_a_path_target(self):
        with pytest.raises(ValueError):
            JsonlSink(_CountingFile(), max_bytes=1024)


class TestTracerContext:
    def test_context_stamped_on_every_event(self):
        sink = ListSink()
        tracer = Tracer(sink, context={"job": "j1", "attempt": 1})
        with tracer.span("cdcl.solve"):
            tracer.event("tick", n=3)
        assert_valid(sink.events)
        for event in sink.events:
            assert event["attrs"]["job"] == "j1"
            assert event["attrs"]["attempt"] == 1

    def test_explicit_attrs_beat_context(self):
        sink = ListSink()
        tracer = Tracer(sink, context={"job": "ctx"})
        tracer.event("tick", job="explicit")
        assert sink.events[0]["attrs"]["job"] == "explicit"

    def test_no_context_adds_nothing(self):
        sink = ListSink()
        Tracer(sink).event("tick")
        assert sink.events[0]["attrs"] == {}

    def test_emit_meta_validates_and_carries_epoch(self):
        sink = ListSink()
        tracer = Tracer(sink, context={"job": "j"})
        tracer.emit_meta()
        assert_valid(sink.events)
        meta = sink.events[0]
        assert meta["name"] == "trace.meta"
        assert abs(meta["attrs"]["epoch_unix"]
                   - tracer.epoch_unix) < 1e-3
        assert meta["attrs"]["job"] == "j"

    def test_service_observability_events_validate(self):
        sink = ListSink()
        tracer = Tracer(sink)
        tracer.event("service.progress", job="j", tenant="t",
                     attempt=1, seq=0, elapsed=0.5, conflicts=10,
                     propagations=100)
        tracer.event("service.metrics", families=12, bytes=4096)
        assert_valid(sink.events)
        # Dropping a required attr must fail validation.
        broken = dict(sink.events[0])
        broken["attrs"] = {k: v for k, v in broken["attrs"].items()
                           if k != "seq"}
        assert validate_event(broken) != []


class TestSolverEmission:
    def test_cdcl_spans_progress_and_restarts(self):
        formula = pigeonhole(5)
        sink = ListSink()
        solver = CDCLSolver(formula)
        solver.tracer = Tracer(sink, progress_interval=0.0,
                               checkpoint_interval=64)
        result = solver.solve()
        assert result.is_unsat
        assert_valid(sink.events)
        kinds = {}
        for event in sink.events:
            kinds.setdefault(event["kind"], []).append(event)
        assert [e["name"] for e in kinds["span_begin"]] == ["cdcl.solve"]
        end = kinds["span_end"][0]
        assert end["attrs"]["status"] == "UNSATISFIABLE"
        assert end["attrs"]["conflicts"] == result.stats.conflicts
        assert kinds["progress"], "no progress snapshots emitted"
        restart_events = [e for e in kinds.get("event", [])
                          if e["name"] == "cdcl.restart"]
        assert len(restart_events) == result.stats.restarts

    def test_cdcl_progress_deltas_sum_below_totals(self):
        formula = pigeonhole(5)
        sink = ListSink()
        solver = CDCLSolver(formula)
        solver.tracer = Tracer(sink, progress_interval=0.0,
                               checkpoint_interval=64)
        result = solver.solve()
        for attr in ("decisions", "conflicts", "propagations"):
            summed = sum(e["attrs"][attr] for e in sink.events
                         if e["kind"] == "progress")
            assert summed <= getattr(result.stats, attr)

    def test_cdcl_result_unchanged_by_tracer(self):
        formula = random_ksat_at_ratio(40, ratio=4.2, seed=3)
        plain = CDCLSolver(formula).solve()
        traced_solver = CDCLSolver(formula)
        traced_solver.tracer = Tracer(ListSink(), progress_interval=0.0,
                                      checkpoint_interval=64)
        traced = traced_solver.solve()
        assert traced.status == plain.status
        assert traced.stats.conflicts == plain.stats.conflicts
        assert traced.stats.decisions == plain.stats.decisions

    def test_no_tracer_means_no_meter(self):
        solver = CDCLSolver(pigeonhole(3))
        assert solver._arm_meter() is None

    def test_dpll_span_and_progress(self):
        formula = pigeonhole(4)
        sink = ListSink()
        solver = DPLLSolver(formula)
        solver.tracer = Tracer(sink, progress_interval=0.0,
                               checkpoint_interval=16)
        result = solver.solve()
        assert result.is_unsat
        assert_valid(sink.events)
        names = {e["name"] for e in sink.events}
        assert "dpll.solve" in names
        assert any(e["kind"] == "progress" for e in sink.events)

    @pytest.mark.parametrize("solve", [solve_gsat, solve_walksat])
    def test_local_search_span_and_tries(self, solve):
        formula = random_ksat_at_ratio(20, ratio=3.0, seed=1)
        sink = ListSink()
        tracer = Tracer(sink, progress_interval=0.0,
                        checkpoint_interval=32)
        result = solve(formula, max_flips=300, max_tries=3, seed=5,
                       tracer=tracer)
        assert_valid(sink.events)
        spans = [e for e in sink.events if e["kind"] == "span_begin"]
        assert len(spans) == 1
        assert spans[0]["name"].endswith(".solve")
        tries = [e for e in sink.events if e["kind"] == "event"]
        assert len(tries) >= 1

    def test_recursive_learning_span(self):
        from repro.solvers.recursive_learning import recursive_learn
        formula = random_ksat_at_ratio(15, ratio=4.0, seed=6)
        sink = ListSink()
        traced = recursive_learn(formula, depth=1,
                                 tracer=Tracer(sink))
        plain = recursive_learn(formula, depth=1)
        assert_valid(sink.events)
        spans = [e for e in sink.events if e["kind"] == "span_begin"]
        assert [e["name"] for e in spans] == ["recursive_learning.pass"]
        assert traced.necessary == plain.necessary

    def test_incremental_solver_traces_each_call(self):
        from repro.solvers.incremental import IncrementalSolver
        solver = IncrementalSolver()
        x, y = solver.new_var(), solver.new_var()
        solver.add_clause([x, y])
        sink = ListSink()
        solver.tracer = Tracer(sink)
        assert solver.solve().is_sat
        assert solver.solve(assumptions=[-x]).is_sat
        spans = [e for e in sink.events if e["kind"] == "span_begin"]
        assert len(spans) == 2
        assert_valid(sink.events)

    @pytest.mark.parametrize("solve", [solve_gsat, solve_walksat])
    def test_local_search_rng_unchanged_by_tracer(self, solve):
        formula = random_ksat_at_ratio(25, ratio=4.0, seed=2)
        plain = solve(formula, max_flips=200, max_tries=2, seed=9)
        traced = solve(formula, max_flips=200, max_tries=2, seed=9,
                       tracer=Tracer(ListSink(), progress_interval=0.0,
                                     checkpoint_interval=32))
        assert traced.status == plain.status
        assert traced.stats.flips == plain.stats.flips
        assert traced.stats.tries == plain.stats.tries
