"""Unit tests for repro.circuits.strash (structural hashing)."""

import pytest

from repro.apps.equivalence import check_equivalence, mutate_circuit
from repro.circuits.gates import GateType
from repro.circuits.generators import (
    array_multiplier,
    binary_counter,
    ripple_carry_adder,
)
from repro.circuits.library import c17
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import exhaustive_truth_table
from repro.circuits.strash import merged_gate_count, structural_hash
from repro.circuits.tseitin import build_miter


class TestMerging:
    def test_duplicate_gate_merged(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g1", GateType.AND, ["a", "b"])
        circuit.add_gate("g2", GateType.AND, ["a", "b"])   # duplicate
        circuit.add_gate("y", GateType.OR, ["g1", "g2"])
        circuit.set_output("y")
        hashed = structural_hash(circuit)
        assert hashed.num_gates() < circuit.num_gates()
        assert exhaustive_truth_table(hashed) == \
            exhaustive_truth_table(circuit)

    def test_commutative_normalization(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g1", GateType.AND, ["a", "b"])
        circuit.add_gate("g2", GateType.AND, ["b", "a"])   # swapped
        circuit.add_gate("y", GateType.XOR, ["g1", "g2"])
        circuit.set_output("y")
        hashed = structural_hash(circuit)
        # g1 == g2, so y = XOR(g1, g1): one AND survives.
        assert sum(1 for n in hashed
                   if n.gate_type is GateType.AND) == 1

    def test_buffers_spliced(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("buf", GateType.BUFFER, ["a"])
        circuit.add_gate("y", GateType.NOT, ["buf"])
        circuit.set_output("y")
        hashed = structural_hash(circuit)
        assert "buf" not in hashed
        assert hashed.node("y").fanins == ("a",)

    def test_output_names_preserved(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g1", GateType.NOT, ["a"])
        circuit.add_gate("g2", GateType.NOT, ["a"])   # dup, an output
        circuit.set_output("g1")
        circuit.set_output("g2")
        hashed = structural_hash(circuit)
        assert hashed.outputs == ["g1", "g2"]
        table = exhaustive_truth_table(hashed)
        assert table[(True,)] == (False, False)

    def test_constants_merged(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_const("z1", False)
        circuit.add_const("z2", False)
        circuit.add_gate("y", GateType.OR, ["a", "z1", "z2"])
        circuit.set_output("y")
        hashed = structural_hash(circuit)
        consts = [n for n in hashed
                  if n.gate_type is GateType.CONST0]
        assert len(consts) == 1

    def test_dffs_not_merged(self):
        circuit = binary_counter(2)
        hashed = structural_hash(circuit)
        assert hashed.dffs == circuit.dffs
        hashed.validate()

    def test_idempotent_on_clean_circuits(self):
        circuit = c17()
        assert merged_gate_count(circuit) == 0


class TestFunctionPreservation:
    @pytest.mark.parametrize("factory", [
        lambda: c17(),
        lambda: ripple_carry_adder(3),
        lambda: array_multiplier(2),
    ])
    def test_truth_table_unchanged(self, factory):
        circuit = factory()
        hashed = structural_hash(circuit)
        assert exhaustive_truth_table(hashed) == \
            exhaustive_truth_table(circuit)

    def test_identical_pair_miter_collapses(self):
        """The flagship effect: an identical-pair miter loses its
        duplicated halves entirely."""
        miter, _ = build_miter(c17(), c17())
        hashed = structural_hash(miter)
        # Both copies merge; only the XOR/OR comparison skeleton and
        # one circuit copy remain.
        assert hashed.num_gates() < miter.num_gates() * 0.7


class TestCECIntegration:
    def test_strash_cec_equivalent_pair(self):
        report = check_equivalence(ripple_carry_adder(3),
                                   ripple_carry_adder(3),
                                   simulation_vectors=0,
                                   use_strash=True)
        assert report.equivalent is True
        # Identical circuits: search should be almost free.
        assert report.stats.conflicts < 50

    def test_strash_cec_counterexample_still_valid(self):
        from repro.circuits.simulate import output_values, simulate
        circuit = c17()
        mutated = mutate_circuit(circuit, seed=2)
        report = check_equivalence(circuit, mutated,
                                   simulation_vectors=0,
                                   use_strash=True)
        if report.equivalent is False:
            vector = report.counterexample
            left = output_values(circuit, simulate(circuit, vector))
            right = output_values(mutated, simulate(mutated, vector))
            assert list(left.values()) != list(right.values())

    def test_strash_agrees_with_plain(self):
        for seed in range(3):
            circuit = c17()
            mutated = mutate_circuit(circuit, seed=seed)
            plain = check_equivalence(circuit, mutated,
                                      simulation_vectors=0)
            hashed = check_equivalence(circuit, mutated,
                                       simulation_vectors=0,
                                       use_strash=True)
            assert plain.equivalent == hashed.equivalent
