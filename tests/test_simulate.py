"""Unit tests for repro.circuits.simulate."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.generators import binary_counter, shift_register
from repro.circuits.library import c17, figure1_circuit, half_adder
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import (
    counts_agreeing,
    exhaustive_truth_table,
    next_state,
    output_values,
    random_vector,
    simulate,
    simulate3,
    simulate_sequence,
)


class TestCombinational:
    def test_half_adder_rows(self):
        circuit = half_adder()
        for a in (False, True):
            for b in (False, True):
                values = simulate(circuit, {"a": a, "b": b})
                assert values["sum"] == (a != b)
                assert values["carry"] == (a and b)

    def test_missing_input_raises(self):
        with pytest.raises(KeyError):
            simulate(half_adder(), {"a": True})

    def test_figure1_property_reachable(self):
        circuit = figure1_circuit()
        values = simulate(circuit, {"a": False, "b": True, "c": True})
        assert values["z"] is False

    def test_fault_injection(self):
        circuit = half_adder()
        values = simulate(circuit, {"a": True, "b": True},
                          faults={"carry": False})
        assert values["carry"] is False

    def test_fault_on_input(self):
        circuit = half_adder()
        values = simulate(circuit, {"a": True, "b": False},
                          faults={"a": False})
        assert values["sum"] is False


class TestThreeValued:
    def test_unknown_propagates(self):
        circuit = half_adder()
        values = simulate3(circuit, {"a": True})
        assert values["sum"] is None
        assert values["carry"] is None

    def test_controlling_value_decides(self):
        circuit = half_adder()
        values = simulate3(circuit, {"a": False})
        assert values["carry"] is False     # AND with a 0 input

    def test_matches_two_valued_when_total(self):
        circuit = c17()
        vector = {name: True for name in circuit.inputs}
        assert simulate3(circuit, vector) == \
            {k: v for k, v in simulate(circuit, vector).items()}


class TestSequential:
    def test_shift_register_delay(self):
        circuit = shift_register(3)
        vectors = [{"sin": bit} for bit in
                   (True, False, True, True, False, False)]
        frames = simulate_sequence(circuit, vectors)
        outputs = [frame["sout"] for frame in frames]
        # Output is the input delayed by 3 cycles (zeros before).
        assert outputs == [False, False, False, True, False, True]

    def test_counter_counts(self):
        circuit = binary_counter(3)
        frames = simulate_sequence(circuit,
                                   [{"en": True}] * 8)
        rollovers = [frame["rollover"] for frame in frames]
        assert rollovers == [False] * 7 + [True]

    def test_counter_holds_when_disabled(self):
        circuit = binary_counter(2)
        frames = simulate_sequence(circuit, [{"en": False}] * 4)
        assert all(not frame["rollover"] for frame in frames)

    def test_next_state(self):
        circuit = shift_register(2)
        values = simulate(circuit, {"sin": True},
                          state={"r0": False, "r1": False})
        state = next_state(circuit, values)
        assert state == {"r0": True, "r1": False}

    def test_missing_state_raises(self):
        with pytest.raises(KeyError):
            simulate(shift_register(1), {"sin": True})


class TestHelpers:
    def test_random_vector_deterministic(self):
        circuit = c17()
        assert random_vector(circuit, 42) == random_vector(circuit, 42)

    def test_output_values_projection(self):
        circuit = half_adder()
        values = simulate(circuit, {"a": True, "b": False})
        assert output_values(circuit, values) == \
            {"sum": True, "carry": False}

    def test_exhaustive_truth_table_size(self):
        table = exhaustive_truth_table(half_adder())
        assert len(table) == 4
        assert table[(True, True)] == (False, True)

    def test_exhaustive_refuses_wide(self):
        circuit = Circuit()
        for index in range(20):
            circuit.add_input(f"i{index}")
        circuit.add_gate("g", GateType.OR,
                         [f"i{k}" for k in range(20)])
        circuit.set_output("g")
        with pytest.raises(ValueError):
            exhaustive_truth_table(circuit, max_inputs=16)

    def test_counts_agreeing(self):
        left = half_adder()
        right = half_adder()
        vectors = [{"a": a, "b": b}
                   for a in (False, True) for b in (False, True)]
        assert counts_agreeing(left, right, vectors) == 4
