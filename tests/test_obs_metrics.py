"""Unit tests for repro.obs.metrics and its CDCL integration
(SolverStats.metrics, incremental deltas, merge paths)."""

import json

import pytest

from repro.cnf.generators import pigeonhole, random_ksat_at_ratio
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SearchMetrics,
    merge_snapshots,
)
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.incremental import IncrementalSolver
from repro.solvers.result import SolverStats


class TestPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_last_value_wins(self):
        gauge = Gauge()
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.snapshot() == {"type": "gauge", "value": 1.5}

    def test_histogram_bucketing(self):
        hist = Histogram(bounds=(1, 4, 16))
        for value in (0, 1, 2, 4, 5, 100):
            hist.observe(value)
        snap = hist.snapshot()
        # <=1: {0,1}; <=4: {2,4}; <=16: {5}; overflow: {100}
        assert snap["buckets"] == [2, 2, 1, 1]
        assert snap["count"] == 6
        assert snap["sum"] == 112.0
        assert snap["min"] == 0
        assert snap["max"] == 100

    def test_histogram_empty_snapshot(self):
        snap = Histogram(bounds=(1, 2)).snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    @pytest.mark.parametrize("bounds", [(), (2, 1), (1, 1, 2)])
    def test_histogram_rejects_bad_bounds(self, bounds):
        with pytest.raises(ValueError):
            Histogram(bounds=bounds)

    def test_snapshots_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(7)
        json.dumps(registry.snapshot())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert list(registry.snapshot()) == ["a", "b"]


class TestMergeSnapshots:
    def test_counters_sum_gauges_take_second(self):
        merged = merge_snapshots(
            {"c": {"type": "counter", "value": 2},
             "g": {"type": "gauge", "value": 1.0}},
            {"c": {"type": "counter", "value": 3},
             "g": {"type": "gauge", "value": 9.0}})
        assert merged["c"]["value"] == 5
        assert merged["g"]["value"] == 9.0

    def test_histograms_accumulate(self):
        a = Histogram(bounds=(1, 4))
        b = Histogram(bounds=(1, 4))
        a.observe(1)
        b.observe(100)
        merged = merge_snapshots({"h": a.snapshot()},
                                 {"h": b.snapshot()})["h"]
        assert merged["count"] == 2
        assert merged["buckets"] == [1, 0, 1]
        assert merged["min"] == 1 and merged["max"] == 100

    def test_incompatible_bounds_keep_moments_drop_shape(self):
        a = Histogram(bounds=(1, 4))
        b = Histogram(bounds=(2, 8))
        a.observe(3)
        b.observe(5)
        merged = merge_snapshots({"h": a.snapshot()},
                                 {"h": b.snapshot()})["h"]
        assert merged["count"] == 2
        assert merged["sum"] == 8.0
        assert "buckets" not in merged and "bounds" not in merged

    def test_one_sided_metrics_pass_through(self):
        merged = merge_snapshots({"only_mine": {"type": "counter",
                                                "value": 1}},
                                 {"only_theirs": {"type": "counter",
                                                  "value": 2}})
        assert merged["only_mine"]["value"] == 1
        assert merged["only_theirs"]["value"] == 2

    def test_inputs_not_mutated(self):
        mine = {"c": {"type": "counter", "value": 1}}
        theirs = {"c": {"type": "counter", "value": 2}}
        merge_snapshots(mine, theirs)
        assert mine["c"]["value"] == 1
        assert theirs["c"]["value"] == 2


class TestCDCLIntegration:
    def solve_with_metrics(self, formula):
        solver = CDCLSolver(formula)
        solver.metrics = SearchMetrics()
        return solver.solve()

    def test_stats_metrics_populated(self):
        result = self.solve_with_metrics(pigeonhole(4))
        assert result.is_unsat
        metrics = result.stats.metrics
        assert set(metrics) == {"propagation_burst", "backjump_distance",
                                "learned_clause_size",
                                "learned_clause_lbd"}
        json.dumps(metrics)

    def test_conflict_histograms_match_counters(self):
        result = self.solve_with_metrics(pigeonhole(4))
        metrics = result.stats.metrics
        conflicts = result.stats.conflicts
        # The terminal level-0 conflict ends the search without being
        # analyzed, so the histograms may see one fewer observation
        # than the conflict counter.
        for name in ("backjump_distance", "learned_clause_size",
                     "learned_clause_lbd"):
            assert conflicts - 1 <= metrics[name]["count"] <= conflicts
        # LBD counts distinct decision levels, never more than the
        # clause has literals.
        assert metrics["learned_clause_lbd"]["max"] <= \
            metrics["learned_clause_size"]["max"]

    def test_burst_sum_close_to_propagations(self):
        result = self.solve_with_metrics(
            random_ksat_at_ratio(30, ratio=4.2, seed=4))
        burst = result.stats.metrics["propagation_burst"]
        assert burst["sum"] == result.stats.propagations

    def test_no_metrics_attached_leaves_stats_none(self):
        result = CDCLSolver(pigeonhole(3)).solve()
        assert result.stats.metrics is None

    def test_search_result_unchanged_by_metrics(self):
        formula = random_ksat_at_ratio(40, ratio=4.2, seed=7)
        plain = CDCLSolver(formula).solve()
        metered = self.solve_with_metrics(formula)
        assert metered.status == plain.status
        assert metered.stats.conflicts == plain.stats.conflicts
        assert metered.stats.decisions == plain.stats.decisions


class TestStatsMergePaths:
    def test_solver_stats_merge_combines_metrics(self):
        a = SolverStats(conflicts=1)
        a.metrics = {"c": {"type": "counter", "value": 2}}
        b = SolverStats(conflicts=2)
        b.metrics = {"c": {"type": "counter", "value": 3}}
        a.merge(b)
        assert a.conflicts == 3
        assert a.metrics["c"]["value"] == 5

    def test_merge_adopts_metrics_when_mine_missing(self):
        a = SolverStats()
        b = SolverStats()
        b.metrics = {"c": {"type": "counter", "value": 3}}
        a.merge(b)
        assert a.metrics["c"]["value"] == 3

    def test_incremental_delta_keeps_metrics(self):
        solver = IncrementalSolver()
        x, y = solver.new_var(), solver.new_var()
        solver.add_clause([x, y])
        solver.add_clause([-x, y])
        solver.metrics = SearchMetrics()
        result = solver.solve()
        assert result.is_sat
        assert result.stats.metrics is not None
