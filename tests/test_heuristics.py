"""Unit tests for repro.solvers.heuristics."""

import pytest

from repro.cnf.formula import CNFFormula
from repro.solvers.heuristics import (
    DLISHeuristic,
    DecisionHeuristic,
    FixedOrderHeuristic,
    JeroslowWangHeuristic,
    RandomHeuristic,
    VSIDSHeuristic,
    make_heuristic,
)


def formula_ab():
    formula = CNFFormula(4)
    formula.add_clause([1, 2])
    formula.add_clause([1, 3])
    formula.add_clause([1])        # literal 1 dominates
    formula.add_clause([-4, 2])
    return formula


def assigned_none(var):
    return False


class TestFixedOrder:
    def test_lowest_index_first(self):
        heuristic = FixedOrderHeuristic()
        assert heuristic.decide(4, assigned_none) == 1

    def test_skips_assigned(self):
        heuristic = FixedOrderHeuristic()
        assert heuristic.decide(4, lambda v: v <= 2) == 3

    def test_none_when_all_assigned(self):
        heuristic = FixedOrderHeuristic()
        assert heuristic.decide(3, lambda v: True) is None


class TestRandom:
    def test_only_unassigned(self):
        heuristic = RandomHeuristic(seed=0)
        for _ in range(20):
            lit = heuristic.decide(5, lambda v: v != 3)
            assert abs(lit) == 3

    def test_deterministic_with_seed(self):
        first = [RandomHeuristic(seed=9).decide(10, assigned_none)
                 for _ in range(1)]
        second = [RandomHeuristic(seed=9).decide(10, assigned_none)
                  for _ in range(1)]
        assert first == second

    def test_none_when_exhausted(self):
        assert RandomHeuristic(seed=0).decide(2, lambda v: True) is None


class TestJeroslowWang:
    def test_prefers_short_clause_literals(self):
        formula = CNFFormula(3)
        formula.add_clause([1])          # weight 0.5
        formula.add_clause([2, 3])       # weight 0.25 each
        heuristic = JeroslowWangHeuristic()
        heuristic.setup(formula)
        assert heuristic.decide(3, assigned_none) == 1

    def test_falls_back_on_unmentioned_vars(self):
        formula = CNFFormula(5)
        formula.add_clause([1])
        heuristic = JeroslowWangHeuristic()
        heuristic.setup(formula)
        assert heuristic.decide(5, lambda v: v == 1) in (2, 3, 4, 5)


class TestDLIS:
    def test_prefers_most_frequent_literal(self):
        heuristic = DLISHeuristic()
        heuristic.setup(formula_ab())
        assert heuristic.decide(4, assigned_none) == 1

    def test_skips_assigned_variables(self):
        heuristic = DLISHeuristic()
        heuristic.setup(formula_ab())
        lit = heuristic.decide(4, lambda v: v == 1)
        assert abs(lit) != 1


class TestVSIDS:
    def test_bump_changes_preference(self):
        formula = formula_ab()
        heuristic = VSIDSHeuristic()
        heuristic.setup(formula)
        heuristic.on_conflict([4])
        heuristic.on_conflict([4])
        assert heuristic.decide(4, assigned_none) == 4

    def test_decay_rescale_survives_many_conflicts(self):
        heuristic = VSIDSHeuristic(decay=0.5)
        heuristic.setup(formula_ab())
        for _ in range(2000):
            heuristic.on_conflict([2])
        assert heuristic.decide(4, assigned_none) == 2

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            VSIDSHeuristic(decay=0.0)


class TestRandomFreq:
    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            FixedOrderHeuristic(random_freq=1.5)

    def test_full_random_freq_behaves_like_random(self):
        heuristic = FixedOrderHeuristic(random_freq=1.0, seed=1)
        picks = {heuristic.decide(5, assigned_none) for _ in range(40)}
        assert len({abs(p) for p in picks}) > 1


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("fixed", FixedOrderHeuristic),
        ("random", RandomHeuristic),
        ("jw", JeroslowWangHeuristic),
        ("dlis", DLISHeuristic),
        ("vsids", VSIDSHeuristic),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_heuristic(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_heuristic("cleverest")

    def test_name_labels(self):
        assert VSIDSHeuristic().name() == "VSIDS"
        assert FixedOrderHeuristic().name() == "FixedOrder"

    def test_base_class_decide_abstract(self):
        with pytest.raises(NotImplementedError):
            DecisionHeuristic().decide(1, assigned_none)
