"""Unit tests for repro.obs.profile: trace aggregation and the
rendered effort report."""

from repro.cnf.generators import pigeonhole
from repro.obs import (
    JsonlSink,
    Tracer,
    build_report,
    profile_trace,
    render_report,
)
from repro.obs.profile import read_trace
from repro.solvers.cdcl import CDCLSolver


def synthetic_events():
    return [
        {"ts": 0.0, "kind": "span_begin", "name": "cdcl.solve",
         "span": 0, "parent": None, "attrs": {}},
        {"ts": 0.1, "kind": "progress", "name": "cdcl", "span": 0,
         "attrs": {"decisions": 10, "conflicts": 2,
                   "decision_level": 5}},
        {"ts": 0.3, "kind": "progress", "name": "cdcl", "span": 0,
         "attrs": {"decisions": 30, "conflicts": 4,
                   "decision_level": 9}},
        {"ts": 0.35, "kind": "event", "name": "cdcl.restart",
         "span": 0, "attrs": {"restarts": 1}},
        {"ts": 0.4, "kind": "span_end", "name": "cdcl.solve",
         "span": 0, "attrs": {"duration": 0.4}},
    ]


class TestBuildReport:
    def test_span_aggregation(self):
        report = build_report(synthetic_events(), [])
        agg = report["spans"]["cdcl.solve"]
        assert agg["count"] == 1
        assert agg["total"] == 0.4
        assert agg["max"] == 0.4
        assert report["wall"] == 0.4

    def test_progress_totals_rates_and_peaks(self):
        report = build_report(synthetic_events(), [])
        agg = report["progress"]["cdcl"]
        assert agg["samples"] == 2
        assert agg["totals"] == {"decisions": 40, "conflicts": 6}
        assert abs(agg["window"] - 0.2) < 1e-9
        assert abs(agg["rates"]["decisions"] - 200.0) < 1e-6
        assert agg["peaks"] == {"decision_level": 9}

    def test_event_counts(self):
        report = build_report(synthetic_events(), [])
        assert report["events"] == {"cdcl.restart": 1}

    def test_single_sample_has_no_rates(self):
        events = synthetic_events()[:2]
        agg = build_report(events, [])["progress"]["cdcl"]
        assert agg["window"] == 0.0
        assert agg["rates"] == {}

    def test_problems_carried_through(self):
        report = build_report([], ["line 3: bad"])
        assert report["problems"] == ["line 3: bad"]


class TestRenderReport:
    def test_sections_present(self):
        text = render_report(build_report(synthetic_events(), []))
        assert "spans (where the time went):" in text
        assert "cdcl.solve" in text
        assert "effort (from progress snapshots):" in text
        assert "decisions" in text
        assert "peak decision_level" in text
        assert "cdcl.restart: 1" in text

    def test_problem_section_rendered(self):
        text = render_report(build_report([], ["line 1: oops"]))
        assert "schema problems:" in text
        assert "line 1: oops" in text

    def test_problem_list_truncated(self):
        problems = [f"line {n}: bad" for n in range(1, 31)]
        text = render_report(build_report([], problems))
        assert "... and 10 more" in text


class TestFileRoundTrip:
    def record(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        solver = CDCLSolver(pigeonhole(4))
        solver.tracer = Tracer(JsonlSink(path), progress_interval=0.0,
                               checkpoint_interval=64)
        result = solver.solve()
        solver.tracer.close()
        return path, result

    def test_read_trace_clean(self, tmp_path):
        path, _ = self.record(tmp_path)
        events, problems = read_trace(path)
        assert problems == []
        assert events

    def test_profile_trace_renders(self, tmp_path):
        path, result = self.record(tmp_path)
        text, problems = profile_trace(path)
        assert problems == []
        assert "cdcl.solve" in text
        assert "events over" in text

    def test_profile_trace_reports_schema_problems(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"ts": -1, "kind": "event", "name": "x", '
                         '"span": null, "attrs": {}}\n')
        text, problems = profile_trace(path)
        assert problems
        assert "schema problem" in text
