"""Unit tests for repro.obs.profile: trace aggregation, the rendered
effort report, multi-trace merging, and per-job server/worker
timeline correlation."""

import json

from repro.cnf.generators import pigeonhole
from repro.obs import (
    JsonlSink,
    Tracer,
    build_job_timelines,
    build_report,
    profile_trace,
    profile_traces,
    read_traces,
    render_report,
)
from repro.obs.profile import read_trace
from repro.solvers.cdcl import CDCLSolver


def synthetic_events():
    return [
        {"ts": 0.0, "kind": "span_begin", "name": "cdcl.solve",
         "span": 0, "parent": None, "attrs": {}},
        {"ts": 0.1, "kind": "progress", "name": "cdcl", "span": 0,
         "attrs": {"decisions": 10, "conflicts": 2,
                   "decision_level": 5}},
        {"ts": 0.3, "kind": "progress", "name": "cdcl", "span": 0,
         "attrs": {"decisions": 30, "conflicts": 4,
                   "decision_level": 9}},
        {"ts": 0.35, "kind": "event", "name": "cdcl.restart",
         "span": 0, "attrs": {"restarts": 1}},
        {"ts": 0.4, "kind": "span_end", "name": "cdcl.solve",
         "span": 0, "attrs": {"duration": 0.4}},
    ]


class TestBuildReport:
    def test_span_aggregation(self):
        report = build_report(synthetic_events(), [])
        agg = report["spans"]["cdcl.solve"]
        assert agg["count"] == 1
        assert agg["total"] == 0.4
        assert agg["max"] == 0.4
        assert report["wall"] == 0.4

    def test_progress_totals_rates_and_peaks(self):
        report = build_report(synthetic_events(), [])
        agg = report["progress"]["cdcl"]
        assert agg["samples"] == 2
        assert agg["totals"] == {"decisions": 40, "conflicts": 6}
        assert abs(agg["window"] - 0.2) < 1e-9
        assert abs(agg["rates"]["decisions"] - 200.0) < 1e-6
        assert agg["peaks"] == {"decision_level": 9}

    def test_event_counts(self):
        report = build_report(synthetic_events(), [])
        assert report["events"] == {"cdcl.restart": 1}

    def test_single_sample_has_no_rates(self):
        events = synthetic_events()[:2]
        agg = build_report(events, [])["progress"]["cdcl"]
        assert agg["window"] == 0.0
        assert agg["rates"] == {}

    def test_problems_carried_through(self):
        report = build_report([], ["line 3: bad"])
        assert report["problems"] == ["line 3: bad"]


class TestRenderReport:
    def test_sections_present(self):
        text = render_report(build_report(synthetic_events(), []))
        assert "spans (where the time went):" in text
        assert "cdcl.solve" in text
        assert "effort (from progress snapshots):" in text
        assert "decisions" in text
        assert "peak decision_level" in text
        assert "cdcl.restart: 1" in text

    def test_problem_section_rendered(self):
        text = render_report(build_report([], ["line 1: oops"]))
        assert "schema problems:" in text
        assert "line 1: oops" in text

    def test_problem_list_truncated(self):
        problems = [f"line {n}: bad" for n in range(1, 31)]
        text = render_report(build_report([], problems))
        assert "... and 10 more" in text


class TestFileRoundTrip:
    def record(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        solver = CDCLSolver(pigeonhole(4))
        solver.tracer = Tracer(JsonlSink(path), progress_interval=0.0,
                               checkpoint_interval=64)
        result = solver.solve()
        solver.tracer.close()
        return path, result

    def test_read_trace_clean(self, tmp_path):
        path, _ = self.record(tmp_path)
        events, problems = read_trace(path)
        assert problems == []
        assert events

    def test_profile_trace_renders(self, tmp_path):
        path, result = self.record(tmp_path)
        text, problems = profile_trace(path)
        assert problems == []
        assert "cdcl.solve" in text
        assert "events over" in text

    def test_profile_trace_reports_schema_problems(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"ts": -1, "kind": "event", "name": "x", '
                         '"span": null, "attrs": {}}\n')
        text, problems = profile_trace(path)
        assert problems
        assert "schema problem" in text


# ----------------------------------------------------------------------
# Multi-trace merging and job timelines (server/worker correlation)
# ----------------------------------------------------------------------

def _write_trace(path, events):
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
    return str(path)


def _meta(ts, epoch, **context):
    return {"ts": ts, "kind": "event", "name": "trace.meta",
            "span": None, "attrs": {"epoch_unix": epoch, **context}}


def _server_trace(tmp_path):
    job = {"job": "j", "tenant": "acme"}
    return _write_trace(tmp_path / "server.jsonl", [
        _meta(0.0, 1000.0),
        {"ts": 0.1, "kind": "event", "name": "service.submit",
         "span": None, "attrs": {**job, "vars": 10, "clauses": 30}},
        {"ts": 0.2, "kind": "event", "name": "service.dispatch",
         "span": None, "attrs": {**job, "queued_seconds": 0.1}},
        {"ts": 0.7, "kind": "event", "name": "service.progress",
         "span": None, "attrs": {**job, "attempt": 1, "seq": 0,
                                 "elapsed": 0.5, "conflicts": 10,
                                 "propagations": 100}},
        {"ts": 1.0, "kind": "event", "name": "service.retry",
         "span": None, "attrs": {"job": "j", "attempt": 1,
                                 "failure": "crash",
                                 "backoff_seconds": 0.01}},
        {"ts": 2.2, "kind": "event", "name": "service.result",
         "span": None, "attrs": {**job, "status": "SATISFIABLE",
                                 "attempts": 2, "cached": 0,
                                 "degraded": 0, "wall_seconds": 2.0}},
    ])


def _worker_trace(tmp_path, name, epoch, attempt, duration, status,
                  conflicts):
    context = {"job": "j", "attempt": attempt}
    return _write_trace(tmp_path / name, [
        _meta(0.0, epoch, **context),
        {"ts": 0.0, "kind": "span_begin", "name": "cdcl.solve",
         "span": 0, "parent": None, "attrs": dict(context)},
        {"ts": duration, "kind": "span_end", "name": "cdcl.solve",
         "span": 0, "attrs": {**context, "duration": duration,
                              "status": status,
                              "conflicts": conflicts}},
    ])


def _correlated_traces(tmp_path):
    return [
        _server_trace(tmp_path),
        _worker_trace(tmp_path, "j-a0.jsonl", 1000.2, 1, 0.7,
                      "UNKNOWN", 12),
        _worker_trace(tmp_path, "j-a1.jsonl", 1001.1, 2, 1.0,
                      "SATISFIABLE", 30),
    ]


class TestReadTraces:
    def test_single_file_annotates_source_without_rebasing(
            self, tmp_path):
        events, problems = read_traces([_server_trace(tmp_path)])
        assert problems == []
        assert all(e["attrs"]["source"] == "server.jsonl"
                   for e in events)
        assert events[1]["ts"] == 0.1     # untouched

    def test_epochs_rebase_onto_one_axis(self, tmp_path):
        events, problems = read_traces(_correlated_traces(tmp_path))
        assert problems == []
        # Worker 2's span_end: ts 1.0 + (1001.1 - 1000.0) = 2.1.
        ends = [e for e in events if e["kind"] == "span_end"]
        by_source = {e["attrs"]["source"]: e for e in ends}
        assert abs(by_source["j-a0.jsonl"]["ts"] - 0.9) < 1e-6
        assert abs(by_source["j-a1.jsonl"]["ts"] - 2.1) < 1e-6
        # Merged stream is sorted by rebased ts.
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_missing_meta_noted_not_fatal(self, tmp_path):
        bare = _write_trace(tmp_path / "bare.jsonl", [
            {"ts": 0.5, "kind": "event", "name": "tick",
             "span": None, "attrs": {}}])
        events, problems = read_traces(
            [_server_trace(tmp_path), bare])
        assert any("no trace.meta" in p for p in problems)
        assert any(e["attrs"]["source"] == "bare.jsonl"
                   for e in events)


class TestJobTimelines:
    def timeline(self, tmp_path):
        events, problems = read_traces(_correlated_traces(tmp_path))
        assert problems == []
        return build_job_timelines(events)["j"]

    def test_lifecycle_fields(self, tmp_path):
        entry = self.timeline(tmp_path)
        assert entry["tenant"] == "acme"
        assert abs(entry["submitted_ts"] - 0.1) < 1e-6
        assert entry["queued_seconds"] == 0.1
        assert entry["progress_frames"] == 1
        assert entry["last_progress"]["conflicts"] == 10
        assert entry["result"]["status"] == "SATISFIABLE"
        assert entry["result"]["attempts"] == 2

    def test_worker_attempts_attributed_by_context(self, tmp_path):
        entry = self.timeline(tmp_path)
        assert [a["attempt"] for a in entry["attempts"]] == [1, 2]
        first, second = entry["attempts"]
        assert first["source"] == "j-a0.jsonl"
        assert first["status"] == "UNKNOWN"
        assert second["source"] == "j-a1.jsonl"
        assert second["conflicts"] == 30

    def test_retries_recorded(self, tmp_path):
        entry = self.timeline(tmp_path)
        assert entry["retries"] == [{"attempt": 1,
                                     "failure": "crash",
                                     "backoff_seconds": 0.01}]

    def test_rejected_job_timeline(self):
        events = [{"ts": 0.1, "kind": "event",
                   "name": "service.reject", "span": None,
                   "attrs": {"job": "shed", "tenant": "t",
                             "code": "REJECTED_OVERLOAD",
                             "reason": "queue full"}}]
        entry = build_job_timelines(events)["shed"]
        assert entry["rejected"]["code"] == "REJECTED_OVERLOAD"

    def test_events_without_job_attr_ignored(self):
        events = [{"ts": 0.1, "kind": "event", "name": "tick",
                   "span": None, "attrs": {"n": 1}}]
        assert build_job_timelines(events) == {}


class TestCorrelatedRender:
    def test_timeline_section_tells_one_story(self, tmp_path):
        text, problems = profile_traces(_correlated_traces(tmp_path))
        assert problems == []
        assert "job timelines (server/worker correlated):" in text
        assert "j [acme]: submitted" in text
        assert "queued 0.100s -> dispatched" in text
        assert "attempt 1: solve 0.700s -> UNKNOWN" in text
        assert "[j-a0.jsonl]" in text
        assert "retry after crash" in text
        assert "attempt 2: solve 1.000s -> SATISFIABLE" in text
        assert "1 progress frame(s) streamed" in text
        assert "result SATISFIABLE" in text
        # The retry renders between the failed attempt and the next.
        assert text.index("retry after crash") \
            < text.index("attempt 2:")

    def test_profile_trace_single_path_unchanged(self, tmp_path):
        text, problems = profile_trace(_server_trace(tmp_path))
        assert problems == []
        assert "service (solve jobs):" in text
