"""Unit tests for repro.circuits.library (the paper's examples)."""

from repro.circuits.library import (
    c17,
    figure1_circuit,
    figure3_circuit,
    half_adder,
    majority3,
    redundant_or_chain,
    two_level_example,
)
from repro.circuits.simulate import exhaustive_truth_table, simulate


class TestFigure1:
    def test_structure(self):
        circuit = figure1_circuit()
        circuit.validate()
        assert circuit.inputs == ["a", "b", "c"]
        assert circuit.outputs == ["z"]

    def test_z_equals_w1_and_w2(self):
        circuit = figure1_circuit()
        for key, outputs in exhaustive_truth_table(circuit).items():
            a, b, c = key
            w1 = a and b
            w2 = (not w1) or c
            assert outputs == (w1 and w2,)

    def test_property_z0_satisfiable(self):
        values = simulate(figure1_circuit(),
                          {"a": False, "b": False, "c": False})
        assert values["z"] is False

    def test_property_z1_satisfiable(self):
        values = simulate(figure1_circuit(),
                          {"a": True, "b": True, "c": True})
        assert values["z"] is True


class TestFigure3:
    def test_y3_is_and_of_inputs(self):
        """The reconstruction makes y3 == AND(x1, w), so the paper's
        assignments {x1=1, w=1, y3=0} are exactly inconsistent."""
        circuit = figure3_circuit()
        for key, outputs in exhaustive_truth_table(circuit).items():
            x1, w = key
            assert outputs == (x1 and w,)

    def test_paper_conflict_scenario(self):
        values = simulate(figure3_circuit(), {"x1": True, "w": True})
        assert values["y1"] is False
        assert values["y2"] is False
        assert values["y3"] is True      # inconsistent with objective 0


class TestC17:
    def test_structure(self):
        circuit = c17()
        circuit.validate()
        assert len(circuit.inputs) == 5
        assert circuit.num_gates() == 6
        assert all(node.gate_type.value == "NAND"
                   for node in circuit if node.is_gate)

    def test_known_vector(self):
        # All-ones input: G10=NAND(1,1)=0, G11=0, G16=NAND(1,0)=1,
        # G19=NAND(0,1)=1, G22=NAND(0,1)=1, G23=NAND(1,1)=0.
        values = simulate(c17(), {name: True for name in c17().inputs})
        assert values["G22"] is True
        assert values["G23"] is False


class TestSmallClassics:
    def test_half_adder(self):
        table = exhaustive_truth_table(half_adder())
        assert table[(True, False)] == (True, False)
        assert table[(True, True)] == (False, True)

    def test_majority3(self):
        table = exhaustive_truth_table(majority3())
        for key, outputs in table.items():
            assert outputs == (sum(key) >= 2,)

    def test_redundant_or_chain_is_identity_on_a(self):
        table = exhaustive_truth_table(redundant_or_chain())
        for (a, b), outputs in table.items():
            assert outputs == (a,)

    def test_two_level_example(self):
        table = exhaustive_truth_table(two_level_example())
        for (a, b, c), outputs in table.items():
            assert outputs == ((a and b) or ((not a) and c),)
