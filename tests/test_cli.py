"""Unit tests for repro.cli."""

import pytest

from repro.circuits.bench_format import save_bench
from repro.circuits.generators import binary_counter, ripple_carry_adder
from repro.circuits.library import c17
from repro.cli import main
from repro.cnf.dimacs import save_dimacs
from repro.cnf.generators import pigeonhole, random_ksat_at_ratio


@pytest.fixture
def c17_path(tmp_path):
    path = str(tmp_path / "c17.bench")
    save_bench(c17(), path)
    return path


class TestSolve:
    def test_sat_exit_code_and_model(self, tmp_path, capsys):
        formula = random_ksat_at_ratio(10, ratio=3.0, seed=0)
        path = str(tmp_path / "sat.cnf")
        save_dimacs(formula, path)
        code = main(["solve", path])
        out = capsys.readouterr().out
        assert code == 10
        assert "s SATISFIABLE" in out
        assert out.splitlines()[-1].startswith("v ")

    def test_unsat_exit_code(self, tmp_path, capsys):
        path = str(tmp_path / "unsat.cnf")
        save_dimacs(pigeonhole(3), path)
        assert main(["solve", path]) == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_unknown_on_budget(self, tmp_path, capsys):
        path = str(tmp_path / "hard.cnf")
        save_dimacs(pigeonhole(6), path)
        assert main(["solve", path, "--max-conflicts", "2"]) == 0
        assert "s UNKNOWN" in capsys.readouterr().out

    def test_preprocess_flag(self, tmp_path, capsys):
        from repro.cnf.generators import parity_chain
        path = str(tmp_path / "parity.cnf")
        save_dimacs(parity_chain(8), path)
        assert main(["solve", path, "--preprocess"]) == 20

    def test_model_satisfies_after_preprocess(self, tmp_path, capsys):
        from repro.cnf.dimacs import load_dimacs
        formula = random_ksat_at_ratio(12, ratio=3.0, seed=1)
        path = str(tmp_path / "sat2.cnf")
        save_dimacs(formula, path)
        assert main(["solve", path, "--preprocess"]) == 10
        out = capsys.readouterr().out
        literals = [int(tok) for tok in
                    out.splitlines()[-1].split()[1:-1]]
        model = {abs(lit): lit > 0 for lit in literals}
        for var in formula.variables():
            model.setdefault(var, False)
        assert formula.evaluate(model) is True


class TestATPG:
    def test_report(self, c17_path, capsys):
        assert main(["atpg", c17_path]) == 0
        out = capsys.readouterr().out
        assert "efficiency: 100.00%" in out

    def test_vectors_printed(self, c17_path, capsys):
        main(["atpg", c17_path, "--vectors", "--collapse"])
        out = capsys.readouterr().out
        bitstrings = [line for line in out.splitlines()
                      if set(line) <= {"0", "1"} and len(line) == 5]
        assert bitstrings


class TestCEC:
    def test_equivalent(self, tmp_path, capsys):
        left = str(tmp_path / "a.bench")
        right = str(tmp_path / "b.bench")
        save_bench(ripple_carry_adder(2), left)
        from repro.circuits.generators import carry_select_adder
        save_bench(carry_select_adder(2), right)
        assert main(["cec", left, right]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_not_equivalent(self, tmp_path, capsys):
        from repro.apps.equivalence import mutate_circuit
        left = str(tmp_path / "a.bench")
        right = str(tmp_path / "b.bench")
        save_bench(c17(), left)
        save_bench(mutate_circuit(c17(), seed=1), right)
        code = main(["cec", left, right])
        out = capsys.readouterr().out
        if "NOT EQUIVALENT" in out:
            assert code == 1
            assert "counterexample:" in out
        else:
            assert code == 0      # benign mutation


class TestBMC:
    def test_counterexample(self, tmp_path, capsys):
        path = str(tmp_path / "cnt.bench")
        save_bench(binary_counter(2), path)
        code = main(["bmc", path, "--output", "rollover",
                     "--depth", "5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "counterexample at depth 3" in out
        assert "cycle 0:" in out

    def test_property_holds(self, tmp_path, capsys):
        path = str(tmp_path / "cnt.bench")
        save_bench(binary_counter(3), path)
        assert main(["bmc", path, "--output", "rollover",
                     "--depth", "4"]) == 0
        assert "property holds" in capsys.readouterr().out


class TestDelayAndInfo:
    def test_delay(self, c17_path, capsys):
        assert main(["delay", c17_path]) == 0
        out = capsys.readouterr().out
        assert "topological delay:  3" in out
        assert "sensitizable delay: 3" in out

    def test_info(self, c17_path, capsys):
        assert main(["info", c17_path]) == 0
        out = capsys.readouterr().out
        assert "gates: 6" in out
        assert "inputs: 5" in out

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestOptimize:
    def test_redundant_circuit_shrinks(self, tmp_path, capsys):
        from repro.circuits.library import redundant_or_chain
        source = str(tmp_path / "r.bench")
        target = str(tmp_path / "opt.bench")
        save_bench(redundant_or_chain(), source)
        code = main(["optimize", source, "--output", target])
        out = capsys.readouterr().out
        assert code == 0
        assert "gates: 2 -> 1" in out
        assert "equivalence certified: True" in out
        from repro.circuits.bench_format import load_bench
        from repro.circuits.simulate import exhaustive_truth_table
        optimized = load_bench(target)
        for (a, b), outputs in \
                exhaustive_truth_table(optimized).items():
            assert outputs == (a,)

    def test_clean_circuit_unchanged(self, c17_path, capsys):
        code = main(["optimize", c17_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "gates: 6 -> 6" in out

    def test_no_redundancy_flag(self, c17_path, capsys):
        code = main(["optimize", c17_path, "--no-redundancy"])
        assert code == 0
        assert "redundant faults removed: 0" in \
            capsys.readouterr().out

    def test_sequential_circuit_supported(self, tmp_path, capsys):
        from repro.circuits.generators import binary_counter
        source = str(tmp_path / "cnt.bench")
        save_bench(binary_counter(2), source)
        code = main(["optimize", source])
        assert code == 0

    def test_cec_strash_flag(self, tmp_path, capsys):
        left = str(tmp_path / "l.bench")
        right = str(tmp_path / "r.bench")
        save_bench(c17(), left)
        save_bench(c17(), right)
        assert main(["cec", left, right, "--strash"]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out


class TestObservability:
    def sat_path(self, tmp_path):
        formula = random_ksat_at_ratio(12, ratio=3.0, seed=0)
        path = str(tmp_path / "sat.cnf")
        save_dimacs(formula, path)
        return path

    def test_solve_trace_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import validate_trace_file
        trace = str(tmp_path / "trace.jsonl")
        code = main(["solve", self.sat_path(tmp_path),
                     "--trace", trace])
        capsys.readouterr()
        assert code == 10
        count, problems = validate_trace_file(trace)
        assert count >= 2
        assert problems == []

    def test_solve_stats_json(self, tmp_path, capsys):
        import json
        code = main(["solve", self.sat_path(tmp_path), "--stats-json"])
        assert code == 10
        out = capsys.readouterr().out
        stats = json.loads(out.splitlines()[-1])
        assert stats["decisions"] >= 0
        assert "metrics" in stats
        assert stats["metrics"]["propagation_burst"]["count"] > 0

    def test_profile_renders_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        main(["solve", self.sat_path(tmp_path), "--trace", trace])
        capsys.readouterr()
        assert main(["profile", trace]) == 0
        out = capsys.readouterr().out
        assert "cdcl.solve" in out

    def test_profile_flags_schema_problems(self, tmp_path, capsys):
        bad = str(tmp_path / "bad.jsonl")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
        assert main(["profile", bad]) == 1
        assert "schema problem" in capsys.readouterr().out

    def test_bmc_trace(self, tmp_path, capsys):
        from repro.obs import validate_trace_file
        source = str(tmp_path / "cnt.bench")
        save_bench(binary_counter(2), source)
        trace = str(tmp_path / "bmc.jsonl")
        main(["bmc", source, "--depth", "4", "--trace", trace])
        capsys.readouterr()
        count, problems = validate_trace_file(trace)
        assert problems == []
        assert count >= 2

    def test_atpg_trace(self, c17_path, tmp_path, capsys):
        from repro.obs import validate_trace_file
        trace = str(tmp_path / "atpg.jsonl")
        assert main(["atpg", c17_path, "--trace", trace]) == 0
        capsys.readouterr()
        count, problems = validate_trace_file(trace)
        assert problems == []
        assert count >= 2


class TestCertification:
    def test_solve_certify_unsat(self, tmp_path, capsys):
        path = str(tmp_path / "unsat.cnf")
        save_dimacs(pigeonhole(4), path)
        code = main(["solve", path, "--certify",
                     "--proof-dir", str(tmp_path / "proofs")])
        out = capsys.readouterr().out
        assert code == 20
        assert "c certificate: proof verified" in out
        assert "s UNSATISFIABLE" in out
        import os
        assert os.path.exists(str(tmp_path / "proofs" / "unsat.drup"))

    def test_solve_certify_sat_audits_model(self, tmp_path, capsys):
        formula = random_ksat_at_ratio(10, ratio=3.0, seed=0)
        path = str(tmp_path / "sat.cnf")
        save_dimacs(formula, path)
        assert main(["solve", path, "--certify"]) == 10
        out = capsys.readouterr().out
        assert "c certificate: model verified" in out

    def test_solve_certify_composes_with_preprocess(self, tmp_path,
                                                    capsys):
        # Proof-logged preprocessing shares the solver's DRUP stream,
        # so the combined proof verifies against the original formula.
        path = str(tmp_path / "unsat.cnf")
        save_dimacs(pigeonhole(3), path)
        assert main(["solve", path, "--certify", "--preprocess"]) == 20
        out = capsys.readouterr().out
        assert "c certificate: proof verified" in out

    def test_solve_certify_preprocess_refused_under_portfolio(
            self, tmp_path, capsys):
        # Portfolio workers each stream their own proof; they cannot
        # share one preprocessing prefix, so the combination refuses.
        path = str(tmp_path / "unsat.cnf")
        save_dimacs(pigeonhole(3), path)
        assert main(["solve", path, "--certify", "--preprocess",
                     "--portfolio", "2"]) == 2

    def test_solve_inprocess_certified(self, tmp_path, capsys):
        path = str(tmp_path / "unsat.cnf")
        save_dimacs(pigeonhole(4), path)
        assert main(["solve", path, "--certify", "--inprocess",
                     "--inprocess-interval", "10"]) == 20
        out = capsys.readouterr().out
        assert "c certificate: proof verified" in out

    def test_check_valid_proof(self, tmp_path, capsys):
        path = str(tmp_path / "unsat.cnf")
        proof = str(tmp_path / "proofs" / "unsat.drup")
        save_dimacs(pigeonhole(4), path)
        main(["solve", path, "--certify",
              "--proof-dir", str(tmp_path / "proofs")])
        capsys.readouterr()
        assert main(["check", path, proof]) == 0
        out = capsys.readouterr().out
        assert out.startswith("VALID:")
        assert "empty clause derived" in out

    def test_check_corrupted_proof_rejected(self, tmp_path, capsys):
        path = str(tmp_path / "unsat.cnf")
        proof = str(tmp_path / "bogus.drup")
        save_dimacs(pigeonhole(3), path)
        with open(proof, "w") as fh:
            fh.write("999 0\n0\n")
        assert main(["check", path, proof]) == 1
        out = capsys.readouterr().out
        assert "INVALID: line 1:" in out

    def test_cec_certify(self, tmp_path, capsys):
        a, b = str(tmp_path / "a.bench"), str(tmp_path / "b.bench")
        save_bench(ripple_carry_adder(3), a)
        save_bench(ripple_carry_adder(3), b)
        code = main(["cec", a, b, "--certify",
                     "--proof-dir", str(tmp_path / "proofs")])
        out = capsys.readouterr().out
        assert code == 0
        assert "certificate: proof verified" in out

    def test_atpg_certify_reports_proofs(self, c17_path, capsys):
        code = main(["atpg", c17_path, "--certify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "redundancy proofs checked" in out

    def test_bmc_certify_per_depth(self, tmp_path, capsys):
        bench = str(tmp_path / "counter.bench")
        save_bench(binary_counter(2), bench)
        code = main(["bmc", bench, "--output", "rollover",
                     "--depth", "2", "--certify",
                     "--proof-dir", str(tmp_path / "proofs")])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-depth unreachability proofs checked" in out
        import os
        assert os.path.exists(str(tmp_path / "proofs" / "depth0.drup"))

    def test_fuzz_clean_run(self, tmp_path, capsys):
        code = main(["fuzz", "--iterations", "5", "--seed", "3",
                     "--out-dir", str(tmp_path / "repros")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failure(s)" in out


class TestSolveExitCodes:
    def test_budget_unknown_is_exit_zero(self, tmp_path, capsys):
        path = str(tmp_path / "hard.cnf")
        save_dimacs(pigeonhole(6), path)
        assert main(["solve", path, "--max-conflicts", "2",
                     "--certify"]) == 0
        assert "s UNKNOWN" in capsys.readouterr().out

    def test_certification_failure_is_exit_thirty(self, tmp_path,
                                                  capsys, monkeypatch):
        # An UNSAT claim whose proof fails the independent check is
        # demoted to UNKNOWN -- and that UNKNOWN is distinguishable
        # from a benign budget UNKNOWN by exit code 30.
        from repro.verify.checker import CheckOutcome
        monkeypatch.setattr(
            "repro.verify.certificate.check_proof_file",
            lambda formula, path: CheckOutcome(
                valid=False, error="forced failure"))
        path = str(tmp_path / "unsat.cnf")
        save_dimacs(pigeonhole(3), path)
        assert main(["solve", path, "--certify"]) == 30
        out = capsys.readouterr().out
        assert "s UNKNOWN" in out
        assert "proof INVALID" in out


class TestServiceCLI:
    @pytest.fixture
    def server_port(self):
        import asyncio
        import threading
        from repro.service import ServiceConfig
        from repro.service.server import run_server

        config = ServiceConfig(max_workers=1, poll_interval=0.01,
                               backoff_seconds=0.01)
        bound = {}
        ready = threading.Event()

        def _note(addr):
            bound["port"] = addr[1]
            ready.set()

        thread = threading.Thread(
            target=lambda: asyncio.run(
                run_server(config, port=0, ready=_note)),
            daemon=True)
        thread.start()
        assert ready.wait(10.0), "service did not come up"
        yield bound["port"]
        main(["submit", "--port", str(bound["port"]), "--shutdown"])
        thread.join(10.0)

    def test_submit_sat_unsat_and_cache(self, tmp_path, capsys,
                                        server_port):
        port = str(server_port)
        sat = str(tmp_path / "sat.cnf")
        unsat = str(tmp_path / "unsat.cnf")
        save_dimacs(random_ksat_at_ratio(10, ratio=3.0, seed=0), sat)
        save_dimacs(pigeonhole(3), unsat)

        assert main(["submit", sat, "--port", port]) == 10
        out = capsys.readouterr().out
        assert "s SATISFIABLE" in out
        assert out.splitlines()[-1].startswith("v ")

        assert main(["submit", unsat, "--port", port,
                     "--certify"]) == 20
        out = capsys.readouterr().out
        assert "s UNSATISFIABLE" in out
        assert "c certificate: proof verified" in out

        # Same formula again: served from the cache.
        assert main(["submit", sat, "--port", port,
                     "--id", "repeat"]) == 10
        assert "(cached)" in capsys.readouterr().out

    def test_submit_status_and_ping(self, capsys, server_port):
        import json
        port = str(server_port)
        assert main(["submit", "--port", port, "--ping"]) == 0
        capsys.readouterr()
        assert main(["submit", "--port", port, "--status"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["kind"] == "status"
        assert status["workers"]["max"] == 1

    def test_submit_overload_is_exit_two(self, tmp_path, capsys):
        # No server listening on a fresh ephemeral port: the client
        # reports the connection failure as an error, exit 2.
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        path = str(tmp_path / "sat.cnf")
        save_dimacs(random_ksat_at_ratio(8, ratio=3.0, seed=1), path)
        assert main(["submit", path, "--port",
                     str(free_port)]) == 2
        assert "error" in capsys.readouterr().err


class TestObservabilityCLI:
    """The PR-8 surface: submit --stream/--op, repro top, profile
    over merged server+worker traces, serve trace flags."""

    @pytest.fixture
    def obs_server(self, tmp_path):
        import asyncio
        import threading
        from repro.service import ServiceConfig
        from repro.service.server import run_server

        trace_path = str(tmp_path / "server.jsonl")
        worker_dir = str(tmp_path / "server.jsonl.workers")
        from repro.obs import JsonlSink, Tracer
        tracer = Tracer(JsonlSink(trace_path))
        tracer.emit_meta()
        config = ServiceConfig(max_workers=1, poll_interval=0.01,
                               progress_interval=0.0,
                               stream_interval=0.0,
                               worker_check_interval=16,
                               backoff_seconds=0.01)
        bound = {}
        ready = threading.Event()

        def _note(addr):
            bound["port"] = addr[1]
            ready.set()

        thread = threading.Thread(
            target=lambda: asyncio.run(
                run_server(config, port=0, ready=_note,
                           tracer=tracer,
                           worker_trace_dir=worker_dir)),
            daemon=True)
        thread.start()
        assert ready.wait(10.0), "service did not come up"
        yield {"port": bound["port"], "trace": trace_path,
               "worker_dir": worker_dir}
        main(["submit", "--port", str(bound["port"]), "--shutdown"])
        thread.join(10.0)
        tracer.close()

    def test_streamed_submit_prints_progress_lines(self, tmp_path,
                                                   capsys,
                                                   obs_server):
        port = str(obs_server["port"])
        unsat = str(tmp_path / "ph.cnf")
        save_dimacs(pigeonhole(6), unsat)
        assert main(["submit", unsat, "--port", port, "--stream",
                     "--no-cache"]) == 20
        out = capsys.readouterr().out
        progress = [line for line in out.splitlines()
                    if line.startswith("c progress #")]
        assert progress, out
        assert "conflicts" in progress[0]
        # The terminal verdict still lands after the stream.
        assert out.splitlines()[-1] == "s UNSATISFIABLE"

    def test_op_metrics_prints_parseable_exposition(self, tmp_path,
                                                    capsys,
                                                    obs_server):
        from repro.obs import lint_exposition
        port = str(obs_server["port"])
        sat = str(tmp_path / "sat.cnf")
        save_dimacs(random_ksat_at_ratio(10, ratio=3.0, seed=0), sat)
        assert main(["submit", sat, "--port", port]) == 10
        capsys.readouterr()
        assert main(["submit", "--port", port, "--op",
                     "metrics"]) == 0
        text = capsys.readouterr().out
        assert lint_exposition(text) == []
        assert "service_solve_latency_seconds_bucket" in text
        assert "service_cache_hit_rate" in text

    def test_top_once_renders_dashboard(self, capsys, obs_server):
        port = str(obs_server["port"])
        assert main(["top", "--port", port, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top --" in out
        assert "workers" in out
        # --once never clears the screen (script-friendly).
        assert "\x1b[2J" not in out

    def test_profile_merges_server_and_worker_traces(self, tmp_path,
                                                     capsys,
                                                     obs_server):
        import glob
        import os
        port = str(obs_server["port"])
        unsat = str(tmp_path / "ph.cnf")
        save_dimacs(pigeonhole(5), unsat)
        assert main(["submit", unsat, "--port", port, "--id",
                     "traced", "--no-cache"]) == 20
        worker_files = sorted(glob.glob(
            os.path.join(obs_server["worker_dir"], "*.jsonl")))
        assert worker_files
        capsys.readouterr()
        assert main(["profile", obs_server["trace"]]
                    + worker_files) == 0
        out = capsys.readouterr().out
        assert "job timelines (server/worker correlated):" in out
        assert "traced" in out
        assert "attempt 1: solve" in out

    def test_top_unreachable_server_is_exit_two(self, capsys):
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        assert main(["top", "--port", str(free_port), "--once"]) == 2
        assert "error" in capsys.readouterr().err
