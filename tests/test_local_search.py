"""Unit tests for repro.solvers.local_search (GSAT/WalkSAT, Section 4)."""

import pytest

from conftest import assert_model_satisfies

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole, random_ksat_at_ratio
from repro.solvers.local_search import solve_gsat, solve_walksat
from repro.solvers.result import Status


class TestGSAT:
    def test_finds_model_on_easy_sat(self, tiny_sat_formula):
        result = solve_gsat(tiny_sat_formula, seed=0)
        assert result.is_sat
        assert_model_satisfies(tiny_sat_formula, result.assignment)

    def test_never_claims_unsat(self, tiny_unsat_formula):
        result = solve_gsat(tiny_unsat_formula, max_tries=3,
                            max_flips=50, seed=0)
        assert result.status is Status.UNKNOWN

    def test_empty_clause_shortcut(self):
        formula = CNFFormula()
        formula.add_clause([])
        assert solve_gsat(formula).is_unsat

    def test_random_sat_instances(self):
        for seed in range(3):
            formula = random_ksat_at_ratio(15, ratio=3.0, seed=seed)
            result = solve_gsat(formula, max_tries=20, max_flips=2000,
                                seed=seed)
            if result.is_sat:
                assert_model_satisfies(formula, result.assignment)

    def test_statistics(self):
        result = solve_gsat(pigeonhole(3), max_tries=2, max_flips=30,
                            seed=1)
        assert result.stats.tries == 2
        assert result.stats.flips > 0


class TestWalkSAT:
    def test_finds_model_on_easy_sat(self, tiny_sat_formula):
        result = solve_walksat(tiny_sat_formula, seed=0)
        assert result.is_sat
        assert_model_satisfies(tiny_sat_formula, result.assignment)

    def test_never_claims_unsat(self, tiny_unsat_formula):
        result = solve_walksat(tiny_unsat_formula, max_tries=3,
                               max_flips=100, seed=0)
        assert result.status is Status.UNKNOWN

    def test_cannot_refute_pigeonhole(self):
        """The paper's Section 4 point: local search cannot prove
        unsatisfiability, which EDA applications routinely need."""
        result = solve_walksat(pigeonhole(3), max_tries=5,
                               max_flips=500, seed=0)
        assert result.status is Status.UNKNOWN

    def test_solves_phase_transition_instances(self):
        solved = 0
        for seed in range(5):
            formula = random_ksat_at_ratio(20, ratio=3.5, seed=seed)
            result = solve_walksat(formula, max_tries=10,
                                   max_flips=5000, seed=seed)
            if result.is_sat:
                assert_model_satisfies(formula, result.assignment)
                solved += 1
        assert solved >= 3      # WalkSAT is strong on satisfiable mixes

    def test_noise_bounds(self):
        with pytest.raises(ValueError):
            solve_walksat(CNFFormula(1), noise=1.5)

    def test_deterministic_given_seed(self):
        formula = random_ksat_at_ratio(12, ratio=3.0, seed=4)
        left = solve_walksat(formula, seed=11)
        right = solve_walksat(formula, seed=11)
        assert left.status == right.status
        assert left.stats.flips == right.stats.flips
