"""Tests for the parallel portfolio layer (repro.solvers.portfolio)."""

import multiprocessing
import time

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole, random_ksat
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.portfolio import (
    PortfolioConfig,
    default_portfolio,
    solve_portfolio,
)
from repro.solvers.result import Status

from conftest import assert_model_satisfies


def _no_orphans():
    """No racing worker may outlive solve_portfolio."""
    # Allow a short grace period for process table cleanup.
    for _ in range(50):
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return not multiprocessing.active_children()


class TestDefaultPortfolio:
    def test_sizes_and_determinism(self):
        configs = default_portfolio(6, seed=3)
        assert len(configs) == 6
        assert configs == default_portfolio(6, seed=3)
        # Diversified: not all configurations identical modulo seed.
        assert len({(c.heuristic, c.restart, c.restart_interval)
                    for c in configs}) > 1
        # Seeds differ so even repeated axes explore differently.
        assert len({c.seed for c in configs}) == 6

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            default_portfolio(0)


class TestSequentialFallback:
    def test_processes_1_uses_no_workers(self):
        formula = random_ksat(20, 60, 3, seed=9)
        result = solve_portfolio(formula, processes=1, seed=0)
        assert result.processes_used == 1
        assert result.status in (Status.SATISFIABLE,
                                 Status.UNSATISFIABLE)
        assert not multiprocessing.active_children()

    def test_single_config_stays_in_process(self):
        formula = random_ksat(15, 40, 3, seed=2)
        configs = [PortfolioConfig(name="only")]
        result = solve_portfolio(formula, configs=configs, processes=4)
        assert result.winner == "only"
        assert result.processes_used == 1

    def test_deterministic_winner_fixed_seed_set(self):
        formula = random_ksat(25, 80, 3, seed=4)
        configs = default_portfolio(4, seed=7)
        winners = {
            solve_portfolio(formula, configs=configs,
                            processes=1).winner
            for _ in range(3)
        }
        assert len(winners) == 1


class TestParallelRace:
    def test_sat_agreement_and_model(self):
        formula = random_ksat(30, 100, 3, seed=11)
        reference = CDCLSolver(formula).solve()
        result = solve_portfolio(formula, processes=3, seed=0)
        assert result.status is reference.status
        if result.status is Status.SATISFIABLE:
            assert_model_satisfies(formula, result.assignment)
        assert result.winner is not None
        assert _no_orphans()

    def test_unsat_agreement_across_configs(self):
        formula = pigeonhole(4)
        result = solve_portfolio(formula, processes=4, seed=0)
        assert result.status is Status.UNSATISFIABLE
        assert _no_orphans()

    def test_clean_shutdown_on_early_finish(self):
        # An easy instance finishes instantly in one worker; the
        # others must be terminated, not orphaned.
        formula = CNFFormula(num_vars=3,
                             clauses=[(1,), (1, 2), (-2, 3)])
        result = solve_portfolio(formula, processes=4, seed=0)
        assert result.status is Status.SATISFIABLE
        assert _no_orphans()

    def test_unknown_when_budget_exhausted(self):
        formula = pigeonhole(7)
        result = solve_portfolio(formula, processes=2, max_conflicts=5)
        assert result.status is Status.UNKNOWN
        assert result.winner is None
        assert _no_orphans()

    def test_winner_is_lowest_index_among_queued(self):
        # Trivial formula: every worker answers almost simultaneously;
        # deterministic selection must still name a single config.
        formula = CNFFormula(num_vars=2, clauses=[(1, 2)])
        result = solve_portfolio(formula, processes=3, seed=0)
        assert result.status is Status.SATISFIABLE
        assert result.winner_index is not None
        assert result.winner == \
            default_portfolio(3, seed=0)[result.winner_index].name


class TestCrossCheck:
    def test_fifty_instance_randomized_cross_check(self):
        # Acceptance criterion: portfolio == single-engine verdicts on
        # 50 randomized instances, using all available cores.
        for index in range(50):
            num_vars = 8 + (index % 12)
            num_clauses = int(num_vars * (3.0 + (index % 5) * 0.5))
            formula = random_ksat(num_vars, num_clauses, 3,
                                  seed=1000 + index)
            single = CDCLSolver(formula).solve()
            racing = solve_portfolio(formula, seed=index)
            assert racing.status is single.status, \
                f"instance {index}: {racing.status} != {single.status}"
            if racing.status is Status.SATISFIABLE:
                assert_model_satisfies(formula, racing.assignment)
        assert _no_orphans()


class TestAppIntegration:
    def test_equivalence_portfolio_backend(self):
        from repro.apps.equivalence import check_equivalence, \
            mutate_circuit
        from repro.circuits.generators import ripple_carry_adder

        rca = ripple_carry_adder(4)
        mutant = mutate_circuit(rca, seed=1)
        # simulation_vectors=0 forces the SAT path.
        report = check_equivalence(rca, rca, simulation_vectors=0,
                                   backend="portfolio",
                                   portfolio_processes=2)
        assert report.equivalent is True
        report = check_equivalence(rca, mutant, simulation_vectors=0,
                                   backend="portfolio",
                                   portfolio_processes=2)
        assert report.equivalent is False
        with pytest.raises(ValueError):
            check_equivalence(rca, rca, backend="bogus")

    def test_atpg_portfolio_method(self):
        from repro.apps.atpg import TestOutcome, full_fault_list, \
            solve_fault
        from repro.circuits.generators import ripple_carry_adder

        circuit = ripple_carry_adder(2)
        fault = full_fault_list(circuit)[0]
        cdcl = solve_fault(circuit, fault, method="cdcl")
        racing = solve_fault(circuit, fault, method="portfolio")
        assert racing.outcome is cdcl.outcome
        if racing.outcome is TestOutcome.DETECTED:
            assert racing.vector is not None
