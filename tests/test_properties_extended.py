"""Property-based tests for the extension subsystems.

Hypothesis-driven invariants over the BDD package, the pseudo-Boolean
encodings, the cardinality constraints, the .bench round trip, the
fault model, and proof logging -- complementing tests/test_properties.py
which covers the CNF/solver core.
"""

import itertools

from hypothesis import HealthCheck, given, settings, strategies as st

from conftest import brute_force_status

from repro.bdd.manager import BDDManager
from repro.circuits.bench_format import parse_bench, write_bench
from repro.circuits.faults import StuckAtFault, detects, inject_fault
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import exhaustive_truth_table, simulate
from repro.cnf.cardinality import at_most_k
from repro.cnf.formula import CNFFormula
from repro.cnf.pseudo_boolean import evaluate_terms, pb_at_most
from repro.solvers.proof import check_rup_proof, solve_with_proof

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def small_circuits(draw, max_inputs=4, max_gates=7):
    num_inputs = draw(st.integers(1, max_inputs))
    num_gates = draw(st.integers(1, max_gates))
    circuit = Circuit("prop")
    pool = [circuit.add_input(f"i{k}") for k in range(num_inputs)]
    kinds = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
             GateType.XOR, GateType.XNOR, GateType.NOT,
             GateType.BUFFER]
    for index in range(num_gates):
        kind = draw(st.sampled_from(kinds))
        if kind in (GateType.NOT, GateType.BUFFER):
            fanins = [draw(st.sampled_from(pool))]
        else:
            size = draw(st.integers(min(2, len(pool)),
                                    min(3, len(pool))))
            fanins = draw(st.lists(st.sampled_from(pool),
                                   min_size=size, max_size=size,
                                   unique=True))
        pool.append(circuit.add_gate(f"g{index}", kind, fanins))
    circuit.set_output(pool[-1])
    return circuit


class TestBDDProperties:
    @SETTINGS
    @given(small_circuits())
    def test_bdd_matches_truth_table(self, circuit):
        from repro.bdd.circuit import build_output_bdds
        manager = BDDManager(len(circuit.inputs))
        nodes = build_output_bdds(circuit, manager)
        output = circuit.outputs[0]
        for key, outputs in exhaustive_truth_table(circuit).items():
            model = {i + 1: value for i, value in enumerate(key)}
            assert manager.evaluate(nodes[output], model) == outputs[0]

    @SETTINGS
    @given(small_circuits())
    def test_bdd_count_matches_enumeration(self, circuit):
        from repro.bdd.circuit import build_output_bdds
        manager = BDDManager(len(circuit.inputs))
        nodes = build_output_bdds(circuit, manager)
        output = circuit.outputs[0]
        expected = sum(1 for outputs in
                       exhaustive_truth_table(circuit).values()
                       if outputs[0])
        assert manager.count_solutions(nodes[output],
                                       len(circuit.inputs)) == expected

    @SETTINGS
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 4)),
                    min_size=1, max_size=6))
    def test_demorgan(self, spec):
        manager = BDDManager(4)
        operands = [manager.var(v) if positive else manager.nvar(v)
                    for positive, v in spec]
        left = manager.apply_not(manager.apply_many("AND", operands))
        right = manager.apply_many(
            "OR", [manager.apply_not(op) for op in operands])
        assert left is right          # canonicity makes this a pointer


class TestPBProperties:
    @SETTINGS
    @given(st.lists(st.integers(1, 5), min_size=1, max_size=5),
           st.integers(0, 12))
    def test_pb_at_most_exact_semantics(self, weights, bound):
        n = len(weights)
        terms = [(w, i + 1) for i, w in enumerate(weights)]
        formula = CNFFormula(n)
        pb_at_most(formula, terms, bound)
        for bits in itertools.product([False, True], repeat=n):
            model = {v: bits[v - 1] for v in range(1, n + 1)}
            total = evaluate_terms(terms, model)
            # Project: is the base model extendable to the auxiliaries?
            extendable = _extendable(formula, model, n)
            assert extendable == (total <= bound), (weights, bound,
                                                    bits)

    @SETTINGS
    @given(st.lists(st.integers(1, 1), min_size=1, max_size=6),
           st.integers(0, 6))
    def test_unit_weights_match_cardinality(self, weights, bound):
        """With unit weights, PB and the sequential counter agree."""
        n = len(weights)
        lits = list(range(1, n + 1))
        pb_formula = CNFFormula(n)
        pb_at_most(pb_formula, [(1, l) for l in lits], bound)
        card_formula = CNFFormula(n)
        at_most_k(card_formula, lits, bound)
        for bits in itertools.product([False, True], repeat=n):
            model = {v: bits[v - 1] for v in range(1, n + 1)}
            assert _extendable(pb_formula, model, n) == \
                _extendable(card_formula, model, n)


def _extendable(formula, base_model, base_vars):
    """Can *base_model* over 1..base_vars extend to the auxiliaries?

    Decided with the (independently validated) CDCL solver under unit
    assumptions for the base variables.
    """
    from repro.solvers.cdcl import CDCLSolver

    probe = formula.copy()
    for var in range(1, base_vars + 1):
        probe.add_clause([var if base_model[var] else -var])
    return CDCLSolver(probe).solve().is_sat


class TestCircuitRoundTrips:
    @SETTINGS
    @given(small_circuits())
    def test_bench_roundtrip_preserves_function(self, circuit):
        again = parse_bench(write_bench(circuit))
        assert exhaustive_truth_table(again) == \
            exhaustive_truth_table(circuit)

    @SETTINGS
    @given(small_circuits(), st.integers(0, 1000))
    def test_injected_fault_simulation_consistency(self, circuit,
                                                   seed_bits):
        """inject_fault and simulate(faults=...) agree on outputs."""
        node_names = [n.name for n in circuit
                      if n.is_gate or n.is_input]
        fault = StuckAtFault(node_names[seed_bits % len(node_names)],
                             bool(seed_bits & 1))
        faulty = inject_fault(circuit, fault)
        vector = {name: bool((seed_bits >> i) & 1)
                  for i, name in enumerate(circuit.inputs)}
        via_circuit = simulate(faulty, vector)
        via_injection = simulate(circuit, vector,
                                 faults={fault.node: fault.value})
        for good_out, new_out in zip(circuit.outputs, faulty.outputs):
            assert via_circuit[new_out] == via_injection[good_out]


class TestProofProperties:
    @SETTINGS
    @given(st.integers(0, 100))
    def test_every_unsat_proof_checks(self, seed):
        from repro.cnf.generators import random_ksat_at_ratio
        formula = random_ksat_at_ratio(7, ratio=6.0, seed=seed)
        if brute_force_status(formula) != "UNSAT":
            return
        result, proof = solve_with_proof(formula)
        assert result.is_unsat
        assert check_rup_proof(formula, proof).valid
