"""Crash-recoverable search state (repro.runtime.checkpoint).

Covers the checksummed wire format (round-trip, every corruption
class rejected), size-bounded export (derivation-order prefix), the
RUP import gate (unsound clauses dropped, proofs stay checkable), the
CDCL export/resume hooks (stats counters, trace events, and -- the
acceptance bar -- a warm-restarted attempt whose DRUP proof still
passes the independent checker), and supervisor-level warm respawn
under the scripted mid-job kill fault, including the corrupt-blob
demotion to a cold restart.
"""

from __future__ import annotations

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import (
    CheckpointError,
    SearchCheckpoint,
    filter_rup_imports,
    load_checkpoint,
    try_load_checkpoint,
)
from repro.runtime.faults import FaultPlan, corrupt_blob
from repro.runtime.supervisor import Supervisor
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.portfolio import PortfolioConfig
from repro.solvers.result import Status
from repro.verify.checker import check_proof_steps
from repro.verify.drat import MemoryProofSink, attach_proof_stream


def _sample() -> SearchCheckpoint:
    return SearchCheckpoint(
        num_vars=5,
        clauses=[([1, -2], 2, 1.0), ([3, 4, -5], 3, 0.5)],
        units=[2],
        phases={1: True, 3: False},
        activities={1: 1.0, 4: 0.25},
        conflicts=17,
        restarts=3)


class TestWireFormat:
    def test_round_trip(self):
        ckpt = _sample()
        loaded = load_checkpoint(ckpt.serialize())
        assert loaded.num_vars == ckpt.num_vars
        assert loaded.clauses == [([1, -2], 2, 1.0),
                                  ([3, 4, -5], 3, 0.5)]
        assert loaded.units == [2]
        assert loaded.phases == {1: True, 3: False}
        assert loaded.activities == {1: 1.0, 4: 0.25}
        assert (loaded.conflicts, loaded.restarts) == (17, 3)

    def test_truncation_rejected(self):
        blob = _sample().serialize()
        with pytest.raises(CheckpointError):
            load_checkpoint(blob[:-3])
        assert try_load_checkpoint(blob[:-3]) is None

    def test_single_bit_flip_rejected(self):
        blob = _sample().serialize()
        assert try_load_checkpoint(corrupt_blob(blob)) is None

    def test_bad_magic_rejected(self):
        blob = _sample().serialize()
        assert try_load_checkpoint(b"nope" + blob[4:]) is None
        assert try_load_checkpoint(b"") is None
        assert try_load_checkpoint(None) is None

    def test_schema_violations_rejected(self):
        # A structurally wrong payload with a *valid* digest must
        # still be rejected: checksums catch corruption, the schema
        # check catches a malicious or buggy producer.
        import hashlib
        import json
        body = json.dumps({"num_vars": 3, "clauses": [[[0], 1, 1.0]],
                           "units": [], "phases": {},
                           "activities": {}, "conflicts": 0,
                           "restarts": 0},
                          sort_keys=True,
                          separators=(",", ":")).encode()
        digest = hashlib.sha256(body).hexdigest()[:16].encode()
        blob = b"repro-ckpt1 " + digest + b" " + body
        assert try_load_checkpoint(blob) is None

    def test_bounded_serialize_keeps_derivation_prefix(self):
        ckpt = SearchCheckpoint(
            num_vars=50,
            clauses=[([i, -(i + 1)], 2, 1.0) for i in range(1, 40)])
        blob = ckpt.serialize_bounded(max_bytes=600)
        assert blob is not None and len(blob) <= 600
        trimmed = load_checkpoint(blob)
        kept = len(trimmed.clauses)
        assert 0 < kept < 39
        # Prefix, not a sample: later clauses may depend on earlier
        # ones for RUP admission.
        assert trimmed.clauses == ckpt.clauses[:kept]
        # The original is untouched by the bounding loop.
        assert len(ckpt.clauses) == 39


class TestRupImportGate:
    def test_drops_clauses_that_are_not_consequences(self):
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        ckpt = SearchCheckpoint(
            num_vars=2,
            clauses=[([-1], 1, 1.0)],    # satisfiable-but-unimplied
            units=[])
        clauses, units, dropped = filter_rup_imports(formula, ckpt)
        assert clauses == [] and units == []
        assert dropped == 1

    def test_admits_genuine_consequences_in_order(self):
        formula = CNFFormula(3)
        formula.add_clause([1, 2])
        formula.add_clause([-2, 3])
        ckpt = SearchCheckpoint(
            num_vars=3,
            clauses=[([1, 3], 2, 1.0)],  # resolvent: RUP
            units=[])
        clauses, units, dropped = filter_rup_imports(formula, ckpt)
        assert [lits for lits, _, _ in clauses] == [[1, 3]]
        assert dropped == 0

    def test_out_of_range_vars_dropped(self):
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        ckpt = SearchCheckpoint(num_vars=2,
                                clauses=[([1, 9], 2, 1.0)],
                                units=[7])
        clauses, units, dropped = filter_rup_imports(formula, ckpt)
        assert clauses == [] and units == []
        assert dropped == 2


class TestSolverExportResume:
    def test_export_captures_learned_state_and_counts(self):
        formula = pigeonhole(5)
        solver = CDCLSolver(formula, max_conflicts=40)
        assert solver.solve().status is Status.UNKNOWN
        ckpt = solver.export_checkpoint()
        assert ckpt.num_vars == formula.num_vars
        assert len(ckpt.clauses) > 0
        assert ckpt.conflicts == solver.stats.conflicts
        assert solver.stats.checkpoint_exports == 1
        # Blob round-trips through the wire format.
        resumed = load_checkpoint(ckpt.serialize())
        assert len(resumed.clauses) == len(ckpt.clauses)

    def test_resumed_unsat_proof_passes_independent_checker(self):
        # The tentpole acceptance: kill an attempt mid-search, resume
        # from its checkpoint, and the resumed attempt's certificate
        # must stand on its own -- imported clauses replayed into the
        # proof stream in derivation order, all RUP.
        formula = pigeonhole(5)
        first = CDCLSolver(formula, max_conflicts=40)
        assert first.solve().status is Status.UNKNOWN
        blob = first.export_checkpoint().serialize()

        ckpt = try_load_checkpoint(blob)
        assert ckpt is not None
        second = CDCLSolver(formula, resume_from=ckpt)
        sink = attach_proof_stream(second, MemoryProofSink())
        result = second.solve()
        assert result.status is Status.UNSATISFIABLE
        assert second.stats.warm_resumes == 1
        assert second.stats.checkpoint_imported_clauses > 0
        outcome = check_proof_steps(formula, sink.events)
        assert outcome.valid, outcome.reason

    def test_corrupt_blob_means_cold_start(self):
        formula = pigeonhole(5)
        first = CDCLSolver(formula, max_conflicts=40)
        first.solve()
        blob = corrupt_blob(first.export_checkpoint().serialize())
        assert try_load_checkpoint(blob) is None

    def test_num_vars_mismatch_is_ignored_not_fatal(self):
        formula = pigeonhole(4)
        ckpt = SearchCheckpoint(num_vars=3,
                                clauses=[([1], 1, 1.0)])
        solver = CDCLSolver(formula, resume_from=ckpt)
        result = solver.solve()
        assert result.status is Status.UNSATISFIABLE
        assert solver.stats.checkpoint_imported_clauses == 0

    def test_checkpoint_trace_events_validate(self, tmp_path):
        from repro.obs.trace import (JsonlSink, Tracer,
                                     validate_trace_file)
        formula = pigeonhole(5)
        first = CDCLSolver(formula, max_conflicts=40)
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(JsonlSink(path))
        tracer.emit_meta()
        first.tracer = tracer
        first.solve()
        ckpt = first.export_checkpoint()
        second = CDCLSolver(formula, resume_from=ckpt)
        second.tracer = tracer
        assert second.solve().status is Status.UNSATISFIABLE
        tracer.close()
        count, problems = validate_trace_file(path)
        assert problems == []
        import json
        names = [json.loads(line)["name"]
                 for line in open(path, encoding="utf-8")]
        assert "checkpoint.export" in names
        assert "checkpoint.resume" in names


class TestSupervisorWarmRespawn:
    def _config(self):
        return PortfolioConfig(name="vsids-luby", heuristic="vsids",
                               restart="luby", phase_saving=True)

    @pytest.mark.slow
    def test_killed_worker_respawns_warm(self):
        plan = FaultPlan(kills={0: 1}, kill_after_checkpoints=2)
        supervisor = Supervisor(
            [self._config()], budget=Budget(wall_seconds=120.0),
            fault_plan=plan, progress_interval=0.05,
            backoff_seconds=0.05)
        report = supervisor.run(pigeonhole(7))
        assert report.result.status is Status.UNSATISFIABLE
        assert report.workers[0].attempts == 2
        assert report.result.stats.warm_resumes >= 1
        assert report.result.stats.checkpoint_imported_clauses > 0

    @pytest.mark.slow
    def test_corrupt_checkpoint_demotes_to_cold(self):
        plan = FaultPlan(kills={0: 1}, corrupt_checkpoints={0: 2},
                         kill_after_checkpoints=2)
        supervisor = Supervisor(
            [self._config()], budget=Budget(wall_seconds=120.0),
            fault_plan=plan, progress_interval=0.05,
            backoff_seconds=0.05)
        report = supervisor.run(pigeonhole(7))
        # The job is never lost: the respawn runs cold and finishes.
        assert report.result.status is Status.UNSATISFIABLE
        assert report.workers[0].attempts == 2
        assert report.result.stats.warm_resumes == 0
