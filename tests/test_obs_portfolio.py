"""Live portfolio progress: per-worker effort timelines, loss
summaries, and supervisor-side tracing of a race."""

from __future__ import annotations

import pytest

from repro.cnf.generators import pigeonhole
from repro.obs import ListSink, Tracer, validate_event
from repro.runtime.supervisor import Supervisor, WorkerOutcome
from repro.solvers.portfolio import default_portfolio, solve_portfolio
from repro.solvers.result import Status


def race(tracer=None, progress_interval=0.0):
    """A short supervised race every worker can finish (UNSAT)."""
    return solve_portfolio(pigeonhole(7), processes=2,
                           progress_interval=progress_interval,
                           tracer=tracer)


class TestEffortTimelines:
    def test_workers_report_samples(self):
        result = race()
        assert result.status is Status.UNSATISFIABLE
        report = result.report
        timelines = report.effort_timelines()
        assert set(timelines) == {w.name for w in report.workers}
        assert any(timelines.values()), "no worker reported progress"
        for samples in timelines.values():
            elapsed = [s["elapsed"] for s in samples]
            assert elapsed == sorted(elapsed)
            for sample in samples:
                assert set(sample) == {"attempt", "elapsed", "stats"}
                assert isinstance(sample["stats"]["decisions"], int)
                assert sample["stats"]["propagations"] >= 0

    def test_progress_disabled_leaves_timelines_empty(self):
        result = race(progress_interval=None)
        assert result.status is Status.UNSATISFIABLE
        assert all(not w.timeline for w in result.report.workers)

    def test_negative_progress_interval_rejected(self):
        with pytest.raises(ValueError):
            Supervisor(default_portfolio(2), progress_interval=-0.5)


class TestLossSummary:
    def test_every_non_winner_explained(self):
        result = race()
        report = result.report
        summary = report.loss_summary()
        losers = [w for w in report.workers
                  if w.index != report.winner_index]
        assert set(summary) == {w.name for w in losers}
        for reason in summary.values():
            assert isinstance(reason, str) and reason

    def test_cancelled_and_tied_workers_distinguished(self):
        result = race()
        report = result.report
        summary = report.loss_summary()
        for worker in report.workers:
            if worker.index == report.winner_index:
                continue
            reason = summary[worker.name]
            if worker.outcome is WorkerOutcome.CANCELLED:
                assert "still searching" in reason
            elif worker.outcome is WorkerOutcome.UNSAT:
                assert "lower-index worker won" in reason


class TestRaceTracing:
    def test_span_and_lifecycle_events(self):
        sink = ListSink()
        result = race(tracer=Tracer(sink, progress_interval=0.0))
        assert result.status is Status.UNSATISFIABLE
        problems = [p for e in sink.events for p in validate_event(e)]
        assert problems == [], problems

        begins = [e for e in sink.events if e["kind"] == "span_begin"]
        assert [e["name"] for e in begins] == ["portfolio.race"]
        ends = [e for e in sink.events if e["kind"] == "span_end"]
        assert ends[0]["attrs"]["status"] == "UNSATISFIABLE"
        assert ends[0]["attrs"]["winner"] == result.winner

        spawns = [e for e in sink.events
                  if e["name"] == "portfolio.spawn"]
        outcomes = [e for e in sink.events
                    if e["name"] == "portfolio.outcome"]
        assert len(spawns) == len(result.report.workers)
        assert len(outcomes) == len(result.report.workers)
        for event in spawns + outcomes:
            assert event["span"] == begins[0]["span"]

    def test_worker_progress_relayed(self):
        sink = ListSink()
        result = race(tracer=Tracer(sink, progress_interval=0.0))
        progress = [e for e in sink.events if e["kind"] == "progress"]
        # Progress reaches the supervisor only if a worker checkpoints
        # before the race is decided; with progress_interval=0 and an
        # UNSAT instance every finisher sends at least one snapshot.
        assert progress, "no worker progress relayed to the tracer"
        for event in progress:
            assert event["name"].startswith("portfolio.worker")
            attrs = event["attrs"]
            assert attrs["config"] in [w.name
                                       for w in result.report.workers]
            assert attrs["decisions"] >= 0
            assert attrs["elapsed"] >= 0

    def test_sequential_fallback_traces_engine_spans(self):
        sink = ListSink()
        result = solve_portfolio(pigeonhole(4), processes=1,
                                 tracer=Tracer(sink,
                                               progress_interval=0.0))
        assert result.status is Status.UNSATISFIABLE
        problems = [p for e in sink.events for p in validate_event(e)]
        assert problems == [], problems
        names = [e["name"] for e in sink.events
                 if e["kind"] == "span_begin"]
        assert names == ["cdcl.solve"]
