"""Unit tests for repro.solvers.cdcl (GRASP-style search, Section 4.1)."""

import itertools

import pytest

from conftest import assert_model_satisfies, brute_force_status

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import (
    parity_chain,
    pigeonhole,
    random_ksat,
    random_ksat_at_ratio,
)
from repro.solvers.cdcl import CDCLSolver, solve_cdcl
from repro.solvers.heuristics import (
    DLISHeuristic,
    FixedOrderHeuristic,
    JeroslowWangHeuristic,
    RandomHeuristic,
    VSIDSHeuristic,
)
from repro.solvers.restarts import FixedRestarts, LubyRestarts
from repro.solvers.result import Status


class TestBasics:
    def test_sat(self, tiny_sat_formula):
        result = solve_cdcl(tiny_sat_formula)
        assert result.is_sat
        assert tiny_sat_formula.is_satisfied_by(result.assignment)

    def test_unsat(self, tiny_unsat_formula):
        assert solve_cdcl(tiny_unsat_formula).is_unsat

    def test_empty_formula(self):
        assert solve_cdcl(CNFFormula(2)).is_sat

    def test_empty_clause(self):
        formula = CNFFormula()
        formula.add_clause([])
        assert solve_cdcl(formula).is_unsat

    def test_contradictory_units(self):
        formula = CNFFormula()
        formula.add_clauses([[1], [-1]])
        assert solve_cdcl(formula).is_unsat

    def test_tautology_ignored(self):
        formula = CNFFormula()
        formula.add_clause([1, -1])
        formula.add_clause([2])
        result = solve_cdcl(formula)
        assert result.is_sat
        assert result.assignment.value_of(2) is True

    def test_bad_options_rejected(self):
        formula = CNFFormula(1)
        with pytest.raises(ValueError):
            CDCLSolver(formula, backtrack_mode="sideways")
        with pytest.raises(ValueError):
            CDCLSolver(formula, conflict_cut="2uip")
        with pytest.raises(ValueError):
            CDCLSolver(formula, deletion="all")


def configurations():
    """The option matrix exercised by the randomized soundness test."""
    return [
        dict(),
        dict(backtrack_mode="chronological"),
        dict(conflict_cut="decision"),
        dict(learning=False),
        dict(learning=False, backtrack_mode="chronological"),
        dict(deletion="size", deletion_bound=3, deletion_interval=5),
        dict(deletion="relevance", deletion_bound=2,
             deletion_interval=5),
        dict(restart_policy=FixedRestarts(5)),
        dict(restart_policy=LubyRestarts(4)),
        dict(heuristic=FixedOrderHeuristic()),
        dict(heuristic=RandomHeuristic(seed=1)),
        dict(heuristic=DLISHeuristic()),
        dict(heuristic=JeroslowWangHeuristic()),
        dict(heuristic=VSIDSHeuristic(random_freq=0.3, seed=2)),
    ]


class TestSoundnessMatrix:
    """Every configuration must agree with brute force on random
    instances at the phase transition -- the core soundness gate."""

    @pytest.mark.parametrize("config_index",
                             range(len(configurations())))
    def test_random_instances(self, config_index):
        config = configurations()[config_index]
        for seed in range(6):
            formula = random_ksat_at_ratio(8, ratio=4.3, seed=seed)
            expected = brute_force_status(formula)
            result = CDCLSolver(formula, **config).solve()
            assert result.status is not Status.UNKNOWN
            assert result.is_sat == (expected == "SAT"), \
                (config, seed)
            if result.is_sat:
                assert_model_satisfies(formula, result.assignment)


class TestStructuredInstances:
    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole(self, holes):
        assert solve_cdcl(pigeonhole(holes)).is_unsat

    def test_parity_chains(self):
        assert solve_cdcl(parity_chain(12)).is_unsat
        assert solve_cdcl(parity_chain(12, satisfiable=True)).is_sat

    def test_larger_random_sat(self):
        formula = random_ksat_at_ratio(40, ratio=3.0, seed=9)
        result = solve_cdcl(formula)
        assert result.is_sat
        assert_model_satisfies(formula, result.assignment)


class TestLearning:
    def test_learned_clauses_are_implicates(self):
        """Every recorded clause must be entailed by the formula
        (checked semantically on a small UNSAT instance)."""
        formula = pigeonhole(3)
        solver = CDCLSolver(formula)
        solver.solve()
        learned = solver.learned_clauses()
        assert learned
        models = []
        n = formula.num_vars
        for bits in itertools.product([False, True], repeat=n):
            model = {var: bits[var - 1] for var in range(1, n + 1)}
            if formula.evaluate(model) is True:
                models.append(model)
        # UNSAT formula: vacuous; check entailment via resolution proof
        # obligation instead: formula AND NOT clause must be UNSAT.
        for clause in learned[:10]:
            probe = formula.copy()
            for lit in clause:
                probe.add_clause([-lit])
            assert brute_force_status(probe) == "UNSAT", clause

    def test_learning_reduces_decisions(self):
        formula = pigeonhole(5)
        with_learning = CDCLSolver(formula).solve()
        without = CDCLSolver(pigeonhole(5), learning=False,
                             max_decisions=200000).solve()
        assert with_learning.is_unsat
        if without.is_unsat:
            assert with_learning.stats.decisions <= \
                without.stats.decisions

    def test_no_learned_clauses_when_disabled(self):
        solver = CDCLSolver(pigeonhole(3), learning=False)
        solver.solve()
        # Unit implicates are still retained; nothing longer is.
        assert all(len(c) <= 1 for c in solver.learned_clauses())

    def test_deletion_policy_deletes(self):
        formula = pigeonhole(5)
        solver = CDCLSolver(formula, deletion="size", deletion_bound=2,
                            deletion_interval=10)
        result = solver.solve()
        assert result.is_unsat
        assert solver.stats.deleted_clauses > 0

    def test_relevance_deletion_sound(self):
        formula = pigeonhole(4)
        solver = CDCLSolver(formula, deletion="relevance",
                            deletion_bound=1, deletion_interval=5)
        assert solver.solve().is_unsat


class TestBacktracking:
    def test_nonchronological_skips_levels(self):
        # Pigeonhole with junk variables forces irrelevant decisions
        # that NCB should skip.
        formula = pigeonhole(4)
        junk_base = formula.num_vars
        for index in range(6):
            formula.add_clause([junk_base + index + 1,
                                junk_base + ((index + 1) % 6) + 1])
        solver = CDCLSolver(formula, heuristic=FixedOrderHeuristic())
        # Junk variables come first in fixed order? They are higher
        # indices, so force them first via JW? Instead just check NCB
        # statistics on the standard run.
        result = solver.solve()
        assert result.is_unsat

    def test_ncb_statistics_recorded(self):
        result = solve_cdcl(pigeonhole(5))
        assert result.stats.backtracks > 0
        # Non-chronological jumps should occur on pigeonhole formulas.
        assert result.stats.nonchronological_backtracks >= 0

    def test_chronological_mode_never_skips(self):
        result = solve_cdcl(pigeonhole(4),
                            backtrack_mode="chronological")
        assert result.is_unsat
        assert result.stats.nonchronological_backtracks == 0
        assert result.stats.levels_skipped == 0


class TestRestarts:
    def test_restarts_preserve_soundness(self):
        for seed in range(4):
            formula = random_ksat_at_ratio(8, ratio=4.3, seed=seed)
            expected = brute_force_status(formula)
            result = CDCLSolver(
                formula,
                heuristic=VSIDSHeuristic(random_freq=0.3, seed=seed),
                restart_policy=FixedRestarts(4)).solve()
            assert result.is_sat == (expected == "SAT")

    def test_restart_counter(self):
        solver = CDCLSolver(pigeonhole(5),
                            restart_policy=FixedRestarts(5))
        result = solver.solve()
        assert result.is_unsat
        assert result.stats.restarts > 0


class TestAssumptions:
    def test_sat_under_assumptions(self, tiny_sat_formula):
        solver = CDCLSolver(tiny_sat_formula)
        result = solver.solve(assumptions=[3])
        assert result.is_sat
        assert result.assignment.value_of(3) is True

    def test_unsat_under_assumptions_only(self, tiny_sat_formula):
        solver = CDCLSolver(tiny_sat_formula)
        # b (var 2) is forced true; assuming -2 must fail...
        result = solver.solve(assumptions=[-2])
        assert result.is_unsat
        # ...but the formula itself stays satisfiable.
        assert solver.solve().is_sat

    def test_implied_assumption_not_miscounted(self):
        # Assumption b implied by assumption a: conflict beyond them
        # must not be misread as assumption-level UNSAT.
        formula = CNFFormula(4)
        formula.add_clause([-1, 2])        # a -> b
        formula.add_clause([3, 4])
        formula.add_clause([3, -4])
        formula.add_clause([-3, 4])
        formula.add_clause([-3, -4])       # x3/x4 contradictory
        solver = CDCLSolver(formula, heuristic=FixedOrderHeuristic())
        result = solver.solve(assumptions=[1, 2])
        assert result.is_unsat              # formula truly UNSAT

    def test_incompatible_assumptions(self, tiny_sat_formula):
        solver = CDCLSolver(tiny_sat_formula)
        assert solver.solve(assumptions=[1, -1]).is_unsat

    def test_sequential_calls_reuse_learning(self):
        formula = pigeonhole(4)
        solver = CDCLSolver(formula)
        first = solver.solve()
        learned_after_first = solver.stats.learned_clauses
        second = solver.solve()
        assert first.is_unsat and second.is_unsat
        assert solver.stats.learned_clauses >= learned_after_first


class TestIncrementalInterface:
    def test_add_clause_between_solves(self):
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        solver = CDCLSolver(formula)
        assert solver.solve().is_sat
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve().is_unsat

    def test_add_clause_grows_universe(self):
        solver = CDCLSolver(CNFFormula(1))
        solver.add_clause([1, 5])
        result = solver.solve()
        assert result.is_sat

    def test_add_clause_grows_every_per_variable_structure(self):
        # Regression guard for the flat-array layout: a clause beyond
        # the original universe must extend the assignment array, the
        # level array, the antecedent array, and both literal-indexed
        # watch tables (2 slots per variable) consistently -- and the
        # heuristic must be able to branch on the new variables.
        formula = CNFFormula(3)
        formula.add_clause([1, 2, 3])
        solver = CDCLSolver(formula)
        solver.add_clause([-3, 7, 9])   # long clause beyond num_vars
        solver.add_clause([8, 9])       # binary pair beyond num_vars
        assert solver._num_vars == 9
        assert len(solver._values) == 10
        assert len(solver._level) == 10
        assert len(solver._antecedent) == 10
        assert len(solver._watches) == 20
        assert len(solver._bins) == 20
        result = solver.solve()
        assert result.is_sat
        # The added clauses constrain the new variables for real.
        assignment = result.assignment
        assert assignment.literal_value(8) or assignment.literal_value(9)
        solver.add_clause([-8])
        solver.add_clause([-9])
        assert solver.solve().is_unsat

    def test_add_unit_clause(self):
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        solver = CDCLSolver(formula)
        solver.add_clause([-1])
        result = solver.solve()
        assert result.is_sat
        assert result.assignment.value_of(2) is True


class TestBudgets:
    def test_conflict_budget(self):
        result = solve_cdcl(pigeonhole(6), max_conflicts=3)
        assert result.is_unknown

    def test_decision_budget(self):
        result = solve_cdcl(pigeonhole(6), max_decisions=2)
        assert result.is_unknown


class TestValueQueries:
    def test_value_of_literal(self, tiny_sat_formula):
        solver = CDCLSolver(tiny_sat_formula)
        solver.solve()
        # After solve the trail is cancelled back to level 0.
        assert solver.decision_level == 0
