"""Unit tests for repro.solvers.recursive_learning (Section 4.2, Fig 4)."""

import pytest

from conftest import brute_force_status

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.experiments.workloads import (
    FIGURE4_VARS,
    figure4_condition,
    figure4_formula,
)
from repro.solvers.recursive_learning import (
    preprocess_recursive_learning,
    recursive_learn,
)


class TestFigure4:
    """The paper's worked example, reproduced exactly."""

    def test_necessary_assignment_x_equals_1(self):
        result = recursive_learn(figure4_formula(), figure4_condition())
        assert not result.conflict
        x = FIGURE4_VARS["x"]
        assert result.necessary[x] is True

    def test_recorded_implicate_matches_paper(self):
        """The explanation (z=1) & (u=0) => (x=1) in clausal form:
        (z' + u + x)."""
        result = recursive_learn(figure4_formula(), figure4_condition())
        u, x, z = (FIGURE4_VARS[k] for k in "uxz")
        assert Clause([-z, u, x]) in result.implicates

    def test_implicates_are_entailed(self):
        formula = figure4_formula()
        result = recursive_learn(formula, figure4_condition())
        for implicate in result.implicates:
            probe = formula.copy()
            for lit in implicate:
                probe.add_clause([-lit])
            assert brute_force_status(probe) == "UNSAT", implicate

    def test_implicate_triggers_during_search(self):
        """Adding the implicate makes x=1 derivable by plain unit
        propagation under (z=1, u=0) -- the 'prevents repeated
        derivation' property."""
        from repro.cnf.simplify import propagate_units
        formula = figure4_formula()
        result = recursive_learn(formula, figure4_condition())
        for implicate in result.implicates:
            formula.add_clause(implicate)
        u, x, z = (FIGURE4_VARS[k] for k in "uxz")
        formula.add_clause([z])
        formula.add_clause([-u])
        propagated = propagate_units(formula)
        assert propagated.forced.get(x) is True


class TestSemantics:
    def test_conflict_detection(self):
        formula = CNFFormula(2)
        formula.add_clause([1, 2])
        formula.add_clause([1, -2])
        result = recursive_learn(formula, {1: False})
        assert result.conflict

    def test_no_condition_backbone(self):
        # (a)(a' + b): backbone a=1, b=1 found from the empty condition.
        formula = CNFFormula(2)
        formula.add_clause([1])
        formula.add_clause([-1, 2])
        result = recursive_learn(formula, {})
        assert result.necessary == {1: True, 2: True}
        # Unconditioned implicates are unit clauses.
        assert Clause([1]) in result.implicates
        assert Clause([2]) in result.implicates

    def test_split_discovers_common_assignment(self):
        # (a + b), (a' + c), (b' + c): every way of satisfying the
        # first clause forces c -- pure depth-1 recursive learning.
        formula = CNFFormula(3)
        formula.add_clause([1, 2])
        formula.add_clause([-1, 3])
        formula.add_clause([-2, 3])
        result = recursive_learn(formula, {})
        assert result.necessary.get(3) is True

    def test_depth_2_beats_depth_1(self):
        # Force a two-level split: satisfying (a + b) leads, in each
        # branch, to another unresolved clause whose own split forces e.
        formula = CNFFormula(6)
        formula.add_clause([1, 2])
        # branch a: (c + d) with both c and d implying e
        formula.add_clause([-1, 3, 4])
        formula.add_clause([-3, 5])
        formula.add_clause([-4, 5])
        # branch b: (c' + e)... make b imply e through another split
        formula.add_clause([-2, 6, 3])
        formula.add_clause([-6, 5])
        deep = recursive_learn(formula, {}, depth=2)
        assert deep.necessary.get(5) is True

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            recursive_learn(CNFFormula(1), {}, depth=0)

    def test_necessary_assignments_preserve_satisfiability(self):
        from repro.cnf.generators import random_ksat_at_ratio
        for seed in range(4):
            formula = random_ksat_at_ratio(8, ratio=3.5, seed=seed)
            if brute_force_status(formula) != "SAT":
                continue
            result = recursive_learn(formula, {})
            assert not result.conflict
            probe = formula.copy()
            for var, value in result.necessary.items():
                probe.add_clause([var if value else -var])
            assert brute_force_status(probe) == "SAT"


class TestPreprocessing:
    def test_strengthens_formula(self):
        formula = CNFFormula(3)
        formula.add_clause([1, 2])
        formula.add_clause([-1, 3])
        formula.add_clause([-2, 3])
        strengthened, forced = preprocess_recursive_learning(formula)
        assert forced.get(3) is True
        assert strengthened.num_clauses > formula.num_clauses

    def test_unsat_detected(self):
        formula = CNFFormula(1)
        formula.add_clause([1])
        formula.add_clause([-1])
        strengthened, forced = preprocess_recursive_learning(formula)
        assert strengthened is None
