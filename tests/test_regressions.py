"""Regression tests: one per bug found and fixed during development.

Each test documents the original failure mode; none of these may
regress silently.
"""

import pytest

from conftest import brute_force_status

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import pigeonhole
from repro.cnf.simplify import remove_subsumed
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.heuristics import FixedOrderHeuristic
from repro.solvers.restarts import luby


class TestRootConflictStickiness:
    """Bug: after a level-0 conflict proved UNSAT, the solver left a
    falsified clause un-reexamined; a second solve() call could walk
    past it and report SATISFIABLE."""

    def test_resolve_after_unsat_stays_unsat(self):
        solver = CDCLSolver(pigeonhole(4))
        assert solver.solve().is_unsat
        assert solver.solve().is_unsat
        assert solver.solve().is_unsat


class TestAssumptionDepthMiscount:
    """Bug: the assumption-level prefix was computed as
    len(assumptions), so an assumption *implied* by an earlier one
    (taking no decision level of its own) made a genuine conflict at a
    deeper level look like assumption-level UNSAT."""

    def test_implied_assumption_depth(self):
        formula = CNFFormula(4)
        formula.add_clause([-1, 2])          # a -> b
        formula.add_clause([3, 4])
        formula.add_clause([3, -4])
        formula.add_clause([-3, 4])
        formula.add_clause([-3, -4])         # x3/x4 core is UNSAT
        solver = CDCLSolver(formula, heuristic=FixedOrderHeuristic())
        result = solver.solve(assumptions=[1, 2])
        assert result.is_unsat               # truly UNSAT either way
        # The formula minus the x3/x4 core is SAT under the same
        # assumptions -- the original bug also misfired here.
        sat_formula = CNFFormula(4)
        sat_formula.add_clause([-1, 2])
        sat_formula.add_clause([3, 4])
        sat_solver = CDCLSolver(sat_formula,
                                heuristic=FixedOrderHeuristic())
        assert sat_solver.solve(assumptions=[1, 2]).is_sat


class TestLubySequence:
    """Bug: the first luby() implementation produced negative shift
    counts (index arithmetic off by one in the sub-block recursion)."""

    def test_first_thirty_values(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
                    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i + 1) for i in range(30)] == expected

    def test_block_boundaries(self):
        assert luby(31) == 16
        assert luby(63) == 32


class TestSubsumptionIndexing:
    """Bug: the subsumption pass looked for subsumers only in the
    occurrence list of the clause's rarest literal; a subsumer need
    not contain that literal, so subsumed clauses survived."""

    def test_subsumer_without_rarest_literal(self):
        formula = CNFFormula(3)
        formula.add_clause([1])              # subsumes both below
        formula.add_clause([1, 2])
        formula.add_clause([1, 2, 3])        # 3 is the rarest literal
        result = remove_subsumed(formula)
        assert result.formula.num_clauses == 1


class TestLearningDisabledAntecedent:
    """Bug: with learning disabled, the re-asserted literal was given
    the *conflicting clause* as its reason; later conflict analyses
    resolved on a clause that does not imply the literal, potentially
    deriving non-implicates."""

    @pytest.mark.parametrize("seed", range(6))
    def test_no_learning_soundness(self, seed):
        from repro.cnf.generators import random_ksat_at_ratio
        formula = random_ksat_at_ratio(8, ratio=4.3, seed=seed)
        expected = brute_force_status(formula)
        result = CDCLSolver(formula, learning=False).solve()
        assert result.is_sat == (expected == "SAT")


class TestProofUnitOrdering:
    """Bug: learned unit clauses were appended to the proof at the end
    of the run instead of at derivation time, so later steps that
    relied on them failed reverse-unit-propagation checking."""

    def test_units_interleaved_in_proof(self):
        from repro.solvers.proof import check_rup_proof, solve_with_proof
        formula = pigeonhole(5)
        result, proof = solve_with_proof(formula, deletion="size",
                                         deletion_bound=5,
                                         deletion_interval=20)
        assert result.is_unsat
        assert check_rup_proof(formula, proof).valid


class TestSweepFixpoint:
    """Bug: one sweep pass left constants stranded by its own folding
    (liveness was computed before constant propagation), so optimized
    netlists kept dead nodes."""

    def test_stranded_constant_removed(self):
        from repro.apps.redundancy import remove_redundancy
        from repro.circuits.faults import StuckAtFault
        from repro.circuits.library import redundant_or_chain
        optimized = remove_redundancy(redundant_or_chain(),
                                      StuckAtFault("ab", False))
        assert all(not node.gate_type.value.startswith("CONST")
                   for node in optimized), "stranded constant"


class TestXorArityOneEncoding:
    """Bug class guarded here: gate_cnf_clauses for XOR with a single
    input must behave as a buffer (parity of one bit)."""

    def test_single_input_xor(self):
        import itertools
        from repro.circuits.gates import GateType, gate_cnf_clauses
        clauses = gate_cnf_clauses(GateType.XOR, 2, [1])
        for a, x in itertools.product([False, True], repeat=2):
            model = {1: a, 2: x}
            satisfied = all(
                any(model[abs(lit)] == (lit > 0) for lit in clause)
                for clause in clauses)
            assert satisfied == (x == a)
