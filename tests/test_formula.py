"""Unit tests for repro.cnf.formula."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula


class TestVariables:
    def test_new_var_sequence(self):
        formula = CNFFormula()
        assert formula.new_var() == 1
        assert formula.new_var() == 2
        assert formula.num_vars == 2

    def test_new_vars_bulk(self):
        formula = CNFFormula()
        assert formula.new_vars(3) == [1, 2, 3]

    def test_universe_grows_with_clauses(self):
        formula = CNFFormula()
        formula.add_clause([7, -3])
        assert formula.num_vars == 7

    def test_negative_num_vars_rejected(self):
        with pytest.raises(ValueError):
            CNFFormula(-1)

    def test_names(self):
        formula = CNFFormula()
        var = formula.new_var("clk")
        assert formula.name_of(var) == "clk"
        formula.set_name(var, "clock")
        assert formula.name_of(var) == "clock"

    def test_set_name_outside_universe(self):
        with pytest.raises(ValueError):
            CNFFormula(2).set_name(5, "x")

    def test_variables_range(self):
        assert list(CNFFormula(3).variables()) == [1, 2, 3]


class TestClauses:
    def test_add_clause_from_list(self):
        formula = CNFFormula()
        stored = formula.add_clause([1, -2])
        assert isinstance(stored, Clause)
        assert formula.num_clauses == 1

    def test_add_clause_object(self):
        formula = CNFFormula()
        clause = Clause([3])
        assert formula.add_clause(clause) is clause

    def test_duplicates_preserved(self):
        formula = CNFFormula()
        formula.add_clause([1, 2])
        formula.add_clause([1, 2])
        assert formula.num_clauses == 2
        assert len(formula.clause_set()) == 1

    def test_add_clauses(self):
        formula = CNFFormula()
        formula.add_clauses([[1], [2], [-1, -2]])
        assert formula.num_clauses == 3

    def test_iteration_order(self):
        formula = CNFFormula()
        formula.add_clause([1])
        formula.add_clause([2])
        assert [list(c) for c in formula] == [[1], [2]]


class TestEvaluation:
    def test_satisfied(self, tiny_sat_formula):
        model = {1: False, 2: True, 3: True}
        assert tiny_sat_formula.evaluate(model) is True
        assert tiny_sat_formula.is_satisfied_by(model)

    def test_falsified(self, tiny_sat_formula):
        assert tiny_sat_formula.evaluate(
            {1: True, 2: False, 3: True}) is False

    def test_undetermined(self, tiny_sat_formula):
        assert tiny_sat_formula.evaluate({2: True}) is None

    def test_accepts_assignment_object(self, tiny_sat_formula):
        model = Assignment({1: False, 2: True, 3: True})
        assert tiny_sat_formula.evaluate(model) is True

    def test_empty_formula_is_true(self):
        assert CNFFormula(2).evaluate({}) is True


class TestUtilities:
    def test_literal_occurrences(self):
        formula = CNFFormula()
        formula.add_clause([1, 2])
        formula.add_clause([1, -2])
        counts = formula.literal_occurrences()
        assert counts[1] == 2
        assert counts[2] == 1
        assert counts[-2] == 1

    def test_copy_independent(self, tiny_sat_formula):
        duplicate = tiny_sat_formula.copy()
        duplicate.add_clause([3])
        assert duplicate.num_clauses == tiny_sat_formula.num_clauses + 1

    def test_copy_preserves_names(self):
        formula = CNFFormula()
        formula.new_var("a")
        assert formula.copy().name_of(1) == "a"

    def test_map_variables(self):
        formula = CNFFormula()
        formula.add_clause([1, -2])
        mapped = formula.map_variables({2: 1})
        assert mapped.clauses[0] == Clause([1, -1])

    def test_equality(self):
        left = CNFFormula(2)
        left.add_clause([1, 2])
        right = CNFFormula(2)
        right.add_clause([2, 1])
        assert left == right

    def test_to_str(self):
        formula = CNFFormula()
        formula.add_clause([1, -2])
        formula.add_clause([2])
        assert formula.to_str() == "(x1 + x2') . (x2)"
