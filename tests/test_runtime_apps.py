"""Graceful degradation of the apps layer under tiny budgets.

ATPG, CEC and BMC must never raise on budget exhaustion: they return
partial reports with an explicit ``budget_exhausted`` flag.  Also
covers the portfolio sequential fallback honouring ``timeout`` and the
CLI's ``--timeout`` / ``--max-memory-mb`` plumbing.
"""

from __future__ import annotations

import time

import pytest

from repro.circuits.generators import ripple_carry_adder
from repro.runtime.budget import Budget
from repro.solvers.result import Status


class TestATPGDegradation:
    def test_zero_budget_aborts_all_faults_without_raising(self):
        from repro.apps.atpg import ATPGEngine, TestOutcome

        circuit = ripple_carry_adder(3)
        engine = ATPGEngine(circuit, fault_dropping=False,
                            budget=Budget(wall_seconds=0.0))
        report = engine.run()
        assert report.budget_exhausted
        assert report.results, "fault list must still be reported"
        assert all(r.outcome is TestOutcome.ABORTED
                   for r in report.results)

    def test_partial_budget_keeps_completed_results(self):
        from repro.apps.atpg import ATPGEngine, TestOutcome

        circuit = ripple_carry_adder(4)
        engine = ATPGEngine(circuit, fault_dropping=False,
                            budget=Budget(wall_seconds=0.5))
        report = engine.run()
        # Regardless of where the deadline lands, every fault is
        # accounted for and nothing raised.
        assert len(report.results) == len(engine.fault_list())
        if report.budget_exhausted:
            assert report.count(TestOutcome.ABORTED) > 0

    def test_unlimited_budget_matches_no_budget(self):
        from repro.apps.atpg import ATPGEngine

        circuit = ripple_carry_adder(2)
        plain = ATPGEngine(circuit).run()
        budgeted = ATPGEngine(circuit, budget=Budget()).run()
        assert not budgeted.budget_exhausted
        assert ([r.outcome for r in plain.results]
                == [r.outcome for r in budgeted.results])

    def test_incremental_atpg_degrades(self):
        from repro.apps.atpg import IncrementalATPG, TestOutcome

        circuit = ripple_carry_adder(3)
        engine = IncrementalATPG(circuit,
                                 budget=Budget(wall_seconds=0.0))
        report = engine.run()
        assert report.budget_exhausted
        assert all(r.outcome is TestOutcome.ABORTED
                   for r in report.results)


class TestCECDegradation:
    def test_conflict_starved_check_reports_unknown(self):
        from repro.apps.equivalence import check_equivalence

        a = ripple_carry_adder(4)
        b = ripple_carry_adder(4)
        report = check_equivalence(a, b, simulation_vectors=0,
                                   max_conflicts=None,
                                   budget=Budget(max_conflicts=1))
        assert report.equivalent is None
        assert report.budget_exhausted
        assert report.stats.conflicts <= 1

    def test_zero_deadline_reports_unknown(self):
        from repro.apps.equivalence import check_equivalence

        a = ripple_carry_adder(3)
        b = ripple_carry_adder(3)
        report = check_equivalence(a, b, simulation_vectors=0,
                                   budget=Budget(wall_seconds=0.0))
        assert report.equivalent is None
        assert report.budget_exhausted

    def test_roomy_budget_still_decides(self):
        from repro.apps.equivalence import check_equivalence

        a = ripple_carry_adder(2)
        b = ripple_carry_adder(2)
        report = check_equivalence(a, b,
                                   budget=Budget(wall_seconds=60.0))
        assert report.equivalent is True
        assert not report.budget_exhausted


class TestBMCDegradation:
    def test_zero_budget_proves_nothing_and_says_so(self):
        from repro.apps.bmc import check_safety
        from repro.circuits.generators import binary_counter

        circuit = binary_counter(3)
        result = check_safety(circuit, circuit.outputs[0],
                              max_depth=6,
                              budget=Budget(wall_seconds=0.0))
        assert result.budget_exhausted
        assert result.depths_proved == 0
        assert result.failure_depth is None

    def test_unknown_depth_is_not_counted_as_proved(self):
        from repro.apps.bmc import check_safety
        from repro.circuits.generators import binary_counter

        # A 1-conflict budget exhausts mid-sweep on a counter whose
        # MSB needs several frames to rise; whatever depth the solver
        # could not decide must not inflate depths_proved.
        circuit = binary_counter(4)
        result = check_safety(circuit, circuit.outputs[0],
                              max_depth=14,
                              budget=Budget(max_conflicts=1))
        if result.budget_exhausted:
            assert result.failure_depth is None
            assert result.depths_proved < 15
        else:           # budget happened to suffice: normal verdict
            assert result.failure_depth is not None \
                or result.depths_proved == 15

    def test_roomy_budget_finds_counterexample(self):
        from repro.apps.bmc import check_safety, verify_trace
        from repro.circuits.generators import binary_counter

        circuit = binary_counter(2)
        result = check_safety(circuit, circuit.outputs[0],
                              max_depth=8,
                              budget=Budget(wall_seconds=60.0))
        assert not result.budget_exhausted
        assert result.failure_depth is not None
        assert verify_trace(circuit, result, circuit.outputs[0])


class TestSequentialPortfolioTimeout:
    def test_processes_1_honours_timeout(self):
        """Satellite: the sequential fallback used to ignore
        ``timeout`` entirely; it must stop at the deadline."""
        from repro.cnf.generators import pigeonhole
        from repro.solvers.portfolio import (
            default_portfolio,
            solve_portfolio,
        )

        started = time.monotonic()
        result = solve_portfolio(pigeonhole(8), processes=1,
                                 configs=default_portfolio(4),
                                 timeout=0.5)
        elapsed = time.monotonic() - started
        assert result.status is Status.UNKNOWN
        assert elapsed < 5.0
        assert result.processes_used == 1

    def test_deadline_splits_across_configs(self):
        from repro.cnf.generators import pigeonhole
        from repro.solvers.portfolio import (
            default_portfolio,
            solve_portfolio,
        )

        # Hard instance, several configs: the scan must not give each
        # config the full deadline.
        started = time.monotonic()
        solve_portfolio(pigeonhole(9), processes=1,
                        configs=default_portfolio(6), timeout=0.6)
        assert time.monotonic() - started < 4.0


class TestCLIBudgetFlags:
    def test_solve_timeout_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.cnf.dimacs import save_dimacs
        from repro.cnf.generators import pigeonhole

        path = tmp_path / "php8.cnf"
        save_dimacs(pigeonhole(8), str(path))
        code = main(["solve", str(path), "--timeout", "0.2"])
        assert code == 0
        assert "UNKNOWN" in capsys.readouterr().out

    def test_solve_unlimited_still_works(self, tmp_path, capsys):
        from repro.cli import main
        from repro.cnf.dimacs import save_dimacs
        from repro.cnf.generators import pigeonhole

        path = tmp_path / "php3.cnf"
        save_dimacs(pigeonhole(3), str(path))
        assert main(["solve", str(path)]) == 20

    def test_bmc_timeout_flag(self, tmp_path, capsys):
        from repro.circuits.bench_format import save_bench
        from repro.circuits.generators import binary_counter
        from repro.cli import main

        circuit = binary_counter(3)
        path = tmp_path / "counter.bench"
        save_bench(circuit, str(path))
        code = main(["bmc", str(path), "--depth", "6",
                     "--timeout", "0.0"])
        assert code == 2
        assert "budget exhausted" in capsys.readouterr().out

    def test_cec_timeout_flag(self, tmp_path, capsys):
        from repro.circuits.bench_format import save_bench
        from repro.cli import main

        a = ripple_carry_adder(3)
        b = ripple_carry_adder(3)
        pa, pb = tmp_path / "a.bench", tmp_path / "b.bench"
        save_bench(a, str(pa))
        save_bench(b, str(pb))
        code = main(["cec", str(pa), str(pb), "--timeout", "0.0"])
        assert code == 2
        assert "UNKNOWN" in capsys.readouterr().out

    def test_atpg_timeout_flag(self, tmp_path, capsys):
        from repro.circuits.bench_format import save_bench
        from repro.cli import main

        path = tmp_path / "adder.bench"
        save_bench(ripple_carry_adder(3), str(path))
        code = main(["atpg", str(path), "--timeout", "0.0"])
        assert code == 1                       # aborted faults remain
        assert "partial" in capsys.readouterr().out

    def test_memory_flag_parses(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["solve", "x.cnf", "--max-memory-mb", "512"])
        assert args.max_memory_mb == 512.0
        assert args.timeout is None
