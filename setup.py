"""Legacy setuptools shim.

The offline build environment has no ``wheel`` package, so PEP 660
editable installs cannot build; this file lets ``pip install -e .``
fall back to ``setup.py develop``.  All metadata lives in
pyproject.toml / here, kept deliberately minimal.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("SAT for EDA: reproduction of Marques-Silva & "
                 "Sakallah, DAC 2000"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
