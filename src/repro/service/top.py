"""``repro top``: a live terminal dashboard for the solve service.

Curses-free by design -- one ANSI clear-and-home per refresh, plain
text otherwise -- so it works in any terminal, over ssh, and its
renderer is a pure function tests call directly.  Each tick polls
STATUS (queues, deficits, workers, active jobs, cache, job counters)
and the ``metrics`` op (for per-tenant solve-latency averages), and
derives throughput from the done-counter delta between refreshes.
"""

from __future__ import annotations

import re
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["parse_exposition", "render_dashboard", "run_top"]

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>[^ ]+)$")
_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def parse_exposition(text: str
                     ) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Prometheus text -> ``{name: [(labels, value), ...]}``.

    A deliberately small reader for the dashboard's own scrapes; it
    skips comments and anything unparseable (the full format checker
    lives in :func:`repro.obs.export.lint_exposition`).
    """
    series: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        labels = dict(_PAIR.findall(match.group("labels") or ""))
        series.setdefault(match.group("name"), []).append(
            (labels, value))
    return series


def _tenant_values(series, name: str) -> Dict[str, float]:
    return {labels.get("tenant", ""): value
            for labels, value in series.get(name, [])}


def render_dashboard(status: Dict[str, Any],
                     metrics_text: str = "",
                     throughput: Optional[float] = None,
                     now: Optional[float] = None) -> str:
    """Render one dashboard frame from a STATUS response (and,
    optionally, a metrics scrape) as plain text."""
    series = parse_exposition(metrics_text)
    lines: List[str] = []
    uptime = status.get("uptime_seconds", 0.0)
    workers = status.get("workers", {})
    state = "DRAINING" if status.get("draining") else "serving"
    lines.append(
        f"repro top -- {state}, up {uptime:,.0f}s | workers "
        f"{workers.get('busy', 0)}/{workers.get('max', 0)} busy"
        + (f" | {throughput:.2f} jobs/s" if throughput is not None
           else ""))

    jobs = status.get("jobs", {})
    cache = status.get("cache", {})
    hit_rate = cache.get("hit_rate")
    lines.append(
        f"jobs: {jobs.get('done', 0)} done, "
        f"{jobs.get('rejected', 0)} rejected, "
        f"{jobs.get('retries', 0)} retries, "
        f"{jobs.get('cancelled', 0)} cancelled | cache: "
        f"{cache.get('size', 0)}/{cache.get('capacity', 0)} entries, "
        f"{cache.get('hits', 0)} hits"
        + (f" ({100.0 * hit_rate:.0f}%)"
           if isinstance(hit_rate, (int, float)) else ""))

    journal = status.get("journal") or {}
    if journal.get("enabled"):
        line = (f"journal: {journal.get('records_written', 0)} "
                f"record(s) written, "
                f"{journal.get('recovered', 0)} recovered, "
                f"{journal.get('terminal', 0)} terminal held")
        errors = journal.get("write_errors", 0)
        if errors:
            line += f", {errors} WRITE ERROR(S)"
        lines.append(line)

    queues = status.get("queues", {})
    deficits = status.get("deficits", {})
    latency_sum = _tenant_values(series,
                                 "service_solve_latency_seconds_sum")
    latency_count = _tenant_values(
        series, "service_solve_latency_seconds_count")
    tenants = sorted(set(queues) | set(deficits)
                     | set(latency_count))
    if tenants:
        lines.append("")
        lines.append(f"{'tenant':<16} {'queued':>6} {'deficit':>8} "
                     f"{'solved':>7} {'avg s':>8}")
        for tenant in tenants:
            count = latency_count.get(tenant, 0.0)
            avg = (latency_sum.get(tenant, 0.0) / count
                   if count else None)
            lines.append(
                f"{tenant:<16} {queues.get(tenant, 0):>6} "
                f"{deficits.get(tenant, 0.0):>8.2f} "
                f"{int(count):>7} "
                + (f"{avg:>8.3f}" if avg is not None else f"{'-':>8}"))

    active = status.get("active", [])
    lines.append("")
    if active:
        lines.append(f"active jobs ({len(active)}):")
        for entry in active:
            beat = entry.get("heartbeat_age")
            lines.append(
                f"  {entry.get('id', '?'):<24} "
                f"[{entry.get('tenant', '?')}] "
                f"running {entry.get('running_seconds', 0.0):.1f}s"
                + (f", heartbeat {beat:.1f}s ago"
                   if isinstance(beat, (int, float)) else ""))
    else:
        lines.append("active jobs: none")
    return "\n".join(lines)


def run_top(client, interval: float = 2.0,
            iterations: Optional[int] = None,
            clear: bool = True, out=None) -> int:
    """Poll *client* (anything with ``status()``/``metrics()``) and
    repaint until interrupted or *iterations* refreshes have run.

    Returns 0; a lost connection mid-loop returns 3 after reporting.
    """
    import sys
    out = out or sys.stdout
    last: Optional[Tuple[float, int]] = None   # (time, jobs done)
    ticks = 0
    try:
        while iterations is None or ticks < iterations:
            try:
                status = client.status()
                metrics_text = client.metrics().get("text", "")
            except (ConnectionError, OSError) as exc:
                out.write(f"connection lost: {exc}\n")
                return 3
            now = time.monotonic()
            done = status.get("jobs", {}).get("done", 0)
            throughput = None
            if last is not None and now > last[0]:
                throughput = max(0.0, (done - last[1])
                                 / (now - last[0]))
            last = (now, done)
            frame = render_dashboard(status, metrics_text, throughput)
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(frame + "\n")
            out.flush()
            ticks += 1
            if iterations is not None and ticks >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
