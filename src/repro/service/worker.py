"""The service's solve worker: one process per job attempt.

``_job_worker_main`` is the picklable entry point of a worker
process.  It mirrors the portfolio worker
(:func:`repro.runtime.supervisor._worker_main`) but is keyed by job
id rather than worker index, writes its heartbeat to a dedicated
``multiprocessing.Value`` and runs with a low cooperative-checkpoint
interval, because service jobs are frequently small: a worker that
checkpoints only every 4096 propagations would finish an easy
instance without ever heartbeating, reporting progress, or honouring
a mid-job fault.

Payloads over the worker's private pipe:

* ``("progress", job_id, attempt, elapsed, stats_dict, extras)`` --
  the snapshot the server keeps as the job's last-known partial state
  (returned to the client when every attempt fails, and relayed as a
  ``progress`` frame to clients that submitted with ``stream:
  true``).  *extras* carries instantaneous readings that have no
  ``SolverStats`` field -- currently ``arena_fill``;
* ``("checkpoint", job_id, attempt, blob)`` -- a size-bounded,
  checksummed search-state snapshot (:mod:`repro.runtime.checkpoint`)
  sent at the same cadence as progress; the server holds the latest
  blob and seeds the next retry attempt from it (warm restart);
* ``("result", job_id, attempt, status_name, model, stats_dict)`` --
  the terminal payload; *model* is ``{var: bool}`` or None.

Each attempt attaches a :class:`~repro.obs.metrics.SearchMetrics` so
search-shape histograms ride home inside ``stats_dict["metrics"]``
(both mid-solve and terminal), and -- when the server passes a
*trace_path* -- its own :class:`~repro.obs.trace.Tracer` whose
*context* stamps every span/event with ``job``/``attempt``, writing a
per-attempt JSONL file that ``repro profile`` merges with the
server's trace into one correlated timeline.

Scripted faults (:class:`repro.runtime.faults.ServiceFaultPlan`):
``crash`` dies via ``os._exit`` before touching the formula; ``hang``
spins without heartbeating; ``poison`` sends a malformed payload and
exits cleanly; ``kill_midjob`` solves normally until
*kill_after_checkpoints* cooperative checkpoints have passed, pushes
one final progress snapshot so the server demonstrably holds partial
state, then dies -- the degradation path the tentpole exists to make
testable.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from repro.cnf.formula import CNFFormula
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import try_load_checkpoint
from repro.runtime.faults import (CRASH, HANG, KILL_MIDJOB, POISON,
                                  corrupt_blob)
from repro.runtime.supervisor import stats_to_dict

#: Exit code of a scripted mid-job kill (distinct from the portfolio
#: crash fault's 17, for post-mortem clarity in process tables).
_KILL_EXIT = 23


def _job_worker_main(job_id: str, attempt: int,
                     clause_lits: List[Tuple[int, ...]], num_vars: int,
                     config, budget: Optional[Budget],
                     heartbeat, channel,
                     fault_action: Optional[str],
                     kill_after_checkpoints: int,
                     progress_interval: float,
                     proof_path: Optional[str],
                     check_interval: int,
                     trace_path: Optional[str] = None,
                     resume_blob: Optional[bytes] = None,
                     corrupt_checkpoints: bool = False) -> None:
    """Solve one job attempt and report over *channel* (see module
    docstring for payload shapes and fault semantics).

    *resume_blob* is the previous attempt's last piggybacked
    checkpoint: a valid one warm-starts this attempt, a corrupt or
    truncated one is rejected by the checksummed loader and this
    attempt starts cold (never fails).  With *corrupt_checkpoints*
    (the ``corrupt_checkpoint`` fault modifier) every blob this
    attempt sends is deterministically damaged first.
    """
    if fault_action == CRASH:
        os._exit(17)
    if fault_action == HANG:
        while True:           # pragma: no cover - killed externally
            time.sleep(0.05)
    if fault_action == POISON:
        # Wrong shape AND a bogus status name: must fail the server's
        # payload audit, never parse as a verdict.
        channel.send(("garbage", job_id, "NOT_A_STATUS"))
        channel.close()
        return

    heartbeat.value = time.monotonic()
    started = time.monotonic()
    formula = CNFFormula(num_vars=num_vars, clauses=clause_lits)
    resume_from = try_load_checkpoint(resume_blob)
    build_kwargs = {} if resume_from is None \
        else {"resume_from": resume_from}
    solver = config.build_solver(formula, budget=budget, **build_kwargs)
    solver.checkpoint_interval = check_interval
    from repro.obs.metrics import SearchMetrics
    solver.metrics = SearchMetrics()
    tracer = None
    if trace_path is not None:
        from repro.obs.trace import JsonlSink, Tracer
        # Context attempts are 1-based, matching the protocol's
        # progress frames and the server's service.retry events.
        tracer = Tracer(JsonlSink(trace_path),
                        context={"job": job_id,
                                 "attempt": attempt + 1})
        tracer.emit_meta()
        solver.tracer = tracer
    sink = None
    if proof_path is not None:
        from repro.verify.drat import FileProofSink, attach_proof_stream
        sink = attach_proof_stream(solver, FileProofSink(proof_path))

    last_sent = [started]
    ticks = [0]

    def send_progress(now: float) -> None:
        # Fold the live search-shape histograms into the stats dict so
        # mid-solve snapshots (not just the terminal result) carry
        # them home for the service-wide solver aggregate.
        solver.stats.metrics = solver.metrics.snapshot()
        extras = {}
        arena = getattr(solver, "arena", None)
        if arena is not None:
            extras["arena_fill"] = round(arena.fill_ratio(), 4)
        try:
            channel.send(("progress", job_id, attempt, now - started,
                          stats_to_dict(solver.stats), extras))
        except (BrokenPipeError, OSError):
            pass              # server gone; keep solving regardless

    def send_checkpoint() -> None:
        # Piggyback the transferable search state on the progress
        # pipe; the server holds the latest blob for warm retries.
        blob = solver.export_checkpoint().serialize_bounded()
        if blob is None:
            return
        if corrupt_checkpoints:
            blob = corrupt_blob(blob)
        try:
            channel.send(("checkpoint", job_id, attempt, blob))
        except (BrokenPipeError, OSError):
            pass              # server gone; keep solving regardless

    def checkpoint() -> None:
        now = time.monotonic()
        heartbeat.value = now
        ticks[0] += 1
        if now - last_sent[0] >= progress_interval:
            last_sent[0] = now
            send_progress(now)
            send_checkpoint()
        if (fault_action == KILL_MIDJOB
                and ticks[0] >= kill_after_checkpoints):
            # Guarantee the server holds a partial snapshot (and a
            # checkpoint to warm the retry) before the death it is
            # about to observe.
            send_progress(now)
            send_checkpoint()
            os._exit(_KILL_EXIT)

    solver.on_checkpoint = checkpoint
    result = solver.solve()
    if sink is not None:
        from repro.solvers.result import Status
        sink.close()
        if result.status is not Status.UNSATISFIABLE:
            try:
                os.remove(proof_path)
            except OSError:
                pass
    heartbeat.value = time.monotonic()
    if tracer is not None:
        tracer.close()
    model: Optional[Dict[int, bool]] = None
    if result.assignment is not None:
        model = {var: result.assignment.value_of(var)
                 for var in result.assignment.assigned_variables()}
    channel.send(("result", job_id, attempt, result.status.name,
                  model, stats_to_dict(result.stats)))
    channel.close()
