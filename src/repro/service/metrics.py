"""Per-tenant service metrics, built on the ``repro.obs`` registry.

The admission/WDRR/retry/cache machinery of :mod:`repro.service`
already *makes* every interesting decision; this module makes them
measurable.  A single :class:`ServiceMetrics` lives on the server and
records, per tenant: queue-wait and solve-latency histograms (the two
halves of what a client experiences), submit/reject/retry/result
counters, WDRR deficit and queue-depth gauges, plus service-wide
worker-state gauges and result-cache counters.  Worker-side
:class:`~repro.obs.metrics.SearchMetrics` snapshots riding home in
result stats are folded in with
:func:`~repro.obs.metrics.merge_snapshots`, so one scrape shows both
the service's queueing behavior and the aggregate *shape* of the
search it paid for.

Per-tenant series use the label-in-name convention the exposition
renderer understands (``service.queue_wait_seconds{tenant="acme"}``);
the registry itself stays a flat name->metric dict.  Everything is
snapshot-based and JSON-safe, so ``snapshot()`` is also what the
``metrics`` protocol op renders with
:func:`~repro.obs.export.render_prometheus`.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, merge_snapshots

__all__ = ["ServiceMetrics", "LATENCY_BOUNDS"]

#: Seconds buckets suiting both sub-millisecond cache hits and
#: minutes-long certified solves.
LATENCY_BOUNDS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                  1.0, 5.0, 10.0, 30.0, 60.0)


def _labeled(name: str, **labels: str) -> str:
    pairs = ",".join(f'{key}="{value}"'
                     for key, value in sorted(labels.items()))
    return f"{name}{{{pairs}}}"


class ServiceMetrics:
    """Recorder + snapshotter for the solve service's metrics."""

    def __init__(self):
        self.registry = MetricsRegistry()
        self._solver: Dict[str, Dict[str, Any]] = {}

    # -- per-tenant recording ------------------------------------------

    def record_submit(self, tenant: str) -> None:
        """Count one accepted-for-queueing submission."""
        self.registry.counter(
            _labeled("service.submits", tenant=tenant)).inc()

    def record_reject(self, tenant: str, code: str) -> None:
        """Count one admission/drain rejection."""
        self.registry.counter(
            _labeled("service.rejects", tenant=tenant,
                     code=code)).inc()

    def record_queue_wait(self, tenant: str, seconds: float) -> None:
        """Observe submit->dispatch latency for one job."""
        self.registry.histogram(
            _labeled("service.queue_wait_seconds", tenant=tenant),
            bounds=LATENCY_BOUNDS).observe(seconds)

    def record_result(self, tenant: str, status: str,
                      wall_seconds: float, cached: bool) -> None:
        """Observe one terminal result and its end-to-end latency."""
        self.registry.counter(
            _labeled("service.results", tenant=tenant,
                     status=str(status).lower())).inc()
        self.registry.histogram(
            _labeled("service.solve_latency_seconds", tenant=tenant),
            bounds=LATENCY_BOUNDS).observe(wall_seconds)
        if cached:
            self.registry.counter(
                _labeled("service.cached_results",
                         tenant=tenant)).inc()

    def record_retry(self, tenant: str,
                     warm: Optional[bool] = None) -> None:
        """Count one crash/hang/poison retry.

        *warm* (when known) additionally classifies the respawn:
        ``True`` means the retry was seeded from a piggybacked search
        checkpoint, ``False`` means it started cold -- the ratio is
        the health signal of the crash-recovery path (a warm rate of
        zero under mid-job kills means checkpoints never arrive or
        never validate).
        """
        self.registry.counter(
            _labeled("service.retries", tenant=tenant)).inc()
        if warm is not None:
            name = ("service.warm_retries" if warm
                    else "service.cold_retries")
            self.registry.counter(_labeled(name, tenant=tenant)).inc()

    def record_checkpoint(self, tenant: str) -> None:
        """Count one checkpoint blob received from a worker."""
        self.registry.counter(
            _labeled("service.checkpoints_received",
                     tenant=tenant)).inc()

    def record_journal_record(self, kind: str) -> None:
        """Count one journal append (kind: submitted | result)."""
        self.registry.counter(
            _labeled("service.journal_records", kind=kind)).inc()

    def record_progress_frame(self, tenant: str) -> None:
        """Count one progress frame streamed to a client."""
        self.registry.counter(
            _labeled("service.progress_frames", tenant=tenant)).inc()

    # -- point-in-time state -------------------------------------------

    def set_queues(self, depths: Mapping[str, int],
                   deficits: Mapping[str, float]) -> None:
        """Refresh per-tenant queue-depth and WDRR-deficit gauges."""
        for tenant, depth in depths.items():
            self.registry.gauge(
                _labeled("service.queue_depth",
                         tenant=tenant)).set(depth)
        for tenant, deficit in deficits.items():
            self.registry.gauge(
                _labeled("service.wdrr_deficit",
                         tenant=tenant)).set(deficit)

    def set_workers(self, busy: int, capacity: int) -> None:
        """Refresh the worker-state gauges."""
        self.registry.gauge("service.workers_busy").set(busy)
        self.registry.gauge("service.workers_max").set(capacity)

    def set_journal(self, recovered: int, terminal: int,
                    write_errors: int) -> None:
        """Refresh the journal-state gauges: jobs re-enqueued by
        replay at startup, terminal responses held for idempotent
        re-serving, and journal write failures (durability holes)."""
        self.registry.gauge(
            "service.journal_recovered_jobs").set(recovered)
        self.registry.gauge(
            "service.journal_terminal_jobs").set(terminal)
        self.registry.gauge(
            "service.journal_write_errors").set(write_errors)

    def set_cache(self, stats: Mapping[str, Any]) -> None:
        """Refresh cache counters/gauges from ``ResultCache.stats()``.

        The cache keeps its own authoritative totals, so its
        monotonically growing hits/misses/evictions are *assigned*
        into counters here (keeping their Prometheus type) rather
        than re-counted.
        """
        for key in ("hits", "misses", "evictions"):
            value = stats.get(key)
            if isinstance(value, int):
                self.registry.counter(
                    f"service.cache.{key}").value = value
        for key in ("size", "capacity"):
            value = stats.get(key)
            if isinstance(value, (int, float)):
                self.registry.gauge(
                    f"service.cache.{key}").set(value)
        rate = stats.get("hit_rate")
        if isinstance(rate, (int, float)):
            self.registry.gauge("service.cache.hit_rate").set(rate)

    # -- solver search-shape roll-up -----------------------------------

    def absorb_solver_metrics(
            self, snapshot: Optional[Mapping[str, Any]]) -> None:
        """Fold one worker's ``SearchMetrics`` snapshot into the
        service-wide solver aggregate (histograms accumulate)."""
        if not snapshot:
            return
        self._solver = merge_snapshots(self._solver, dict(snapshot))

    # -- exposition ----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """One merged snapshot: service series plus the solver
        aggregate under a ``solver.`` prefix (render-ready)."""
        merged = self.registry.snapshot()
        for name, snap in self._solver.items():
            merged[f"solver.{name}"] = dict(snap)
        return merged
