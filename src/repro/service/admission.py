"""Admission control and per-tenant fairness for the solve service.

A SAT service melts down in a characteristic way: one tenant submits a
burst of hard instances, the queue grows without bound, every later
job times out in line, and the eventual timeouts look like solver
failures.  The defence is boring and explicit:

* **bounded queues per tenant** -- a tenant that floods the service
  fills only its own queue and starts receiving
  ``REJECTED_OVERLOAD``, while other tenants' queues stay shallow;
* **weighted deficit round-robin dispatch** -- worker slots rotate
  across tenants in proportion to configured weights, so a saturating
  tenant cannot starve the rest;
* **hardness shedding** -- a static estimate from the formula's size
  and clause/variable ratio (hardest near the random-3-SAT phase
  transition at ~4.26, the paper's own benchmark regime) rejects jobs
  that would likely pin a worker past any useful deadline.  Rejecting
  up front with an explicit code beats accepting work that is doomed
  to burn its budget.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional

#: Clause/variable ratio where random 3-SAT is empirically hardest.
PHASE_TRANSITION_RATIO = 4.26


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the solve service (one frozen value object).

    The defaults are sized for tests and small deployments; the CLI
    (``repro serve``) exposes the load-bearing ones as flags.
    """

    #: Concurrent worker processes (solve parallelism).
    max_workers: int = 2
    #: Bound of each tenant's queue; a full queue sheds load.
    queue_depth: int = 8
    #: Dispatch weight per tenant (unlisted tenants weigh 1.0).
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    #: Reject jobs whose :func:`estimate_hardness` exceeds this
    #: (None disables hardness shedding).
    max_hardness: Optional[float] = 5000.0
    #: Wall-clock budget for jobs that do not bring their own.
    default_deadline: float = 30.0
    #: Seconds the drain phase of a shutdown may take before
    #: still-running jobs are cancelled.
    grace_seconds: float = 10.0
    #: Attempts per job (1 initial + retries after crash/poison).
    max_attempts: int = 3
    #: Base of the bounded exponential retry backoff...
    backoff_seconds: float = 0.05
    #: ...and its cap.
    backoff_cap: float = 1.0
    #: Heartbeat silence after which a worker is declared hung.
    hang_timeout: float = 5.0
    #: Server-side supervision poll period.
    poll_interval: float = 0.02
    #: Seconds between a worker's progress snapshots over its pipe.
    progress_interval: float = 0.1
    #: Minimum seconds between two ``progress`` frames streamed to a
    #: client per job (server-side throttle; worker snapshots arriving
    #: denser than this are still folded into STATUS, just not
    #: relayed).  ``0`` relays every snapshot.
    stream_interval: float = 0.25
    #: Work units between worker cooperative checkpoints.  Far lower
    #: than the engines' default: service jobs are often small, and
    #: heartbeats/fault hooks must fire even on easy instances.
    worker_check_interval: int = 256
    #: Result-cache capacity (entries); 0 disables caching.
    cache_size: int = 256

    def __post_init__(self):
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        object.__setattr__(self, "tenant_weights",
                           dict(self.tenant_weights))
        for tenant, weight in self.tenant_weights.items():
            if weight <= 0:
                raise ValueError(
                    f"tenant weight for {tenant!r} must be > 0")

    def weight(self, tenant: str) -> float:
        """Dispatch weight of *tenant* (1.0 unless configured)."""
        return self.tenant_weights.get(tenant, 1.0)


def estimate_hardness(num_vars: int, num_clauses: int) -> float:
    """Static difficulty estimate of a CNF instance.

    ``num_vars`` scaled by closeness of the clause/variable ratio to
    the random-3-SAT phase transition: under- and over-constrained
    formulas of the same size are typically decided far faster than
    critically constrained ones.  This is a *shedding heuristic*, not
    a predictor -- it only has to be monotone enough that "enormous
    and critically constrained" scores worst.  Empty formulas score 0.
    """
    if num_vars <= 0:
        return 0.0
    ratio = num_clauses / num_vars
    peak = math.exp(-((ratio - PHASE_TRANSITION_RATIO) ** 2) / 2.0)
    return num_vars * (0.25 + peak)


class TenantQueues:
    """Bounded per-tenant FIFO queues with weighted deficit
    round-robin dispatch.

    ``push`` refuses work beyond ``depth`` per tenant (the caller
    sheds it with ``REJECTED_OVERLOAD``); ``next_job`` rotates over
    tenants, granting each ``weight`` units of deficit per rotation
    and dispatching one job per whole unit -- the classic DRR
    discipline, so over time tenants receive worker slots
    proportionally to their weights regardless of queue lengths.
    """

    def __init__(self, depth: int, config: ServiceConfig):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self._depth = depth
        self._config = config
        self._queues: "OrderedDict[str, Deque[Any]]" = OrderedDict()
        self._deficit: Dict[str, float] = {}

    def push(self, tenant: str, job: Any) -> bool:
        """Enqueue *job* for *tenant*; False when its queue is full."""
        queue = self._queues.get(tenant)
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
            self._deficit.setdefault(tenant, 0.0)
        if len(queue) >= self._depth:
            return False
        queue.append(job)
        return True

    def next_job(self) -> Optional[Any]:
        """Dequeue the next job under the DRR discipline, or None."""
        active = [tenant for tenant, queue in self._queues.items()
                  if queue]
        if not active:
            return None
        # Idle tenants forfeit accumulated deficit (standard DRR:
        # credit must not be bankable across idle periods, or a
        # returning tenant could burst past its weight).
        for tenant in self._queues:
            if not self._queues[tenant]:
                self._deficit[tenant] = 0.0
        # Rotate until some tenant's deficit covers one job.  Each
        # full rotation adds every active tenant's weight, so this
        # terminates in O(1/min_weight) rotations.
        while True:
            for tenant in active:
                if self._deficit[tenant] >= 1.0:
                    self._deficit[tenant] -= 1.0
                    job = self._queues[tenant].popleft()
                    # Move the served tenant to the back so equal
                    # weights interleave instead of clustering.
                    self._queues.move_to_end(tenant)
                    return job
            for tenant in active:
                self._deficit[tenant] += self._config.weight(tenant)

    def depths(self) -> Dict[str, int]:
        """Current queue depth per tenant (empty tenants included)."""
        return {tenant: len(queue)
                for tenant, queue in self._queues.items()}

    def deficits(self) -> Dict[str, float]:
        """Current WDRR deficit per tenant (observability only)."""
        return {tenant: round(deficit, 4)
                for tenant, deficit in self._deficit.items()}

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())
