"""The asyncio solve server: fair admission, supervised workers,
retry with inherited budgets, graceful degradation and drain.

One :class:`SolveServer` owns the tenant queues, the result cache and
a pool of at most ``max_workers`` concurrently running solve
processes.  The control plane is a single asyncio event loop; the
data plane is one ``multiprocessing`` process per job *attempt*,
supervised from the loop through the same primitives the portfolio
supervisor uses (a private result pipe, a heartbeat cell, termination
on hang) but without blocking: the loop polls pipes with
``poll(0)`` between ``await asyncio.sleep(poll_interval)`` ticks, so
a hundred waiting clients cost nothing while two workers solve.

The failure contract, end to end:

* every accepted job receives exactly one terminal response --
  result, or an explicit rejection; a crash, hang or poisoned payload
  mid-job never strands the client;
* a retried attempt runs under ``Budget.remaining_after(elapsed,
  spent=...)`` of the *original* envelope -- wall clock shrinks by
  time already burned and counter caps shrink by the effort prior
  attempts demonstrably spent (their last progress snapshots), so
  retries can never exceed what the caller asked for;
* retry backoff is bounded-exponential with deterministic per-job
  jitter (seeded from the job id, so chaos runs replay exactly);
* when every attempt fails, the response is a *structured partial
  result*: status UNKNOWN, ``degraded`` true with the failure kind,
  and the last progress snapshot the dying worker reported;
* certified jobs (``certify``) must pass the independent DRUP check
  (UNSAT) or the model audit (SAT); a failed check *demotes* the
  answer to UNKNOWN with ``degraded_reason = "certification"`` --
  the service never forwards an answer it cannot defend;
* shutdown drains: queued and running jobs finish within
  ``grace_seconds``, stragglers are cancelled with a terminal
  degraded response, and new submissions are rejected with
  ``SHUTTING_DOWN`` throughout;
* retried attempts warm-start: workers piggyback checksummed search
  checkpoints (:mod:`repro.runtime.checkpoint`) on their progress
  pipe, the server keeps the latest blob per job and seeds the next
  attempt's worker from it -- a corrupt blob is rejected by the
  worker's loader and that attempt simply starts cold;
* with ``journal`` set, accepted submissions and terminal results are
  written ahead to an append-only JSONL file
  (:mod:`repro.service.journal`); a restarted server replays it,
  re-enqueueing accepted-but-unfinished jobs and re-serving terminal
  ones idempotently through the ``query`` op, so even a SIGKILL'd
  server loses no accepted job and flips no released verdict.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import random
import shutil
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro.cnf.canonical import clauses_key
from repro.cnf.formula import CNFFormula
from repro.runtime.budget import Budget
from repro.runtime.faults import SERVER_KILL_EXIT, ServiceFaultPlan
from repro.runtime.supervisor import (
    _DEATH_GRACE,
    _MAX_CHECKPOINT_BLOB,
    _is_checkpoint,
    _model_satisfies,
    stats_from_dict,
)
from repro.service.admission import (
    ServiceConfig,
    TenantQueues,
    estimate_hardness,
)
from repro.service.cache import ResultCache
from repro.service.journal import JobJournal, replay_journal
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    BAD_REQUEST,
    NOT_FOUND,
    REJECTED_OVERLOAD,
    SHUTTING_DOWN,
    ProtocolError,
    SubmitRequest,
    encode_message,
    decode_message,
    parse_submit,
)
from repro.service.worker import _job_worker_main
from repro.solvers.portfolio import PortfolioConfig
from repro.solvers.result import SolverStats, Status


class _Attempt:
    """Outcome of one supervised worker attempt."""

    __slots__ = ("kind", "status_name", "model", "stats", "partial",
                 "proof_path")

    def __init__(self, kind: str, status_name: Optional[str] = None,
                 model: Optional[Dict[int, bool]] = None,
                 stats: Optional[Dict[str, Any]] = None,
                 partial: Optional[Dict[str, Any]] = None,
                 proof_path: Optional[str] = None):
        self.kind = kind          # result | crash | hang | poison |
        self.status_name = status_name              # deadline
        self.model = model
        self.stats = stats
        self.partial = partial
        self.proof_path = proof_path


class _Job:
    """Server-side state of one accepted submission."""

    __slots__ = ("request", "key", "future", "submitted_at",
                 "dispatched_at", "heartbeat", "attempt_started",
                 "task", "partial", "send_frame", "stream_seq",
                 "last_frame_at", "last_frame_totals",
                 "last_checkpoint", "recovered")

    def __init__(self, request: SubmitRequest, key,
                 future: "asyncio.Future"):
        self.request = request
        self.key = key
        self.future = future
        self.submitted_at = time.monotonic()
        self.dispatched_at: Optional[float] = None
        self.heartbeat = None            # current attempt's mp.Value
        self.attempt_started: Optional[float] = None
        self.task: Optional["asyncio.Task"] = None
        self.partial: Optional[Dict[str, Any]] = None
        # Streaming state (set only for stream:true jobs on a
        # transport that can push frames).
        self.send_frame = None           # async callable or None
        self.stream_seq = 0
        self.last_frame_at: Optional[float] = None
        # (attempt, elapsed, propagations) of the last relayed frame,
        # the baseline for the propagations/s delta.
        self.last_frame_totals = (0, 0.0, 0)
        # Latest checkpoint blob piggybacked by any attempt's worker;
        # seeds the next retry attempt (warm restart).  Stored as-is:
        # the next worker's checksummed loader is the trust boundary.
        self.last_checkpoint: Optional[bytes] = None
        # True when this job was re-enqueued by journal replay (its
        # future has no submitting client awaiting it).
        self.recovered = False


class SolveServer:
    """See the module docstring for the full contract.

    Parameters
    ----------
    config:
        :class:`~repro.service.admission.ServiceConfig` tunables.
    fault_plan:
        scripted chaos (:class:`repro.runtime.faults.ServiceFaultPlan`)
        keyed by job id -- crash/kill/hang/poison execute inside the
        worker, delays stall the server's response.
    solver_config:
        the engine configuration jobs run under (default: a plain
        VSIDS/luby CDCL).  Retried attempts run its ``perturbed``
        variant, exactly like portfolio respawns.
    tracer:
        optional :class:`repro.obs.trace.Tracer`; the service emits
        ``service.submit`` / ``service.reject`` / ``service.dispatch``
        / ``service.retry`` / ``service.progress`` /
        ``service.result`` / ``service.metrics`` /
        ``service.shutdown`` events.
    worker_trace_dir:
        optional directory; when set, every worker attempt writes its
        own JSONL trace (``<job>-a<attempt>.jsonl``) there, stamped
        with ``job``/``attempt`` context so ``repro profile`` can
        merge them with the server's trace.
    journal:
        optional path to the append-only JSONL job journal.  Accepted
        submissions and terminal results are written ahead; on
        ``start()`` an existing journal is replayed -- pending jobs
        re-enqueue, terminal ones are re-served idempotently via the
        ``query`` op, and the result cache is re-seeded so cached
        replays stay byte-identical across restarts.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, *,
                 fault_plan: Optional[ServiceFaultPlan] = None,
                 solver_config: Optional[PortfolioConfig] = None,
                 tracer=None, worker_trace_dir: Optional[str] = None,
                 journal: Optional[str] = None):
        self.config = config or ServiceConfig()
        self.fault_plan = fault_plan
        self.tracer = tracer
        self.worker_trace_dir = worker_trace_dir
        self.metrics = ServiceMetrics()
        self.solver_config = solver_config or PortfolioConfig(
            name="service-cdcl")
        self._queues = TenantQueues(self.config.queue_depth, self.config)
        self._cache = ResultCache(self.config.cache_size)
        self._active: Dict[str, _Job] = {}
        self._pending_ids: set = set()
        self._slots = asyncio.Semaphore(self.config.max_workers)
        self._wake = asyncio.Event()
        self._draining = False
        self._closed = False
        self._dispatcher: Optional["asyncio.Task"] = None
        self._proof_dir: Optional[str] = None
        self._jobs_done = 0
        self._jobs_rejected = 0
        self._retries = 0
        self._cancelled = 0
        self._started_at = time.monotonic()
        # Crash recovery: durable journal + replayed state.
        self._journal = JobJournal(journal) if journal else None
        self._journal_replayed = journal is None
        self._terminal: Dict[str, Dict[str, Any]] = {}
        self._by_id: Dict[str, _Job] = {}
        self._recovered = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Arm the dispatcher (idempotent; requires a running loop).

        With a journal configured, the first call also replays it:
        futures need a running loop, so recovery cannot happen in
        ``__init__``.  ``handle_message`` awaits ``start()`` before
        dispatching any op, so a ``query`` arriving right after a
        restart deterministically sees the recovered state.
        """
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if not self._journal_replayed:
            self._journal_replayed = True
            self._recover_from_journal()

    def _recover_from_journal(self) -> None:
        """Replay the journal: re-serve terminal jobs, re-seed the
        cache, re-enqueue accepted-but-unfinished jobs."""
        replay = replay_journal(self._journal.path)
        self._terminal.update(replay.terminal)
        reseeded = 0
        for job_id, response in replay.terminal.items():
            raw = replay.requests.get(job_id)
            body = response.get("body")
            if raw is None or not isinstance(body, dict):
                continue
            try:
                request = parse_submit(raw)
            except ProtocolError:
                continue
            if (request.use_cache
                    and body.get("status") in ("SATISFIABLE",
                                               "UNSATISFIABLE")
                    and not body.get("degraded")):
                key = (clauses_key(request.clause_lits,
                                   request.num_vars), request.certify)
                self._cache.put(key, body)
                reseeded += 1
        for job_id, raw in replay.pending.items():
            try:
                request = parse_submit(raw)
            except ProtocolError:
                continue
            job = _Job(request, (clauses_key(request.clause_lits,
                                             request.num_vars),
                                 request.certify),
                       asyncio.get_running_loop().create_future())
            job.recovered = True
            if not self._queues.push(request.tenant, job):
                continue          # queue full; stays pending on disk
            self._pending_ids.add(job_id)
            self._by_id[job_id] = job
            self._recovered += 1
        if self._recovered:
            self._wake.set()
        if self.tracer is not None:
            self.tracer.event("service.journal_replay",
                              records=replay.records,
                              corrupt=replay.corrupt,
                              terminal=len(replay.terminal),
                              recovered=self._recovered,
                              cache_reseeded=reseeded)

    async def shutdown(self,
                       grace: Optional[float] = None) -> Dict[str, Any]:
        """Drain and stop: new submissions are rejected immediately,
        queued and running jobs get ``grace`` seconds to finish, and
        stragglers are cancelled with a terminal degraded response."""
        self._draining = True
        grace = self.config.grace_seconds if grace is None else grace
        deadline = time.monotonic() + grace
        while ((self._active or len(self._queues))
               and time.monotonic() < deadline):
            self._wake.set()
            await asyncio.sleep(self.config.poll_interval)
        cancelled = 0
        # Queued-but-never-dispatched stragglers: reject explicitly.
        while True:
            job = self._queues.next_job()
            if job is None:
                break
            cancelled += 1
            self._pending_ids.discard(job.request.job_id)
            if not job.future.done():
                job.future.set_result(self._rejection(
                    job.request.job_id, SHUTTING_DOWN,
                    "server drained before this job was dispatched",
                    tenant=job.request.tenant))
        # Running stragglers: cancel; _run_job resolves their futures
        # with a degraded terminal body.
        for job in list(self._active.values()):
            if job.task is not None and not job.task.done():
                cancelled += 1
                job.task.cancel()
        waited = time.monotonic()
        while self._active and time.monotonic() - waited < 5.0:
            await asyncio.sleep(self.config.poll_interval)
        self._closed = True
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._proof_dir is not None:
            shutil.rmtree(self._proof_dir, ignore_errors=True)
            self._proof_dir = None
        if self._journal is not None:
            self._journal.close()
        if self.tracer is not None:
            self.tracer.event("service.shutdown",
                              drained=self._jobs_done,
                              cancelled=cancelled)
        return {"kind": "shutdown", "drained": self._jobs_done,
                "cancelled": cancelled}

    # -- request handling ----------------------------------------------

    async def handle_message(self, payload: Dict[str, Any],
                             send_frame=None) -> Dict[str, Any]:
        """Serve one decoded request; always returns a response dict.

        This is the transport-independent core: the TCP handler and
        the in-process test client both call it.  *send_frame* is an
        optional async callable the transport provides for pushing
        non-terminal ``progress`` frames; without one, ``stream:
        true`` submissions run normally, just unstreamed.
        """
        await self.start()
        op = payload.get("op")
        request_id = payload.get("id")
        if op == "ping":
            return {"kind": "pong", "id": request_id}
        if op == "status":
            return self._status_response(request_id)
        if op == "metrics":
            return self._metrics_response(request_id)
        if op == "shutdown":
            report = await self.shutdown(payload.get("grace"))
            report["id"] = request_id
            return report
        if op == "submit":
            return await self._handle_submit(payload, send_frame)
        if op == "query":
            return await self._handle_query(payload, send_frame)
        return {"kind": "error", "id": request_id, "code": BAD_REQUEST,
                "reason": f"unknown op {op!r}"}

    async def _handle_submit(self, payload: Dict[str, Any],
                             send_frame=None) -> Dict[str, Any]:
        try:
            request = parse_submit(payload)
        except ProtocolError as exc:
            return {"kind": "error", "id": payload.get("id"),
                    "code": BAD_REQUEST, "reason": str(exc)}
        if self.tracer is not None:
            self.tracer.event("service.submit", job=request.job_id,
                              tenant=request.tenant,
                              vars=request.num_vars,
                              clauses=len(request.clause_lits),
                              certify=int(request.certify))
        self.metrics.record_submit(request.tenant)
        stored = self._terminal.get(request.job_id)
        if stored is not None:
            # Idempotent re-serve: this id already reached a terminal
            # verdict (possibly before a restart, via the journal).
            return dict(stored)
        if self._draining:
            return self._rejection(request.job_id, SHUTTING_DOWN,
                                   "server is draining",
                                   tenant=request.tenant)

        key = (clauses_key(request.clause_lits, request.num_vars),
               request.certify)
        if request.use_cache:
            body = self._cache.get(key)
            if body is not None:
                self._emit_result(request, body, cached=True,
                                  wall=0.0)
                await self._apply_delay(request.job_id)
                return {"kind": "result", "id": request.job_id,
                        "cached": True, "body": body}

        if request.job_id in self._pending_ids:
            return {"kind": "error", "id": request.job_id,
                    "code": BAD_REQUEST,
                    "reason": "a job with this id is already pending"}
        hardness = estimate_hardness(request.num_vars,
                                     len(request.clause_lits))
        if (self.config.max_hardness is not None
                and hardness > self.config.max_hardness):
            return self._rejection(
                request.job_id, REJECTED_OVERLOAD,
                f"estimated hardness {hardness:.0f} exceeds the "
                f"admission ceiling {self.config.max_hardness:.0f}",
                tenant=request.tenant)

        job = _Job(request, key,
                   asyncio.get_running_loop().create_future())
        if request.stream and send_frame is not None:
            job.send_frame = send_frame
        if not self._queues.push(request.tenant, job):
            return self._rejection(
                request.job_id, REJECTED_OVERLOAD,
                f"tenant {request.tenant!r} queue is full "
                f"({self.config.queue_depth} deep)",
                tenant=request.tenant)
        self._pending_ids.add(request.job_id)
        self._by_id[request.job_id] = job
        if self._journal is not None:
            # Write-ahead: the job is accepted (admission passed,
            # queued) -- journal it before any work happens, so a
            # server death from here on cannot lose it.
            self._journal.record_submitted(request.job_id,
                                           dict(request.raw))
            self.metrics.record_journal_record("submitted")
        if (self.fault_plan is not None
                and self.fault_plan.kills_server(request.job_id)):
            # Scripted SIGKILL stand-in: die right after journaling
            # the admission -- the window journal replay must cover.
            os._exit(SERVER_KILL_EXIT)
        self._wake.set()
        response = await job.future
        await self._apply_delay(request.job_id)
        return response

    async def _handle_query(self, payload: Dict[str, Any],
                            send_frame=None) -> Dict[str, Any]:
        """The ``query`` (reattach) op: recover a job's verdict by id.

        Terminal jobs -- including ones finished before a restart and
        recovered from the journal -- answer immediately with the
        stored response.  Queued or running jobs block on the same
        future the submitter would be awaiting (an asyncio future
        tolerates any number of awaiters); with ``stream: true`` on a
        pushing transport the caller also re-joins the progress
        stream.  Never re-runs anything.
        """
        job_id = payload.get("id")
        if not isinstance(job_id, str) or not job_id:
            return {"kind": "error", "id": None, "code": BAD_REQUEST,
                    "reason": "'id' must be a non-empty string"}
        if self.tracer is not None:
            self.tracer.event("service.query", job=job_id)
        stored = self._terminal.get(job_id)
        if stored is not None:
            return dict(stored)
        job = self._by_id.get(job_id)
        if job is not None:
            if payload.get("stream") is True and send_frame is not None:
                job.send_frame = send_frame
            response = await job.future
            await self._apply_delay(job_id)
            return response
        return {"kind": "error", "id": job_id, "code": NOT_FOUND,
                "reason": f"no terminal, running or journaled job "
                          f"with id {job_id!r}"}

    def _rejection(self, job_id: Optional[str], code: str,
                   reason: str, tenant: str = "default"
                   ) -> Dict[str, Any]:
        self._jobs_rejected += 1
        self.metrics.record_reject(tenant, code)
        if self.tracer is not None:
            self.tracer.event("service.reject", job=job_id or "?",
                              tenant=tenant, code=code, reason=reason)
        return {"kind": "rejected", "id": job_id, "code": code,
                "reason": reason}

    async def _apply_delay(self, job_id: str) -> None:
        if self.fault_plan is None:
            return
        delay = self.fault_plan.delay(job_id)
        if delay > 0:
            await asyncio.sleep(delay)

    def _status_response(self,
                         request_id: Optional[str]) -> Dict[str, Any]:
        now = time.monotonic()
        active = []
        for job in self._active.values():
            entry = {"id": job.request.job_id,
                     "tenant": job.request.tenant,
                     "running_seconds": round(
                         now - (job.dispatched_at or now), 3)}
            if job.heartbeat is not None:
                entry["heartbeat_age"] = round(
                    now - job.heartbeat.value, 3)
            active.append(entry)
        journal: Dict[str, Any] = {
            "enabled": self._journal is not None,
            "recovered": self._recovered,
            "terminal": len(self._terminal)}
        if self._journal is not None:
            journal["path"] = self._journal.path
            journal["records_written"] = self._journal.records_written
            journal["write_errors"] = self._journal.write_errors
        from repro.solvers.kernels import capability
        return {"kind": "status", "id": request_id,
                "journal": journal,
                "draining": self._draining,
                "kernels": capability(),
                "uptime_seconds": round(now - self._started_at, 3),
                "queues": self._queues.depths(),
                "deficits": self._queues.deficits(),
                "queued": len(self._queues),
                "workers": {"max": self.config.max_workers,
                            "busy": len(self._active)},
                "active": active,
                "cache": self._cache.stats(),
                "jobs": {"done": self._jobs_done,
                         "rejected": self._jobs_rejected,
                         "retries": self._retries,
                         "cancelled": self._cancelled}}

    def _metrics_response(self,
                          request_id: Optional[str]) -> Dict[str, Any]:
        """The ``metrics`` op: refresh point-in-time gauges, render
        the merged snapshot as Prometheus exposition text."""
        from repro.obs.export import render_prometheus
        self.metrics.set_queues(self._queues.depths(),
                                self._queues.deficits())
        self.metrics.set_workers(len(self._active),
                                 self.config.max_workers)
        self.metrics.set_cache(self._cache.stats())
        self.metrics.set_journal(
            self._recovered, len(self._terminal),
            0 if self._journal is None
            else self._journal.write_errors)
        snapshot = self.metrics.snapshot()
        text = render_prometheus(snapshot)
        if self.tracer is not None:
            self.tracer.event("service.metrics",
                              families=len(snapshot),
                              bytes=len(text))
        return {"kind": "metrics", "id": request_id, "text": text}

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._closed:
                return
            while len(self._queues):
                await self._slots.acquire()
                job = self._queues.next_job()
                if job is None:
                    self._slots.release()
                    break
                job.dispatched_at = time.monotonic()
                self._active[job.request.job_id] = job
                self.metrics.record_queue_wait(
                    job.request.tenant,
                    job.dispatched_at - job.submitted_at)
                if self.tracer is not None:
                    self.tracer.event(
                        "service.dispatch", job=job.request.job_id,
                        tenant=job.request.tenant,
                        queued_seconds=round(
                            job.dispatched_at - job.submitted_at, 4))
                job.task = asyncio.create_task(self._run_job(job))

    async def _run_job(self, job: _Job) -> None:
        request = job.request
        try:
            body = await self._execute(job)
        except asyncio.CancelledError:
            self._cancelled += 1
            body = self._failure_body(job, "shutdown",
                                      attempts=1)
        except Exception as exc:      # pragma: no cover - last resort
            body = self._failure_body(job, f"internal: {exc}",
                                      attempts=1)
        finally:
            self._slots.release()
            self._active.pop(request.job_id, None)
            self._pending_ids.discard(request.job_id)
            self._wake.set()
        self._jobs_done += 1
        if (request.use_cache
                and body["status"] in ("SATISFIABLE", "UNSATISFIABLE")
                and not body["degraded"]):
            self._cache.put(job.key, body)
        self._emit_result(request, body,
                          cached=False,
                          wall=time.monotonic() - job.submitted_at)
        response = {"kind": "result", "id": request.job_id,
                    "cached": False, "body": body}
        if (self._journal is not None
                and body.get("degraded_reason") != "shutdown"):
            # Write-ahead of release.  A shutdown-cancelled job is
            # deliberately NOT journaled terminal: a restart with the
            # same journal should re-run it, not replay the
            # cancellation.
            self._journal.record_result(request.job_id, response)
            self.metrics.record_journal_record("result")
        # Terminal store precedes the _by_id pop so a concurrent
        # query never finds neither.
        self._terminal[request.job_id] = response
        self._by_id.pop(request.job_id, None)
        if not job.future.done():
            job.future.set_result(response)

    def _emit_result(self, request: SubmitRequest,
                     body: Dict[str, Any], cached: bool,
                     wall: float) -> None:
        self.metrics.record_result(request.tenant, body["status"],
                                   wall, cached)
        if not cached:
            # Roll the worker's search-shape histograms into the
            # service-wide solver aggregate (a cached replay carries
            # a copy of metrics already absorbed once).
            stats = body.get("stats") or {}
            self.metrics.absorb_solver_metrics(stats.get("metrics"))
        if self.tracer is not None:
            self.tracer.event(
                "service.result", job=request.job_id,
                tenant=request.tenant, status=body["status"],
                attempts=body["attempts"], cached=int(cached),
                degraded=int(body["degraded"]),
                wall_seconds=round(wall, 4))

    # -- job execution -------------------------------------------------

    async def _execute(self, job: _Job) -> Dict[str, Any]:
        """The retry loop: attempts under a shrinking budget."""
        config = self.config
        request = job.request
        total = Budget(
            wall_seconds=(request.deadline
                          if request.deadline is not None
                          else config.default_deadline),
            max_conflicts=request.max_conflicts)
        started = time.monotonic()
        spent: Optional[SolverStats] = None
        failure = "budget"
        jitter = random.Random(f"{request.job_id}-backoff")
        for attempt in range(config.max_attempts):
            budget = total.remaining_after(time.monotonic() - started,
                                           spent=spent)
            if budget.exhausted:
                failure = "budget"
                break
            outcome = await self._run_attempt(job, attempt, budget)
            if outcome.partial is not None:
                job.partial = outcome.partial
                burned = stats_from_dict(outcome.partial["stats"])
                if spent is None:
                    spent = burned
                else:
                    spent.merge(burned)
            if outcome.kind == "result":
                return self._result_body(job, attempt + 1, outcome)
            failure = outcome.kind
            if outcome.kind == "deadline":
                break
            if attempt + 1 >= config.max_attempts:
                break
            self._retries += 1
            # A retry is "warm" when a checkpoint blob is waiting to
            # seed the next attempt (whether it validates is the
            # worker loader's call -- a corrupt blob demotes to cold
            # inside the worker without a further signal).
            self.metrics.record_retry(
                request.tenant, warm=job.last_checkpoint is not None)
            delay = min(config.backoff_cap,
                        config.backoff_seconds * (2 ** attempt))
            delay *= 1.0 + 0.5 * jitter.random()
            if total.wall_seconds is not None:
                remaining = (total.wall_seconds
                             - (time.monotonic() - started))
                delay = max(0.0, min(delay, remaining))
            if self.tracer is not None:
                self.tracer.event("service.retry",
                                  job=request.job_id,
                                  attempt=attempt + 1,
                                  failure=failure,
                                  backoff_seconds=round(delay, 4))
            await asyncio.sleep(delay)
        attempts = min(config.max_attempts,
                       max(1, attempt + (0 if failure == "budget"
                                         else 1)))
        return self._failure_body(job, failure, attempts=attempts)

    async def _run_attempt(self, job: _Job, attempt: int,
                           budget: Budget) -> _Attempt:
        """Spawn and supervise one worker process, without blocking
        the event loop."""
        config = self.config
        request = job.request
        ctx = multiprocessing.get_context()
        reader, writer = ctx.Pipe(duplex=False)
        heartbeat = ctx.Value("d", time.monotonic())
        job.heartbeat = heartbeat
        job.attempt_started = time.monotonic()
        fault_action = None
        kill_after = 2
        corrupt_checkpoints = False
        if self.fault_plan is not None:
            fault_action = self.fault_plan.action(request.job_id,
                                                  attempt)
            kill_after = self.fault_plan.kill_after_checkpoints
            corrupt_checkpoints = self.fault_plan.corrupts_checkpoint(
                request.job_id, attempt)
        proof_path = None
        if request.certify:
            proof_path = os.path.join(
                self._ensure_proof_dir(),
                f"job{abs(hash(request.job_id))}-a{attempt}.drup")
        trace_path = None
        if self.worker_trace_dir is not None:
            os.makedirs(self.worker_trace_dir, exist_ok=True)
            safe = "".join(c if c.isalnum() or c in "-_" else "_"
                           for c in request.job_id)[:80]
            trace_path = os.path.join(self.worker_trace_dir,
                                      f"{safe}-a{attempt}.jsonl")
        solver_config = self.solver_config
        if attempt > 0:
            solver_config = solver_config.perturbed(attempt)
        proc = ctx.Process(
            target=_job_worker_main,
            args=(request.job_id, attempt, request.clause_lits,
                  request.num_vars, solver_config, budget, heartbeat,
                  writer, fault_action, kill_after,
                  config.progress_interval, proof_path,
                  config.worker_check_interval, trace_path,
                  job.last_checkpoint, corrupt_checkpoints),
            daemon=True)
        proc.start()
        writer.close()
        started = time.monotonic()
        deadline = (None if budget.wall_seconds is None
                    else started + budget.wall_seconds
                    + config.poll_interval)
        partial: Optional[Dict[str, Any]] = None
        died_at: Optional[float] = None
        try:
            while True:
                now = time.monotonic()
                try:
                    while reader.poll(0):
                        payload = reader.recv()
                        if _is_checkpoint(payload):
                            if self._record_checkpoint(job, payload):
                                continue
                            proc.terminate()
                            return _Attempt("poison", partial=partial)
                        parsed = self._parse_payload(
                            request, payload, partial, proof_path)
                        if parsed is None:
                            continue          # stale attempt echo
                        if isinstance(parsed, dict):
                            partial = parsed  # progress snapshot
                            await self._stream_progress(job, parsed)
                            continue
                        if parsed.kind != "result":
                            proc.terminate()
                        parsed.partial = partial
                        return parsed
                except (EOFError, OSError):
                    pass              # sender gone; liveness decides
                if deadline is not None and now >= deadline:
                    proc.terminate()
                    return _Attempt("deadline", partial=partial)
                if not proc.is_alive():
                    if died_at is None:
                        died_at = now
                    elif now - died_at >= _DEATH_GRACE:
                        return _Attempt("crash", partial=partial)
                else:
                    died_at = None
                    if now - heartbeat.value > config.hang_timeout:
                        proc.terminate()
                        return _Attempt("hang", partial=partial)
                await asyncio.sleep(config.poll_interval)
        finally:
            job.heartbeat = None
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():       # pragma: no cover
                proc.kill()
                proc.join(timeout=5.0)
            reader.close()

    async def _stream_progress(self, job: _Job,
                               progress: Dict[str, Any]) -> None:
        """Relay one audited worker snapshot as a ``progress`` frame
        (throttled to ``config.stream_interval`` per job)."""
        if job.send_frame is None:
            return
        now = time.monotonic()
        if (job.last_frame_at is not None
                and now - job.last_frame_at
                < self.config.stream_interval):
            return
        job.last_frame_at = now
        stats = progress.get("stats") or {}
        attempt = progress["attempt"]
        elapsed = progress["elapsed"]
        propagations = stats.get("propagations") or 0
        last_attempt, last_elapsed, last_props = job.last_frame_totals
        if last_attempt == attempt and elapsed > last_elapsed:
            rate = ((propagations - last_props)
                    / (elapsed - last_elapsed))
        elif elapsed > 0:
            rate = propagations / elapsed
        else:
            rate = 0.0
        job.last_frame_totals = (attempt, elapsed, propagations)
        snapshot = {
            "conflicts": stats.get("conflicts") or 0,
            "decisions": stats.get("decisions") or 0,
            "propagations": propagations,
            "restarts": stats.get("restarts") or 0,
            "propagations_per_sec": round(max(rate, 0.0), 1),
        }
        extras = progress.get("extras") or {}
        fill = extras.get("arena_fill")
        if isinstance(fill, (int, float)) \
                and not isinstance(fill, bool):
            snapshot["arena_fill"] = fill
        frame = {"kind": "progress", "id": job.request.job_id,
                 "seq": job.stream_seq, "attempt": attempt + 1,
                 "elapsed": elapsed, "snapshot": snapshot}
        job.stream_seq += 1
        self.metrics.record_progress_frame(job.request.tenant)
        if self.tracer is not None:
            self.tracer.event(
                "service.progress", job=job.request.job_id,
                tenant=job.request.tenant, attempt=attempt + 1,
                seq=frame["seq"], elapsed=elapsed,
                conflicts=snapshot["conflicts"],
                propagations=propagations)
        try:
            await job.send_frame(frame)
        except (ConnectionError, OSError):
            job.send_frame = None   # client gone; stop relaying

    def _record_checkpoint(self, job: _Job, payload) -> bool:
        """Audit one piggybacked checkpoint payload; keep the blob.

        Shape-audited only (id echo, attempt, bounded bytes): the
        checksum is deliberately left for the *consuming* worker's
        loader to verify, because that respawn path must survive a
        corrupt blob anyway -- verifying here would just hide that
        path from the corruption fault.
        """
        _tag, job_id, attempt, blob = payload
        if (job_id != job.request.job_id
                or not isinstance(attempt, int)
                or isinstance(attempt, bool) or attempt < 0
                or not isinstance(blob, (bytes, bytearray))
                or len(blob) > _MAX_CHECKPOINT_BLOB):
            return False
        job.last_checkpoint = bytes(blob)
        self.metrics.record_checkpoint(job.request.tenant)
        return True

    def _parse_payload(self, request: SubmitRequest, payload,
                       partial, proof_path):
        """Audit one worker pipe payload.

        Returns a progress dict, a terminal :class:`_Attempt`
        (``result`` for a believed verdict, ``poison`` for anything
        malformed -- the sender loses all trust), or None for a stale
        echo that should be skipped.
        """
        if (isinstance(payload, tuple) and len(payload) in (5, 6)
                and payload[0] == "progress"):
            _tag, job_id, attempt, elapsed, stats_dict = payload[:5]
            extras = payload[5] if len(payload) == 6 else {}
            if (job_id != request.job_id
                    or not isinstance(attempt, int)
                    or not isinstance(elapsed, (int, float))
                    or isinstance(elapsed, bool) or elapsed < 0
                    or not isinstance(stats_dict, dict)
                    or not isinstance(extras, dict)):
                return _Attempt("poison")
            return {"attempt": attempt, "elapsed": round(
                float(elapsed), 4),
                "stats": stats_from_dict(stats_dict).as_dict(),
                "extras": {
                    key: value for key, value in extras.items()
                    if isinstance(key, str)
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)}}
        if (isinstance(payload, tuple) and len(payload) == 6
                and payload[0] == "result"):
            _tag, job_id, attempt, status_name, model, stats = payload
            if (job_id != request.job_id
                    or status_name not in Status.__members__
                    or not isinstance(stats, dict)):
                return _Attempt("poison")
            if model is not None:
                if not isinstance(model, dict) or not all(
                        isinstance(k, int) and isinstance(v, bool)
                        for k, v in model.items()):
                    return _Attempt("poison")
            if Status[status_name] is Status.SATISFIABLE:
                if model is None or not _model_satisfies(
                        request.clause_lits, model):
                    return _Attempt("poison")
            return _Attempt("result", status_name=status_name,
                            model=model,
                            stats=stats_from_dict(stats).as_dict(),
                            proof_path=proof_path)
        return _Attempt("poison")

    # -- terminal bodies -----------------------------------------------

    def _result_body(self, job: _Job, attempts: int,
                     outcome: _Attempt) -> Dict[str, Any]:
        request = job.request
        status = Status[outcome.status_name]
        degraded = False
        reason = None
        certificate = None
        if request.certify:
            formula = CNFFormula(num_vars=request.num_vars,
                                 clauses=request.clause_lits)
            if status is Status.UNSATISFIABLE:
                from repro.verify.certificate import check_unsat_proof
                cert = check_unsat_proof(
                    formula, outcome.proof_path or "", self.tracer)
                certificate = {"kind": cert.kind, "valid": cert.valid,
                               "steps": cert.steps,
                               "reason": cert.reason}
                if not cert.valid:
                    # Demotion, not a flip: an UNSAT whose proof the
                    # independent checker rejects is not an answer.
                    status = Status.UNKNOWN
                    degraded = True
                    reason = "certification"
            elif status is Status.SATISFIABLE:
                from repro.cnf.assignment import Assignment
                from repro.verify.certificate import model_certificate
                cert = model_certificate(
                    formula, Assignment(dict(outcome.model)))
                certificate = {"kind": cert.kind, "valid": cert.valid,
                               "steps": 0, "reason": cert.reason}
                if not cert.valid:   # pragma: no cover - pre-audited
                    status = Status.UNKNOWN
                    degraded = True
                    reason = "certification"
            else:
                certificate = {"kind": "none", "valid": None,
                               "steps": 0,
                               "reason": "no verdict to certify"}
        if outcome.proof_path is not None:
            try:
                os.remove(outcome.proof_path)
            except OSError:
                pass
        if status is Status.UNKNOWN and not degraded:
            degraded = True
            reason = "budget"
        model_lits = None
        if status is Status.SATISFIABLE:
            model_lits = [var if value else -var
                          for var, value in sorted(
                              outcome.model.items())]
        return {"status": status.name,
                "model": model_lits,
                "stats": outcome.stats,
                "attempts": attempts,
                "degraded": degraded,
                "degraded_reason": reason,
                "partial": None,
                "certificate": certificate}

    def _failure_body(self, job: _Job, reason: str,
                      attempts: int) -> Dict[str, Any]:
        """The graceful-degradation terminal: UNKNOWN plus the last
        progress snapshot the failing worker managed to report."""
        return {"status": Status.UNKNOWN.name,
                "model": None,
                "stats": (job.partial or {}).get("stats"),
                "attempts": attempts,
                "degraded": True,
                "degraded_reason": reason,
                "partial": job.partial,
                "certificate": None}

    def _ensure_proof_dir(self) -> str:
        if self._proof_dir is None:
            self._proof_dir = tempfile.mkdtemp(prefix="repro-service-")
        return self._proof_dir

    # -- TCP transport -------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> "asyncio.AbstractServer":
        """Bind a TCP endpoint speaking the NDJSON protocol.

        Returns the asyncio server (its first socket carries the
        bound port when ``port=0``); the caller owns its lifetime.
        A ``shutdown`` request drains the solve pool but the TCP
        listener is closed by the caller (``run_server`` does both).
        """
        await self.start()
        return await asyncio.start_server(self._handle_connection,
                                          host, port)

    async def _handle_connection(self, reader, writer) -> None:
        lock = asyncio.Lock()
        pending: set = set()

        async def send_frame(frame: Dict[str, Any]) -> None:
            # Non-terminal progress frames share the response lock so
            # pipelined writers never interleave mid-line.
            async with lock:
                writer.write(encode_message(frame))
                await writer.drain()

        async def respond(payload: Dict[str, Any]) -> None:
            response = await self.handle_message(payload, send_frame)
            async with lock:
                try:
                    writer.write(encode_message(response))
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = decode_message(line)
                except ProtocolError as exc:
                    await respond_error(writer, lock, str(exc))
                    continue
                # Each request runs in its own task so submissions
                # pipeline over one connection; clients match
                # responses by id.
                task = asyncio.create_task(respond(payload))
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def respond_error(writer, lock: "asyncio.Lock",
                        reason: str) -> None:
    """Write one BAD_REQUEST line for an undecodable request."""
    async with lock:
        try:
            writer.write(encode_message(
                {"kind": "error", "id": None, "code": BAD_REQUEST,
                 "reason": reason}))
            await writer.drain()
        except (ConnectionError, OSError):
            pass


async def run_server(config: Optional[ServiceConfig] = None,
                     host: str = "127.0.0.1", port: int = 9123, *,
                     fault_plan: Optional[ServiceFaultPlan] = None,
                     tracer=None, worker_trace_dir: Optional[str] = None,
                     journal: Optional[str] = None,
                     ready=None) -> None:
    """Run a TCP solve server until a ``shutdown`` request arrives.

    ``ready`` (optional callable) receives the bound ``(host, port)``
    once listening -- the CLI prints it, tests grab the ephemeral
    port.  ``journal`` enables the durable job journal (replayed on
    startup; see :class:`SolveServer`).
    """
    server = SolveServer(config, fault_plan=fault_plan, tracer=tracer,
                         worker_trace_dir=worker_trace_dir,
                         journal=journal)
    tcp = await server.serve_tcp(host, port)
    bound = tcp.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    try:
        while not server._closed:
            await asyncio.sleep(server.config.poll_interval)
    finally:
        tcp.close()
        await tcp.wait_closed()
