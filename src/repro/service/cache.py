"""Result cache keyed by the canonical formula hash.

EDA clients are repetitive: an ATPG loop re-proves the same redundant
fault after a netlist no-op, a CEC regression re-submits yesterday's
miters.  The cache keys on
:func:`repro.cnf.canonical.canonical_key` -- clause order, literal
order, duplicate literals and variable-numbering gaps all hash
identically -- joined with the ``certify`` flag, because a certified
answer and an uncertified one are different products even for the
same formula.

The cached unit is the response *body* dict exactly as first
computed, so a hit replays a byte-identical body (the chaos suite
asserts ``json.dumps(body, sort_keys=True)`` equality).  Only
decisive, non-degraded bodies are stored: caching an UNKNOWN would
freeze a transient budget exhaustion into a permanent answer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

Key = Tuple[str, bool]


class ResultCache:
    """A small LRU of terminal result bodies."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[Key, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Key) -> Optional[Dict[str, Any]]:
        """The stored body for *key* (refreshing recency), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Key, body: Dict[str, Any]) -> None:
        """Store *body* under *key*, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = body
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        """JSON-shaped snapshot for STATUS responses."""
        return {"size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4)}
