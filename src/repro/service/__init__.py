"""Fault-tolerant SAT-as-a-service layer (``repro.service``).

Production EDA flows do not call a solver function; they call a
*service* that must stay predictable when a worker segfaults, a
tenant floods the queue, or a job is simply too hard for its
deadline.  This package provides that layer on the machinery the
runtime already has (budgets, supervision, fault injection, proofs):

* :mod:`repro.service.protocol` -- the NDJSON wire contract;
* :mod:`repro.service.admission` -- bounded per-tenant queues,
  weighted deficit round-robin dispatch, hardness shedding;
* :mod:`repro.service.cache` -- LRU of terminal result bodies keyed
  by the canonical formula hash;
* :mod:`repro.service.worker` -- the per-attempt solve process;
* :mod:`repro.service.server` -- the asyncio :class:`SolveServer`:
  retry with inherited budgets, graceful degradation, drain-based
  shutdown, STATUS introspection;
* :mod:`repro.service.client` -- the blocking TCP client and the
  in-process test client;
* :mod:`repro.service.metrics` -- per-tenant service metrics
  (queue-wait/solve-latency histograms, WDRR deficits, admission and
  retry counters, cache hit rate) rendered by the ``metrics``
  protocol op as Prometheus text;
* :mod:`repro.service.top` -- the ``repro top`` terminal dashboard
  polling STATUS + metrics;
* :mod:`repro.service.journal` -- the durable append-only job journal
  behind ``repro serve --journal`` (write-ahead submissions and
  terminal results, crash-safe replay on restart).
"""

from repro.service.admission import (
    ServiceConfig,
    TenantQueues,
    estimate_hardness,
)
from repro.service.cache import ResultCache
from repro.service.client import InProcessClient, ServiceClient
from repro.service.journal import JobJournal, replay_journal
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    BAD_REQUEST,
    NOT_FOUND,
    REJECTED_OVERLOAD,
    SHUTTING_DOWN,
    ProtocolError,
    SubmitRequest,
    decode_message,
    encode_message,
    parse_submit,
    validate_progress_frame,
)
from repro.service.server import SolveServer, run_server

__all__ = [
    "BAD_REQUEST",
    "InProcessClient",
    "JobJournal",
    "NOT_FOUND",
    "ProtocolError",
    "REJECTED_OVERLOAD",
    "ResultCache",
    "SHUTTING_DOWN",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "SolveServer",
    "SubmitRequest",
    "TenantQueues",
    "decode_message",
    "encode_message",
    "estimate_hardness",
    "parse_submit",
    "replay_journal",
    "run_server",
    "validate_progress_frame",
]
