"""Wire protocol of the solve service: newline-delimited JSON.

One request or response is one JSON object on one line (NDJSON) --
trivially streamable over an asyncio TCP connection, debuggable with
``nc`` and ``jq``, and free of any framing library.  Requests carry an
``op``; responses carry a ``kind`` and echo the request ``id`` so a
client may pipeline submissions over one connection and match answers
by id.

Request ops
-----------

``submit``
    decide a formula.  The formula travels either as a DIMACS string
    (``"dimacs"``) or as explicit ``"clauses"`` + ``"num_vars"``.
    Optional: ``tenant`` (fairness bucket, default ``"default"``),
    ``deadline`` (seconds of wall clock for this job),
    ``max_conflicts`` (counter cap), ``certify`` (require a checked
    DRUP proof / audited model), ``use_cache`` (default true),
    ``stream`` (default false: opt into mid-solve ``progress``
    frames on this connection before the terminal response).
``status``
    queue depths, active jobs with heartbeat ages, cache statistics.
``metrics``
    the service's metrics registry rendered as Prometheus exposition
    text (``{"kind": "metrics", "text": ...}``) -- per-tenant
    queue-wait/solve-latency histograms, admission/retry counters,
    cache hit rate, worker gauges, merged solver search metrics.
``ping``
    liveness probe.
``query``
    look up a previously submitted job by ``id`` -- the reattach op
    a disconnected client uses after a server (or its own) crash.
    A terminal job answers immediately with the journaled/stored
    ``result``; a queued or running job blocks until its terminal
    response (optionally re-joining the progress stream with
    ``stream: true``); an unknown id answers ``error`` with code
    ``NOT_FOUND``.  Idempotent: querying never re-runs anything.
``shutdown``
    drain the queues and stop accepting work.

Response kinds
--------------

``result``   terminal verdict (the ``body`` sub-object is the unit
             the result cache stores, so a cache hit replays a
             byte-identical body); ``rejected`` (admission control or
             drain, with a ``code``); ``error`` (malformed request);
             ``status``; ``metrics``; ``pong``; ``shutdown``.

``progress`` is the one *non-terminal* kind: a streamed job may
receive any number of progress frames (each echoing the job ``id``)
before exactly one terminal response.  A frame carries ``seq``
(monotonic per job), ``attempt``, ``elapsed`` seconds, and a
``snapshot`` of solver effort (conflicts, decisions, propagations,
restarts, propagations/s, arena fill).  Clients that did not set
``stream: true`` never see one.  :func:`validate_progress_frame` is
the schema check used by tests and the streaming CI smoke.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Rejection / error codes carried in ``rejected`` and ``error``
#: responses.  REJECTED_OVERLOAD is the explicit load-shedding answer
#: -- a client that receives it knows the service is up and chose not
#: to take the job, as opposed to a timeout that could mean anything.
REJECTED_OVERLOAD = "REJECTED_OVERLOAD"
SHUTTING_DOWN = "SHUTTING_DOWN"
BAD_REQUEST = "BAD_REQUEST"
#: A ``query`` for a job id the server has never journaled, queued or
#: finished -- distinct from BAD_REQUEST so a reattaching client can
#: tell "you asked wrong" from "I genuinely do not know this job".
NOT_FOUND = "NOT_FOUND"

#: Request operations understood by the server.
OPS = ("submit", "status", "metrics", "ping", "query", "shutdown")

#: Required numeric attrs of a progress frame's ``snapshot``.
SNAPSHOT_COUNTERS = ("conflicts", "decisions", "propagations",
                     "restarts")


class ProtocolError(ValueError):
    """A request that violates the wire contract (-> BAD_REQUEST)."""


def encode_message(payload: Dict[str, Any]) -> bytes:
    """One NDJSON line (UTF-8, trailing newline) for *payload*."""
    return (json.dumps(payload, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one NDJSON line into a dict.

    Raises :class:`ProtocolError` on anything that is not a single
    JSON object -- the server answers those with ``BAD_REQUEST``
    instead of dying or closing the connection.
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    return payload


@dataclass
class SubmitRequest:
    """A validated ``submit`` request (see module docstring)."""

    job_id: str
    tenant: str
    clause_lits: List[Tuple[int, ...]]
    num_vars: int
    deadline: Optional[float] = None
    max_conflicts: Optional[int] = None
    certify: bool = False
    use_cache: bool = True
    stream: bool = False
    raw: Dict[str, Any] = field(default_factory=dict, repr=False)


def _require_str(payload: Dict[str, Any], key: str,
                 default: Optional[str] = None) -> str:
    value = payload.get(key, default)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{key!r} must be a non-empty string")
    return value


def _optional_number(payload: Dict[str, Any], key: str,
                     integral: bool = False) -> Optional[float]:
    value = payload.get(key)
    if value is None:
        return None
    types = int if integral else (int, float)
    if not isinstance(value, types) or isinstance(value, bool) \
            or value <= 0:
        kind = "a positive integer" if integral else "a positive number"
        raise ProtocolError(f"{key!r} must be {kind}")
    return value


def _optional_bool(payload: Dict[str, Any], key: str,
                   default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise ProtocolError(f"{key!r} must be a boolean")
    return value


def parse_submit(payload: Dict[str, Any]) -> SubmitRequest:
    """Validate a ``submit`` payload into a :class:`SubmitRequest`.

    Everything a remote client sends is untrusted: the formula is
    re-validated structurally here (and the service additionally
    audits any SAT model against these clauses before believing it).
    """
    job_id = _require_str(payload, "id")
    tenant = _require_str(payload, "tenant", default="default")

    if "dimacs" in payload:
        text = payload["dimacs"]
        if not isinstance(text, str):
            raise ProtocolError("'dimacs' must be a string")
        from repro.cnf.dimacs import parse_dimacs
        try:
            formula = parse_dimacs(text)
        except ValueError as exc:
            raise ProtocolError(f"bad DIMACS: {exc}") from None
        clause_lits = [tuple(clause) for clause in formula.clauses]
        num_vars = formula.num_vars
    elif "clauses" in payload:
        clauses = payload["clauses"]
        num_vars = payload.get("num_vars")
        if not isinstance(num_vars, int) or isinstance(num_vars, bool) \
                or num_vars < 0:
            raise ProtocolError("'num_vars' must be an int >= 0")
        if not isinstance(clauses, list):
            raise ProtocolError("'clauses' must be a list of lists")
        clause_lits = []
        for clause in clauses:
            if not isinstance(clause, list) or not all(
                    isinstance(lit, int) and not isinstance(lit, bool)
                    and lit != 0 and abs(lit) <= num_vars
                    for lit in clause):
                raise ProtocolError(
                    "each clause must be a list of non-zero literals "
                    "within num_vars")
            clause_lits.append(tuple(clause))
    else:
        raise ProtocolError(
            "submit requires 'dimacs' or 'clauses'+'num_vars'")

    return SubmitRequest(
        job_id=job_id,
        tenant=tenant,
        clause_lits=clause_lits,
        num_vars=num_vars,
        deadline=_optional_number(payload, "deadline"),
        max_conflicts=_optional_number(payload, "max_conflicts",
                                       integral=True),
        certify=_optional_bool(payload, "certify", False),
        use_cache=_optional_bool(payload, "use_cache", True),
        stream=_optional_bool(payload, "stream", False),
        raw=dict(payload))


def validate_progress_frame(frame: Any) -> List[str]:
    """Problems with one streamed ``progress`` frame (empty = valid).

    A frame must be an object with ``kind == "progress"``, a string
    ``id``, integer ``seq >= 0`` and ``attempt >= 1``, numeric
    ``elapsed >= 0``, and a ``snapshot`` object carrying the
    :data:`SNAPSHOT_COUNTERS` as non-negative ints plus optional
    numeric ``propagations_per_sec`` and ``arena_fill`` readings.
    """
    problems: List[str] = []
    if not isinstance(frame, dict):
        return [f"frame is {type(frame).__name__}, not an object"]
    if frame.get("kind") != "progress":
        problems.append("kind must be 'progress'")
    if not isinstance(frame.get("id"), str) or not frame.get("id"):
        problems.append("'id' must be a non-empty string")
    seq = frame.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        problems.append("'seq' must be an int >= 0")
    attempt = frame.get("attempt")
    if not isinstance(attempt, int) or isinstance(attempt, bool) \
            or attempt < 1:
        problems.append("'attempt' must be an int >= 1")
    elapsed = frame.get("elapsed")
    if not isinstance(elapsed, (int, float)) \
            or isinstance(elapsed, bool) or elapsed < 0:
        problems.append("'elapsed' must be a number >= 0")
    snapshot = frame.get("snapshot")
    if not isinstance(snapshot, dict):
        problems.append("'snapshot' must be an object")
        return problems
    for key in SNAPSHOT_COUNTERS:
        value = snapshot.get(key)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            problems.append(
                f"snapshot.{key} must be an int >= 0")
    for key in ("propagations_per_sec", "arena_fill"):
        value = snapshot.get(key)
        if value is not None and (
                not isinstance(value, (int, float))
                or isinstance(value, bool) or value < 0):
            problems.append(f"snapshot.{key} must be a number >= 0")
    return problems
