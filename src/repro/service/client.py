"""Clients for the solve service.

:class:`ServiceClient` is the blocking TCP client the CLI uses: one
socket, NDJSON lines out, responses matched by the ``id`` they echo
(so several submissions may be pipelined before reading any result).

:class:`InProcessClient` embeds a :class:`SolveServer` in a private
event loop and drives it synchronously -- no socket, no background
thread.  ``run_until_complete`` pumps the same loop the server's
dispatcher runs on, so a blocking-looking ``submit`` still lets the
server dispatch, supervise workers, and retry underneath.  Tests use
it to exercise the full service stack deterministically.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, List, Optional

from repro.service.protocol import decode_message, encode_message
from repro.service.server import SolveServer


class ServiceClient:
    """Blocking NDJSON-over-TCP client (the ``repro submit`` CLI)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 9123,
                 timeout: Optional[float] = 60.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rb")

    def request(self, payload: Dict[str, Any],
                on_progress=None) -> Dict[str, Any]:
        """Send one request and block for the response matching its
        ``id`` (out-of-order responses for other ids are buffered
        out; this client sends one request at a time, so in practice
        the first response is the match).

        Non-terminal ``progress`` frames matching the id are passed
        to *on_progress* (or dropped without one) and never end the
        wait -- only a terminal kind does.
        """
        self._sock.sendall(encode_message(payload))
        wanted = payload.get("id")
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = decode_message(line)
            if wanted is not None and response.get("id") != wanted:
                continue
            if response.get("kind") == "progress":
                if on_progress is not None:
                    on_progress(response)
                continue
            return response

    def submit(self, job_id: str, *, dimacs: Optional[str] = None,
               clauses: Optional[List[List[int]]] = None,
               num_vars: Optional[int] = None,
               tenant: str = "default",
               deadline: Optional[float] = None,
               max_conflicts: Optional[int] = None,
               certify: bool = False,
               use_cache: bool = True,
               stream: bool = False,
               on_progress=None) -> Dict[str, Any]:
        """Submit one job and block for its terminal response.

        With ``stream=True`` the server pushes mid-solve ``progress``
        frames; each is handed to *on_progress* as it arrives.
        """
        payload: Dict[str, Any] = {"op": "submit", "id": job_id,
                                   "tenant": tenant,
                                   "certify": certify,
                                   "use_cache": use_cache}
        if stream:
            payload["stream"] = True
        if dimacs is not None:
            payload["dimacs"] = dimacs
        if clauses is not None:
            payload["clauses"] = clauses
            payload["num_vars"] = num_vars
        if deadline is not None:
            payload["deadline"] = deadline
        if max_conflicts is not None:
            payload["max_conflicts"] = max_conflicts
        return self.request(payload, on_progress=on_progress)

    def query(self, job_id: str, *, stream: bool = False,
              on_progress=None) -> Dict[str, Any]:
        """Reattach to a previously submitted job by id.

        Returns the terminal response -- immediately if the job
        already finished (possibly recovered from the server's
        journal after a restart), otherwise after blocking until it
        does.  With ``stream=True`` the server re-joins this
        connection to the job's progress stream first.
        """
        payload: Dict[str, Any] = {"op": "query", "id": job_id}
        if stream:
            payload["stream"] = True
        return self.request(payload, on_progress=on_progress)

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status", "id": "status"})

    def metrics(self) -> Dict[str, Any]:
        """Scrape the Prometheus exposition (``kind: metrics``)."""
        return self.request({"op": "metrics", "id": "metrics"})

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping", "id": "ping"})

    def shutdown(self,
                 grace: Optional[float] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "shutdown", "id": "shutdown"}
        if grace is not None:
            payload["grace"] = grace
        return self.request(payload)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessClient:
    """A :class:`SolveServer` driven synchronously on a private loop."""

    def __init__(self, config=None, *, fault_plan=None,
                 solver_config=None, tracer=None, journal=None):
        self._loop = asyncio.new_event_loop()
        self.server = SolveServer(config, fault_plan=fault_plan,
                                  solver_config=solver_config,
                                  tracer=tracer, journal=journal)
        self._loop.run_until_complete(self.server.start())

    def request(self, payload: Dict[str, Any],
                on_progress=None) -> Dict[str, Any]:
        """Serve one request to completion on the embedded loop.

        ``progress`` frames are delivered to *on_progress*
        synchronously, from inside the loop, before the terminal
        response returns -- same ordering contract as the TCP client.
        """
        send_frame = None
        if on_progress is not None:
            async def send_frame(frame):
                on_progress(frame)
        return self._loop.run_until_complete(
            self.server.handle_message(payload, send_frame))

    # The submit/status/metrics/ping/shutdown conveniences mirror
    # ServiceClient so tests can swap transports freely.
    submit = ServiceClient.submit
    query = ServiceClient.query
    status = ServiceClient.status
    metrics = ServiceClient.metrics
    ping = ServiceClient.ping

    def shutdown(self,
                 grace: Optional[float] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "shutdown", "id": "shutdown"}
        if grace is not None:
            payload["grace"] = grace
        return self.request(payload)

    def close(self) -> None:
        if not self.server._closed:
            self.shutdown(grace=0.0)
        self._loop.close()

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
