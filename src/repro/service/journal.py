"""Durable job journal for the solve service (crash recovery).

A server restart used to lose every accepted job: queued work
vanished, in-flight verdicts were never delivered, and a reconnecting
client had nothing to ask.  The journal closes that hole with an
append-only JSONL file written *ahead* of the work it describes:

* ``{"kind": "submitted", "id": ..., "request": {...}, "ts": ...}``
  -- appended the moment a submission is accepted (admission passed,
  queued), before the job ever runs;
* ``{"kind": "result", "id": ..., "response": {...}, "ts": ...}``
  -- appended when the job reaches a terminal verdict, before the
  response is released to the client or the cache.

Every write is flushed immediately, so a server killed with SIGKILL
(or the scripted ``server_kill`` fault) loses at most the record it
was in the middle of writing -- and :func:`replay_journal` tolerates
exactly that: a truncated or corrupt trailing line is counted and
skipped, never fatal.

Replay semantics (:class:`JournalReplay`): a job with a ``result``
record is *terminal* -- the restarted server re-serves the recorded
response idempotently (``query`` op / ``repro submit --reattach``)
and re-seeds its result cache from it, keeping cached replays
byte-identical across restarts.  A job with only a ``submitted``
record is *pending* -- the restarted server re-parses the recorded
request and re-enqueues it, so an accepted job always reaches a
terminal state, restart or not.  The first ``result`` per job wins:
replays can never flip a verdict that was already released.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TextIO

__all__ = ["JobJournal", "JournalReplay", "replay_journal"]


@dataclass
class JournalReplay:
    """What a journal file says about past jobs."""

    #: job id -> the exact response released for it (first wins).
    terminal: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: job id -> raw submit request of accepted-but-unfinished jobs,
    #: in acceptance order (dicts preserve insertion order).
    pending: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: job id -> raw submit request of *every* journaled submission
    #: (terminal or not) -- the restarted server recomputes cache
    #: keys from these to re-seed its result cache.
    requests: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Well-formed records read.
    records: int = 0
    #: Corrupt or truncated lines skipped.
    corrupt: int = 0


def _valid_record(record: Any) -> bool:
    if not isinstance(record, dict):
        return False
    kind = record.get("kind")
    if not isinstance(record.get("id"), str):
        return False
    if kind == "submitted":
        return isinstance(record.get("request"), dict)
    if kind == "result":
        return isinstance(record.get("response"), dict)
    return False


def replay_journal(path: str) -> JournalReplay:
    """Parse the journal at *path* (missing file = empty replay)."""
    replay = JournalReplay()
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return replay
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                replay.corrupt += 1
                continue
            if not _valid_record(record):
                replay.corrupt += 1
                continue
            replay.records += 1
            job_id = record["id"]
            if record["kind"] == "submitted":
                replay.requests.setdefault(job_id, record["request"])
                if job_id not in replay.terminal:
                    replay.pending[job_id] = record["request"]
            else:
                # First terminal wins: a verdict, once journaled, can
                # never be flipped by later records.
                replay.terminal.setdefault(job_id, record["response"])
                replay.pending.pop(job_id, None)
    return replay


class JobJournal:
    """Append-only writer half of the journal (see module docstring).

    Opens lazily and appends, so restarting with the same ``--journal
    FILE`` extends history instead of truncating it.  Write failures
    are counted, never raised: a full disk degrades durability, it
    must not take down the solve path.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[TextIO] = None
        self.records_written = 0
        self.write_errors = 0

    def _append(self, record: Dict[str, Any]) -> None:
        try:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
            # Flush every record: the write-ahead guarantee must
            # survive os._exit / SIGKILL, which skip all buffers.
            self._fh.flush()
            self.records_written += 1
        except (OSError, ValueError, TypeError):
            self.write_errors += 1

    def record_submitted(self, job_id: str,
                         request: Dict[str, Any]) -> None:
        """Write-ahead record of an accepted submission."""
        self._append({"kind": "submitted", "id": job_id,
                      "request": request, "ts": time.time()})

    def record_result(self, job_id: str,
                      response: Dict[str, Any]) -> None:
        """Terminal record, written before the response is released."""
        self._append({"kind": "result", "id": job_id,
                      "response": response, "ts": time.time()})

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
