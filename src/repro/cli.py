"""Command-line interface: ``python -m repro <command> ...``.

Wraps the library's main flows for shell use:

* ``solve FILE.cnf`` -- decide a DIMACS formula (prints a model).
* ``atpg FILE.bench`` -- stuck-at test generation report.
* ``cec A.bench B.bench`` -- combinational equivalence check.
* ``bmc FILE.bench --output NAME`` -- bounded safety check.
* ``delay FILE.bench`` -- topological vs sensitizable delay.
* ``info FILE.bench`` -- netlist statistics.
* ``optimize FILE.bench`` -- strash + sweep + redundancy removal,
  equivalence-certified.
* ``profile TRACE.jsonl`` -- render a recorded trace into a per-phase
  effort report (non-zero exit on schema violations).
* ``check FILE.cnf PROOF.drup`` -- validate a DRUP proof with the
  independent checker (exit 0 = valid, 1 = rejected with a line
  diagnostic).
* ``fuzz`` -- differential fuzzing of the solver stack with shrunk
  on-disk reproducers for any failure.
* ``serve`` -- run the fault-tolerant SAT-as-a-service endpoint
  (NDJSON over TCP; see :mod:`repro.service`).
* ``submit`` -- client for ``serve``: submit a DIMACS file, query
  STATUS, ping, or drain the server.

``solve``, ``atpg``, ``cec`` and ``bmc`` accept ``--trace FILE`` to
record a JSONL event trace (:mod:`repro.obs`); ``solve --stats-json``
additionally prints the final counters (and, single-engine, the
search-quality histograms) as one JSON line.  The same four commands
accept ``--certify`` (with optional ``--proof-dir DIR``): every UNSAT
verdict must then carry a DRUP proof validated by the independent
checker, SAT models are audited, and an answer whose evidence fails
the check is *demoted* to unknown -- never reported as proved.

Exit codes follow the SAT-competition convention for ``solve`` and
``submit`` (10 = SAT, 20 = UNSAT, 0 = unknown-because-the-budget-ran-
out), extended with 30 for an UNKNOWN that exists only because a
claimed answer failed certification (a demotion is a bug report, not
a timeout, and scripts must be able to tell them apart); rejected or
malformed service submissions exit 2, and 0/1 = pass/fail elsewhere.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _budget_from_args(args):
    """Build a :class:`repro.runtime.Budget` from the shared
    ``--timeout`` / ``--max-memory-mb`` flags (None when unset)."""
    timeout = getattr(args, "timeout", None)
    memory = getattr(args, "max_memory_mb", None)
    if timeout is None and memory is None:
        return None
    from repro.runtime.budget import Budget
    return Budget(wall_seconds=timeout, max_memory_mb=memory)


def _tracer_from_args(args):
    """Build a :class:`repro.obs.Tracer` writing JSONL to the
    ``--trace`` target (None when the flag is absent or unset).

    ``repro serve`` opts into a buffered, size-rotated sink (its
    trace lives for the server's whole lifetime); every other command
    keeps the crash-safe flush-per-line default.  The tracer opens
    with a ``trace.meta`` event so ``repro profile`` can rebase this
    trace against others when merging.
    """
    target = getattr(args, "trace", None)
    if target is None:
        return None
    from repro.obs import JsonlSink, Tracer
    max_mb = getattr(args, "trace_max_mb", None)
    sink = JsonlSink(
        target,
        buffered=bool(getattr(args, "trace_buffered", False)),
        max_bytes=(int(max_mb * 1024 * 1024)
                   if max_mb else None))
    tracer = Tracer(sink)
    tracer.emit_meta()
    return tracer


def _add_obs_flags(subparser) -> None:
    subparser.add_argument("--trace", default=None, metavar="FILE",
                           help="record a JSONL event trace here "
                                "(inspect with 'repro profile FILE')")


def _add_certify_flags(subparser) -> None:
    subparser.add_argument("--certify", action="store_true",
                           help="require checker-validated DRUP proofs "
                                "for UNSAT answers and audited models "
                                "for SAT ones; unverifiable answers "
                                "are demoted to unknown")
    subparser.add_argument("--proof-dir", default=None, metavar="DIR",
                           help="keep the proof files here (default: "
                                "cleaned-up temporaries)")


def _add_budget_flags(subparser) -> None:
    subparser.add_argument("--timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="wall-clock budget; exhaustion yields "
                                "a partial/UNKNOWN result, not an "
                                "error")
    subparser.add_argument("--max-memory-mb", type=float, default=None,
                           metavar="MB",
                           help="soft ceiling on process RSS; "
                                "exceeding it stops the search")


def _cmd_solve(args) -> int:
    from repro.cnf.dimacs import load_dimacs
    from repro.solvers.cdcl import CDCLSolver
    from repro.solvers.preprocess import preprocess

    budget = _budget_from_args(args)
    tracer = getattr(args, "obs_tracer", None)
    if args.certify and args.preprocess and args.portfolio:
        print("error: --certify with --preprocess is not supported "
              "under --portfolio (worker proofs cannot share the "
              "preprocessing prefix)", file=sys.stderr)
        return 2
    inprocess_config = None
    if args.inprocess:
        from repro.solvers.inprocess import InprocessConfig
        from repro.solvers.kernels import resolve_kernel
        try:
            resolve_kernel(args.kernel)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        inprocess_config = InprocessConfig(
            interval=args.inprocess_interval, kernel=args.kernel)
    formula = load_dimacs(args.file)
    lift = None
    certified_preprocess = args.certify and args.preprocess
    if args.preprocess and not certified_preprocess:
        pre = preprocess(formula)
        if pre.unsat:
            print("s UNSATISFIABLE")
            return 20
        lift = pre.lift_model
        formula = pre.formula
    if args.portfolio:
        from repro.solvers.portfolio import solve_portfolio
        race_dir = None
        ephemeral_dir = None
        if args.certify:
            race_dir = args.proof_dir
            if race_dir is None:
                import shutil
                import tempfile
                ephemeral_dir = tempfile.mkdtemp(prefix="repro-solve-")
                race_dir = ephemeral_dir
        try:
            result = solve_portfolio(formula, processes=args.portfolio,
                                     max_conflicts=args.max_conflicts,
                                     budget=budget, tracer=tracer,
                                     proof_dir=race_dir,
                                     inprocess=inprocess_config,
                                     propagation=args.bcp)
        finally:
            if ephemeral_dir is not None:
                shutil.rmtree(ephemeral_dir, ignore_errors=True)
        if result.winner:
            print(f"c portfolio winner: {result.winner}")
        result = result.result
        if ephemeral_dir is not None and result.certificate is not None:
            result.certificate.proof_path = None
    elif args.certify:
        import os
        from repro.verify.certificate import certified_solve
        proof_path = None
        if args.proof_dir is not None:
            os.makedirs(args.proof_dir, exist_ok=True)
            stem = os.path.splitext(os.path.basename(args.file))[0]
            proof_path = os.path.join(args.proof_dir, stem + ".drup")
        result = certified_solve(formula, proof_path=proof_path,
                                 tracer=tracer,
                                 max_conflicts=args.max_conflicts,
                                 budget=budget,
                                 preprocess=certified_preprocess,
                                 inprocess=inprocess_config,
                                 propagation=args.bcp)
    else:
        solver = CDCLSolver(formula, max_conflicts=args.max_conflicts,
                            budget=budget, inprocess=inprocess_config,
                            propagation=args.bcp)
        solver.tracer = tracer
        if args.stats_json:
            # Search-quality histograms ride the single-engine path
            # only (worker processes cannot share a registry).
            from repro.obs import SearchMetrics
            solver.metrics = SearchMetrics()
        result = solver.solve()
    if args.certify and result.certificate is not None:
        print(f"c certificate: {result.certificate.summary()}")
    if result.is_sat:
        model = lift(result.assignment) if lift else result.assignment
        print("s SATISFIABLE")
        literals = " ".join(str(lit) for lit in model.to_literals())
        code = 10
    elif result.is_unsat:
        print("s UNSATISFIABLE")
        literals = None
        code = 20
    else:
        print("s UNKNOWN")
        literals = None
        # Distinguish "ran out of budget" (0) from "an answer was
        # claimed but its certificate failed the independent check"
        # (30): the latter is evidence of a defect, and callers
        # gating CI on this command must not mistake it for a
        # timeout.
        certificate = result.certificate
        if certificate is not None and certificate.valid is False:
            code = 30
        else:
            code = 0
    if literals is not None:
        print(f"v {literals} 0")
    if args.stats_json:
        import json
        print(json.dumps(result.stats.as_dict(), sort_keys=True))
    return code


def _cmd_atpg(args) -> int:
    from repro.apps.atpg import ATPGEngine, TestOutcome
    from repro.circuits.bench_format import load_bench

    circuit = load_bench(args.file)
    engine = ATPGEngine(circuit, collapse=args.collapse,
                        fault_dropping=not args.no_dropping,
                        budget=_budget_from_args(args),
                        tracer=getattr(args, "obs_tracer", None),
                        certify=args.certify,
                        proof_dir=args.proof_dir)
    report = engine.run()
    if report.budget_exhausted:
        print("note: budget exhausted, report is partial")
    if args.certify:
        proofs = sum(1 for r in report.results
                     if r.certificate is not None
                     and r.certificate.kind == "proof"
                     and r.certificate.valid)
        demoted = sum(1 for r in report.results
                      if r.certificate is not None
                      and r.certificate.valid is False)
        print(f"certified:  {proofs} redundancy proofs checked"
              + (f", {demoted} answer(s) demoted (check failed)"
                 if demoted else ""))
    print(f"faults:     {len(report.results)}")
    print(f"detected:   {report.count(TestOutcome.DETECTED)} by SAT, "
          f"{report.count(TestOutcome.DETECTED_BY_SIMULATION)} "
          f"by simulation")
    print(f"redundant:  {report.count(TestOutcome.REDUNDANT)}")
    print(f"aborted:    {report.count(TestOutcome.ABORTED)}")
    print(f"vectors:    {len(report.vectors)}")
    print(f"efficiency: {report.fault_coverage:.2%}")
    if args.vectors:
        names = circuit.inputs
        for vector in report.vectors:
            print("".join("1" if vector[n] else "0" for n in names))
    return 0 if report.count(TestOutcome.ABORTED) == 0 else 1


def _cmd_cec(args) -> int:
    from repro.apps.equivalence import check_equivalence
    from repro.circuits.bench_format import load_bench

    left = load_bench(args.left)
    right = load_bench(args.right)
    if args.certify and args.preprocess:
        print("error: --certify is incompatible with --preprocess "
              "(the proof would certify the preprocessed miter, not "
              "the encoded one)", file=sys.stderr)
        return 2
    report = check_equivalence(
        left, right,
        use_preprocessing=args.preprocess,
        use_strash=args.strash,
        backend="portfolio" if args.portfolio else "cdcl",
        portfolio_processes=args.portfolio or None,
        budget=_budget_from_args(args),
        tracer=getattr(args, "obs_tracer", None),
        certify=args.certify,
        proof_dir=args.proof_dir)
    if args.certify and report.certificate is not None:
        print(f"certificate: {report.certificate.summary()}")
    if report.equivalent is True:
        print("EQUIVALENT")
        return 0
    if report.equivalent is False:
        print("NOT EQUIVALENT")
        names = left.inputs
        print("counterexample:",
              " ".join(f"{n}={int(report.counterexample[n])}"
                       for n in names))
        return 1
    certificate = report.certificate
    if certificate is not None and certificate.valid is False:
        print("UNKNOWN (answer demoted: certification failed)")
    else:
        print("UNKNOWN (budget exhausted)")
    return 2


def _cmd_bmc(args) -> int:
    from repro.apps.bmc import check_safety
    from repro.circuits.bench_format import load_bench

    circuit = load_bench(args.file)
    output = args.output or circuit.outputs[0]
    result = check_safety(circuit, output, bad_value=not args.low,
                          max_depth=args.depth,
                          budget=_budget_from_args(args),
                          tracer=getattr(args, "obs_tracer", None),
                          certify=args.certify,
                          proof_dir=args.proof_dir)
    if args.certify:
        checked = sum(1 for c in result.certificates
                      if c is not None and c.kind == "proof" and c.valid)
        print(f"certified: {checked} per-depth unreachability "
              f"proofs checked")
    if result.discrepant:
        print(f"DISCREPANT: depth {result.depths_proved} produced an "
              f"UNSAT whose proof failed the independent check "
              f"(property proved only through depth "
              f"{result.depths_proved - 1})"
              if result.depths_proved else
              "DISCREPANT: first depth's proof failed the independent "
              "check; nothing proved")
        return 2
    if result.budget_exhausted:
        print(f"budget exhausted: property proved through depth "
              f"{result.depths_proved - 1}"
              if result.depths_proved else
              "budget exhausted: no depth proved")
        return 2
    if result.failure_depth is None:
        print(f"property holds through depth {args.depth}")
        return 0
    print(f"counterexample at depth {result.failure_depth}")
    for frame, vector in enumerate(result.trace):
        bits = " ".join(f"{name}={int(value)}"
                        for name, value in sorted(vector.items()))
        print(f"  cycle {frame}: {bits}")
    return 1


def _cmd_delay(args) -> int:
    from repro.apps.delay import compute_delay
    from repro.circuits.bench_format import load_bench

    circuit = load_bench(args.file)
    report = compute_delay(circuit, max_paths=args.max_paths)
    print(f"topological delay:  {report.topological_delay}")
    print(f"sensitizable delay: {report.sensitizable_delay}")
    print(f"false paths found:  {report.false_paths_examined}")
    if report.critical_path:
        print("critical path:      " + " -> ".join(report.critical_path))
    return 0


def _cmd_info(args) -> int:
    from repro.circuits.bench_format import load_bench

    circuit = load_bench(args.file)
    for key, value in circuit.stats().items():
        print(f"{key}: {value}")
    return 0


def _cmd_optimize(args) -> int:
    from repro.apps.equivalence import check_equivalence
    from repro.apps.redundancy import optimize, sweep
    from repro.circuits.bench_format import load_bench, save_bench
    from repro.circuits.strash import structural_hash

    circuit = load_bench(args.file)
    before = circuit.num_gates()
    optimized = sweep(structural_hash(circuit))
    if not args.no_redundancy and not optimized.is_sequential():
        optimized, report = optimize(optimized)
        removed_faults = len(report.redundant_faults)
    else:
        removed_faults = 0
    print(f"gates: {before} -> {optimized.num_gates()}")
    print(f"redundant faults removed: {removed_faults}")
    if not circuit.is_sequential():
        verdict = check_equivalence(circuit, optimized)
        print(f"equivalence certified: {verdict.equivalent}")
        if verdict.equivalent is False:
            return 2
    if args.output:
        save_bench(optimized, args.output)
        print(f"written: {args.output}")
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import profile_traces
    from repro.solvers.kernels import capability

    text, problems = profile_traces(args.files)
    print(text)
    cap = capability()
    numpy_note = (f"numpy {cap['numpy_version']}" if cap["numpy"]
                  else "numpy not installed")
    backends = "/".join(cap["propagation_backends"])
    print(f"kernels: default={cap['default_kernel']} ({numpy_note}); "
          f"propagation={backends} "
          f"(default={cap['default_propagation']})")
    return 1 if problems else 0


def _cmd_check(args) -> int:
    from repro.cnf.dimacs import load_dimacs
    from repro.verify.checker import check_proof_file

    formula = load_dimacs(args.formula)
    outcome = check_proof_file(formula, args.proof)
    if outcome.valid:
        print(f"VALID: {outcome.adds} additions, {outcome.deletes} "
              f"deletions, empty clause derived")
        return 0
    print(f"INVALID: {outcome.error}")
    return 1


def _cmd_fuzz(args) -> int:
    from repro.verify.fuzz import run_fuzz

    def progress(done, report):
        if done % args.progress_every == 0:
            print(f"[{done}/{args.iterations}] {report.summary()}",
                  flush=True)

    report = run_fuzz(args.iterations, seed=args.seed,
                      out_dir=args.out_dir,
                      max_vars=args.max_vars,
                      portfolio_every=args.portfolio_every,
                      on_progress=progress
                      if args.progress_every > 0 else None)
    print(report.summary())
    for failure in report.failures:
        where = f" -> {failure.cnf_path}" if failure.cnf_path else ""
        print(f"FAILURE [{failure.kind}] seed={failure.seed}: "
              f"{failure.detail} (shrunk {failure.original_clauses} -> "
              f"{failure.shrunk_clauses} clauses){where}")
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    import asyncio
    import json

    from repro.service.admission import ServiceConfig
    from repro.service.server import run_server

    fault_plan = None
    if args.fault_plan:
        from repro.runtime.faults import ServiceFaultPlan
        try:
            fault_plan = ServiceFaultPlan.from_dict(
                json.loads(args.fault_plan))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            print(f"error: bad --fault-plan: {exc}", file=sys.stderr)
            return 2
    config = ServiceConfig(
        max_workers=args.workers,
        queue_depth=args.queue_depth,
        max_hardness=args.max_hardness,
        default_deadline=args.default_deadline,
        grace_seconds=args.grace_seconds)
    worker_trace_dir = args.worker_trace_dir
    if worker_trace_dir is None and args.trace is not None \
            and not args.no_worker_traces:
        worker_trace_dir = args.trace + ".workers"

    def ready(bound):
        print(f"listening on {bound[0]}:{bound[1]}", flush=True)

    try:
        asyncio.run(run_server(config, args.host, args.port,
                               fault_plan=fault_plan,
                               tracer=getattr(args, "obs_tracer", None),
                               worker_trace_dir=worker_trace_dir,
                               journal=args.journal,
                               ready=ready))
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 1
    print("drained and stopped")
    return 0


def _progress_printer():
    """A per-frame renderer for ``repro submit --stream``.

    On a TTY each frame repaints one status line in place; piped
    output gets one ``c progress ...`` line per frame (DIMACS-comment
    prefixed, so downstream result parsing is unaffected).
    """
    tty = sys.stdout.isatty()
    saw_frame = [False]

    def show(frame):
        snap = frame.get("snapshot", {})
        rate = snap.get("propagations_per_sec", 0)
        line = (f"c progress #{frame.get('seq')} "
                f"attempt {frame.get('attempt')} "
                f"{frame.get('elapsed', 0):.1f}s: "
                f"{snap.get('conflicts', 0):,} conflicts, "
                f"{snap.get('propagations', 0):,} props "
                f"({rate:,.0f}/s), "
                f"{snap.get('restarts', 0)} restarts")
        if "arena_fill" in snap:
            line += f", arena {snap['arena_fill']:.2f}"
        if tty:
            sys.stdout.write("\r\x1b[K" + line)
            saw_frame[0] = True
        else:
            sys.stdout.write(line + "\n")
        sys.stdout.flush()

    def finish():
        if tty and saw_frame[0]:
            sys.stdout.write("\n")
            sys.stdout.flush()

    show.finish = finish
    return show


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceClient

    dimacs = None
    if args.file is not None:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                dimacs = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.file}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        client = ServiceClient(args.host, args.port,
                               timeout=args.client_timeout)
    except OSError as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    try:
        if args.ping or args.op == "ping":
            response = client.ping()
            print(response["kind"])
            return 0 if response.get("kind") == "pong" else 2
        if args.status or args.op == "status":
            import json
            print(json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        if args.op == "metrics":
            response = client.metrics()
            if response.get("kind") != "metrics":
                print(f"ERROR [{response.get('code')}]: "
                      f"{response.get('reason')}", file=sys.stderr)
                return 2
            sys.stdout.write(response.get("text", ""))
            return 0
        if args.shutdown or args.op == "shutdown":
            response = client.shutdown(grace=args.grace_seconds)
            print(f"drained {response.get('drained', 0)} job(s), "
                  f"cancelled {response.get('cancelled', 0)}")
            return 0
        if args.reattach is not None:
            on_progress = _progress_printer() if args.stream else None
            response = client.query(args.reattach,
                                    stream=args.stream,
                                    on_progress=on_progress)
        elif dimacs is None:
            print("error: a CNF file (or --status/--ping/--shutdown/"
                  "--reattach/--op) is required", file=sys.stderr)
            return 2
        else:
            job_id = args.id or os.path.basename(args.file)
            on_progress = _progress_printer() if args.stream else None
            response = client.submit(
                job_id, dimacs=dimacs, tenant=args.tenant,
                deadline=args.deadline,
                max_conflicts=args.max_conflicts,
                certify=args.certify, use_cache=not args.no_cache,
                stream=args.stream, on_progress=on_progress)
    except BrokenPipeError:
        raise           # stdout's consumer went away, not the server
    except (ConnectionError, OSError) as exc:
        print(f"error: connection lost: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    if on_progress is not None:
        on_progress.finish()
    kind = response.get("kind")
    if kind == "rejected":
        print(f"REJECTED [{response.get('code')}]: "
              f"{response.get('reason')}")
        return 2
    if kind != "result":
        print(f"ERROR [{response.get('code')}]: "
              f"{response.get('reason')}", file=sys.stderr)
        return 2
    body = response["body"]
    cached = " (cached)" if response.get("cached") else ""
    if body.get("certificate") is not None:
        cert = body["certificate"]
        if cert.get("kind") == "proof":
            summary = (f"proof verified, {cert.get('steps')} step(s)"
                       if cert.get("valid")
                       else f"proof INVALID: {cert.get('reason')}")
        elif cert.get("kind") == "model":
            summary = ("model verified" if cert.get("valid")
                       else f"model INVALID: {cert.get('reason')}")
        else:
            summary = cert.get("reason") or "none"
        print(f"c certificate: {summary}")
    if body.get("degraded"):
        print(f"c degraded: {body.get('degraded_reason')} "
              f"after {body.get('attempts')} attempt(s)")
        if body.get("partial"):
            partial = body["partial"]
            print(f"c partial: attempt {partial.get('attempt')} at "
                  f"{partial.get('elapsed')}s")
    status = body["status"]
    print(f"s {status}{cached}")
    if status == "SATISFIABLE":
        model = body.get("model") or []
        print("v " + " ".join(str(lit) for lit in model) + " 0")
        return 10
    if status == "UNSATISFIABLE":
        return 20
    return 30 if body.get("degraded_reason") == "certification" else 0


def _cmd_top(args) -> int:
    from repro.service.client import ServiceClient
    from repro.service.top import run_top

    try:
        client = ServiceClient(args.host, args.port,
                               timeout=args.client_timeout)
    except OSError as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    iterations = 1 if args.once else args.iterations
    try:
        return run_top(client, interval=args.interval,
                       iterations=iterations, clear=not args.once)
    finally:
        client.close()


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SAT for EDA (Marques-Silva & Sakallah, DAC 2000)")
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="solve a DIMACS CNF file")
    solve.add_argument("file")
    solve.add_argument("--preprocess", action="store_true",
                       help="run Preprocess() incl. equivalency "
                            "reasoning first")
    solve.add_argument("--max-conflicts", type=int, default=None)
    solve.add_argument("--inprocess", action="store_true",
                       help="periodic in-search simplification "
                            "(subsumption, vivification, bounded "
                            "variable elimination, equivalent-literal "
                            "substitution) on the clause arena")
    solve.add_argument("--inprocess-interval", type=int, default=2000,
                       metavar="CONFLICTS",
                       help="conflicts between inprocessing runs "
                            "(default: 2000)")
    solve.add_argument("--kernel", choices=("auto", "numpy", "python"),
                       default="auto",
                       help="simplification kernel implementation "
                            "(auto = numpy when installed)")
    solve.add_argument("--bcp",
                       choices=("auto", "watch", "numpy", "python"),
                       default="auto",
                       help="propagation backend: watch = two-literal "
                            "watching (default), numpy/python = batch "
                            "counter kernel over the arena occurrence "
                            "index (numpy falls back to python when "
                            "not installed); under --portfolio this "
                            "overrides every slot")
    solve.add_argument("--portfolio", type=int, default=0, metavar="N",
                       help="race N diversified CDCL configurations "
                            "in parallel (0 = single engine)")
    solve.add_argument("--stats-json", action="store_true",
                       help="print the final solver counters (and "
                            "single-engine search-quality histograms) "
                            "as one JSON line")
    _add_budget_flags(solve)
    _add_obs_flags(solve)
    _add_certify_flags(solve)
    solve.set_defaults(handler=_cmd_solve)

    atpg = commands.add_parser("atpg",
                               help="stuck-at ATPG on a .bench netlist")
    atpg.add_argument("file")
    atpg.add_argument("--collapse", action="store_true",
                      help="structural fault collapsing")
    atpg.add_argument("--no-dropping", action="store_true",
                      help="disable simulation fault dropping")
    atpg.add_argument("--vectors", action="store_true",
                      help="print the generated vectors")
    _add_budget_flags(atpg)
    _add_obs_flags(atpg)
    _add_certify_flags(atpg)
    atpg.set_defaults(handler=_cmd_atpg)

    cec = commands.add_parser("cec",
                              help="combinational equivalence check")
    cec.add_argument("left")
    cec.add_argument("right")
    cec.add_argument("--preprocess", action="store_true")
    cec.add_argument("--portfolio", type=int, default=0, metavar="N",
                     help="race N diversified CDCL configurations on "
                          "the miter (0 = single engine)")
    cec.add_argument("--strash", action="store_true",
                     help="structurally hash the miter first")
    _add_budget_flags(cec)
    _add_obs_flags(cec)
    _add_certify_flags(cec)
    cec.set_defaults(handler=_cmd_cec)

    bmc = commands.add_parser("bmc", help="bounded safety check")
    bmc.add_argument("file")
    bmc.add_argument("--output", default=None,
                     help="output to watch (default: first PO)")
    bmc.add_argument("--depth", type=int, default=10)
    bmc.add_argument("--low", action="store_true",
                     help="look for value 0 instead of 1")
    _add_budget_flags(bmc)
    _add_obs_flags(bmc)
    _add_certify_flags(bmc)
    bmc.set_defaults(handler=_cmd_bmc)

    delay = commands.add_parser("delay",
                                help="sensitizable-delay analysis")
    delay.add_argument("file")
    delay.add_argument("--max-paths", type=int, default=1000)
    delay.set_defaults(handler=_cmd_delay)

    info = commands.add_parser("info", help="netlist statistics")
    info.add_argument("file")
    info.set_defaults(handler=_cmd_info)

    optimize = commands.add_parser(
        "optimize",
        help="strash + sweep + SAT redundancy removal")
    optimize.add_argument("file")
    optimize.add_argument("--output", default=None,
                          help="write the optimized .bench here")
    optimize.add_argument("--no-redundancy", action="store_true",
                          help="skip the SAT redundancy-removal pass")
    optimize.set_defaults(handler=_cmd_optimize)

    profile = commands.add_parser(
        "profile",
        help="per-phase effort report from --trace JSONL files; "
             "several files (server + worker traces) are merged "
             "into one correlated timeline")
    profile.add_argument("files", nargs="+", metavar="FILE")
    profile.set_defaults(handler=_cmd_profile)

    check = commands.add_parser(
        "check",
        help="validate a DRUP proof with the independent checker")
    check.add_argument("formula", help="the DIMACS CNF the proof is of")
    check.add_argument("proof", help="the DRUP proof file")
    check.set_defaults(handler=_cmd_check)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzzing of the solver stack "
             "(CDCL vs DPLL vs recursive learning, proofs checked)")
    fuzz.add_argument("--iterations", type=int, default=100)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--out-dir", default=None, metavar="DIR",
                      help="write shrunk reproducers (DIMACS + JSON) "
                           "here on failure")
    fuzz.add_argument("--max-vars", type=int, default=26,
                      help="instance size cap")
    fuzz.add_argument("--portfolio-every", type=int, default=0,
                      metavar="K",
                      help="every K rounds, race a certified "
                           "supervised portfolio under a random "
                           "fault plan (0 = never)")
    fuzz.add_argument("--progress-every", type=int, default=100,
                      metavar="N",
                      help="print a progress line every N rounds "
                           "(0 = silent)")
    fuzz.set_defaults(handler=_cmd_fuzz)

    serve = commands.add_parser(
        "serve",
        help="run the SAT-as-a-service endpoint (NDJSON over TCP)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9123,
                       help="TCP port (0 = ephemeral, printed on "
                            "startup)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent solve processes")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="queued jobs allowed per tenant before "
                            "load shedding")
    serve.add_argument("--max-hardness", type=float, default=5000.0,
                       metavar="SCORE",
                       help="admission ceiling on the static hardness "
                            "estimate (vars x phase-transition "
                            "closeness)")
    serve.add_argument("--default-deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="wall budget for jobs without their own")
    serve.add_argument("--grace-seconds", type=float, default=10.0,
                       help="drain window of a shutdown request")
    serve.add_argument("--fault-plan", default=None, metavar="JSON",
                       help="scripted ServiceFaultPlan for chaos "
                            "testing, e.g. "
                            "'{\"crashes\": {\"job-1\": 1}}'")
    serve.add_argument("--journal", default=None, metavar="FILE",
                       help="append-only JSONL job journal; an "
                            "existing file is replayed on startup "
                            "(accepted-but-unfinished jobs re-run, "
                            "finished ones answer 'repro submit "
                            "--reattach' idempotently)")
    _add_obs_flags(serve)
    serve.add_argument("--trace-max-mb", type=float, default=64.0,
                       metavar="MB",
                       help="rotate the server --trace file when it "
                            "exceeds this size (old file kept as "
                            "FILE.1; 0 disables rotation)")
    serve.add_argument("--worker-trace-dir", default=None,
                       metavar="DIR",
                       help="per-attempt worker trace files go here "
                            "(default: '<trace>.workers' when "
                            "--trace is set); merge with 'repro "
                            "profile TRACE DIR/*.jsonl'")
    serve.add_argument("--no-worker-traces", action="store_true",
                       help="suppress the default worker trace dir "
                            "even when --trace is set")
    # A server trace is long-lived: buffered writes, not per-line
    # flushes (solver traces elsewhere keep the crash-safe default).
    serve.set_defaults(handler=_cmd_serve, trace_buffered=True)

    submit = commands.add_parser(
        "submit",
        help="submit a DIMACS file to a running 'repro serve'")
    submit.add_argument("file", nargs="?", default=None)
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=9123)
    submit.add_argument("--tenant", default="default",
                        help="fairness bucket this job bills to")
    submit.add_argument("--id", default=None,
                        help="job id (default: the file name)")
    submit.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall budget, retries included")
    submit.add_argument("--max-conflicts", type=int, default=None)
    submit.add_argument("--certify", action="store_true",
                        help="require a checked proof / audited model")
    submit.add_argument("--no-cache", action="store_true",
                        help="bypass the server's result cache")
    submit.add_argument("--client-timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="socket timeout waiting for the response")
    submit.add_argument("--grace-seconds", type=float, default=None,
                        help="drain window passed with --shutdown")
    submit.add_argument("--stream", action="store_true",
                        help="receive live mid-solve progress frames "
                             "(rendered as a repainting status line "
                             "on a TTY, 'c progress' lines when "
                             "piped)")
    submit.add_argument("--reattach", default=None, metavar="JOB_ID",
                        help="recover the verdict of a previously "
                             "submitted job instead of sending a new "
                             "one (works across server restarts when "
                             "the server runs with --journal; combine "
                             "with --stream to re-join a running "
                             "job's progress frames)")
    submit.add_argument("--op", default=None,
                        choices=("metrics", "status", "ping",
                                 "shutdown"),
                        help="send a non-submit op instead of a job; "
                             "'metrics' prints the Prometheus "
                             "exposition text")
    submit.add_argument("--status", action="store_true",
                        help="print the server STATUS as JSON")
    submit.add_argument("--ping", action="store_true")
    submit.add_argument("--shutdown", action="store_true",
                        help="drain the server and stop it")
    submit.set_defaults(handler=_cmd_submit)

    top = commands.add_parser(
        "top",
        help="live dashboard of a running 'repro serve' (per-tenant "
             "queues, deficits, workers, throughput, cache)")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=9123)
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="refresh period")
    top.add_argument("--iterations", type=int, default=None,
                     metavar="N",
                     help="stop after N refreshes (default: until "
                          "interrupted)")
    top.add_argument("--once", action="store_true",
                     help="render one frame without clearing the "
                          "screen and exit (scripts, smoke tests)")
    top.add_argument("--client-timeout", type=float, default=10.0,
                     metavar="SECONDS")
    top.set_defaults(handler=_cmd_top)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    tracer = _tracer_from_args(args)
    args.obs_tracer = tracer
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream closed stdout early (| head, | grep -q).  Follow
        # the shell's SIGPIPE convention: 128 + SIGPIPE, no traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141
    finally:
        if tracer is not None:
            tracer.close()


if __name__ == "__main__":
    sys.exit(main())
