"""Two- and three-valued circuit simulation.

Simulation is the substrate several applications lean on:

* ATPG (Section 3) uses good/faulty simulation for fault dropping,
* equivalence checking uses random simulation as a cheap prefilter
  before invoking SAT on the miter,
* BMC cross-checks counterexample traces,
* the test suite validates every CNF encoding against simulation.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.circuits.gates import GateType, evaluate_gate, evaluate_gate3
from repro.circuits.netlist import Circuit


def simulate(circuit: Circuit, inputs: Dict[str, bool],
             state: Optional[Dict[str, bool]] = None,
             faults: Optional[Dict[str, bool]] = None) -> Dict[str, bool]:
    """Two-valued simulation of the combinational part of *circuit*.

    *inputs* maps every primary input to a value; *state* maps every DFF
    output (required when the circuit is sequential).  *faults*
    optionally forces node outputs to fixed values -- the single
    stuck-at fault model of Section 3 (``{"n5": False}`` simulates n5
    stuck-at-0).

    Returns the value of every node.
    """
    values: Dict[str, bool] = {}
    state = state or {}
    faults = faults or {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type is GateType.INPUT:
            if name not in inputs:
                raise KeyError(f"no value for primary input {name!r}")
            value = bool(inputs[name])
        elif node.gate_type is GateType.DFF:
            if name not in state:
                raise KeyError(f"no state value for DFF {name!r}")
            value = bool(state[name])
        else:
            value = evaluate_gate(node.gate_type,
                                  [values[f] for f in node.fanins])
        if name in faults:
            value = bool(faults[name])
        values[name] = value
    return values


def simulate3(circuit: Circuit, inputs: Dict[str, Optional[bool]],
              state: Optional[Dict[str, Optional[bool]]] = None
              ) -> Dict[str, Optional[bool]]:
    """Three-valued (0/1/X) simulation; missing inputs default to X.

    Used to check that a *partial* input assignment (e.g. from the
    justification-frontier solver of Section 5) already determines the
    objective, i.e. that unassigned inputs are genuine don't-cares.
    """
    values: Dict[str, Optional[bool]] = {}
    state = state or {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type is GateType.INPUT:
            values[name] = inputs.get(name)
        elif node.gate_type is GateType.DFF:
            values[name] = state.get(name)
        else:
            values[name] = evaluate_gate3(
                node.gate_type, [values[f] for f in node.fanins])
    return values


def next_state(circuit: Circuit, values: Dict[str, bool]) -> Dict[str, bool]:
    """Extract the next-state vector from a simulation result.

    Each DFF samples its data input; the returned dict maps DFF names to
    the values they hold after the clock edge.
    """
    result = {}
    for dff in circuit.dffs:
        data = circuit.node(dff).fanins
        if not data:
            raise ValueError(f"DFF {dff!r} has no data input")
        result[dff] = values[data[0]]
    return result


def simulate_sequence(circuit: Circuit,
                      input_vectors: Sequence[Dict[str, bool]],
                      initial_state: Optional[Dict[str, bool]] = None
                      ) -> List[Dict[str, bool]]:
    """Clock the sequential circuit through *input_vectors*.

    Starts from *initial_state* (all-zero by default) and returns the
    full node-value map of every cycle.  BMC counterexample traces are
    replayed through this function as an independent check.
    """
    state = dict(initial_state) if initial_state else \
        {dff: False for dff in circuit.dffs}
    frames = []
    for vector in input_vectors:
        values = simulate(circuit, vector, state)
        frames.append(values)
        state = next_state(circuit, values)
    return frames


def random_vector(circuit: Circuit,
                  rng: Union[int, random.Random, None] = None
                  ) -> Dict[str, bool]:
    """A uniformly random primary-input vector."""
    if not isinstance(rng, random.Random):
        rng = random.Random(rng)
    return {name: rng.random() < 0.5 for name in circuit.inputs}


def output_values(circuit: Circuit,
                  values: Dict[str, bool]) -> Dict[str, bool]:
    """Project a node-value map onto the primary outputs."""
    return {name: values[name] for name in circuit.outputs}


def exhaustive_truth_table(circuit: Circuit,
                           max_inputs: int = 16) -> Dict[tuple, tuple]:
    """The full truth table: input tuple -> output tuple.

    Refuses to enumerate more than ``2**max_inputs`` rows.  The test
    suite uses this to compare circuits and their CNF encodings on
    small examples.
    """
    names = circuit.inputs
    if len(names) > max_inputs:
        raise ValueError(f"{len(names)} inputs exceed max_inputs={max_inputs}")
    table = {}
    for index in range(1 << len(names)):
        vector = {name: bool((index >> bit) & 1)
                  for bit, name in enumerate(names)}
        values = simulate(circuit, vector)
        key = tuple(vector[name] for name in names)
        table[key] = tuple(values[name] for name in circuit.outputs)
    return table


def counts_agreeing(circuit_a: Circuit, circuit_b: Circuit,
                    vectors: Iterable[Dict[str, bool]]) -> int:
    """How many of *vectors* produce identical output tuples on the two
    circuits (which must share input and output names)."""
    agree = 0
    for vector in vectors:
        out_a = output_values(circuit_a, simulate(circuit_a, vector))
        out_b = output_values(circuit_b, simulate(circuit_b, vector))
        if out_a == out_b:
            agree += 1
    return agree
