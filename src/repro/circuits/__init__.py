"""Combinational/sequential circuit substrate (paper Sections 2 and 5).

* :mod:`repro.circuits.gates` -- gate types, truth semantics, Table 1 CNF.
* :mod:`repro.circuits.netlist` -- the :class:`Circuit` netlist model.
* :mod:`repro.circuits.tseitin` -- circuit-to-CNF encoding.
* :mod:`repro.circuits.simulate` -- 2- and 3-valued simulation.
* :mod:`repro.circuits.bench_format` -- ISCAS-85/89 ``.bench`` I/O.
* :mod:`repro.circuits.library` -- the paper's example circuits and classics.
* :mod:`repro.circuits.generators` -- parameterized circuit families.
* :mod:`repro.circuits.faults` -- the single stuck-at fault model.
"""

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit, Node
from repro.circuits.tseitin import CircuitEncoding, encode_circuit

__all__ = [
    "Circuit",
    "CircuitEncoding",
    "GateType",
    "Node",
    "encode_circuit",
]
