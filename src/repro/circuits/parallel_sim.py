"""Bit-parallel (pattern-parallel) circuit simulation.

The classic EDA trick: a Python integer carries one bit per test
pattern, so a single pass of bitwise operations simulates the whole
pattern block at once.  Fault simulation -- the inner loop of every
ATPG flow (Section 3) -- is where this pays: the engine simulates the
good machine once per block and each fault against the block, instead
of once per (fault, vector) pair.

Word width is unbounded (Python ints), so a "block" can be thousands
of patterns; helpers pack/unpack between vector dicts and pattern
words.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.faults import StuckAtFault
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit


def pack_vectors(circuit: Circuit,
                 vectors: Sequence[Dict[str, bool]]
                 ) -> Dict[str, int]:
    """Pack per-pattern input vectors into one word per input.

    Bit *i* of each word is pattern *i*'s value.
    """
    words = {name: 0 for name in circuit.inputs}
    for index, vector in enumerate(vectors):
        for name in circuit.inputs:
            if vector[name]:
                words[name] |= 1 << index
    return words


def unpack_word(word: int, num_patterns: int) -> List[bool]:
    """The per-pattern values of one packed node word."""
    return [bool((word >> index) & 1) for index in range(num_patterns)]


def simulate_parallel(circuit: Circuit, input_words: Dict[str, int],
                      num_patterns: int,
                      state_words: Optional[Dict[str, int]] = None,
                      faults: Optional[Dict[str, bool]] = None
                      ) -> Dict[str, int]:
    """Pattern-parallel two-valued simulation.

    *input_words* maps each primary input to a packed word; *faults*
    forces nodes to all-zeros/all-ones words (stuck lines).  Returns a
    packed word per node.
    """
    mask = (1 << num_patterns) - 1
    ones = mask
    state_words = state_words or {}
    faults = faults or {}
    words: Dict[str, int] = {}

    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type is GateType.INPUT:
            value = input_words[name] & mask
        elif node.gate_type is GateType.DFF:
            value = state_words.get(name, 0) & mask
        elif node.gate_type is GateType.CONST0:
            value = 0
        elif node.gate_type is GateType.CONST1:
            value = ones
        else:
            operands = [words[f] for f in node.fanins]
            value = _gate_word(node.gate_type, operands, ones)
        if name in faults:
            value = ones if faults[name] else 0
        words[name] = value
    return words


def _gate_word(gate_type: GateType, operands: List[int],
               ones: int) -> int:
    if gate_type is GateType.AND or gate_type is GateType.NAND:
        value = ones
        for word in operands:
            value &= word
        return value if gate_type is GateType.AND else value ^ ones
    if gate_type is GateType.OR or gate_type is GateType.NOR:
        value = 0
        for word in operands:
            value |= word
        return value if gate_type is GateType.OR else value ^ ones
    if gate_type is GateType.XOR or gate_type is GateType.XNOR:
        value = 0
        for word in operands:
            value ^= word
        return value if gate_type is GateType.XOR else value ^ ones
    if gate_type is GateType.NOT:
        return operands[0] ^ ones
    if gate_type is GateType.BUFFER:
        return operands[0]
    raise ValueError(f"{gate_type.value} has no word semantics")


def parallel_fault_simulate(circuit: Circuit,
                            faults: Iterable[StuckAtFault],
                            vectors: Sequence[Dict[str, bool]]
                            ) -> Dict[StuckAtFault, Optional[int]]:
    """Pattern-parallel serial-fault simulation.

    For each fault, the index of the first detecting vector (``None``
    when the block detects nothing) -- same contract as
    :func:`repro.circuits.faults.fault_simulate`, typically an order
    of magnitude faster on non-trivial blocks.
    """
    num_patterns = len(vectors)
    if num_patterns == 0:
        return {fault: None for fault in faults}
    input_words = pack_vectors(circuit, vectors)
    good = simulate_parallel(circuit, input_words, num_patterns)

    results: Dict[StuckAtFault, Optional[int]] = {}
    for fault in faults:
        bad = simulate_parallel(circuit, input_words, num_patterns,
                                faults={fault.node: fault.value})
        difference = 0
        for output in circuit.outputs:
            difference |= good[output] ^ bad[output]
        if difference:
            results[fault] = (difference & -difference).bit_length() - 1
        else:
            results[fault] = None
    return results


def random_pattern_coverage(circuit: Circuit,
                            faults: Sequence[StuckAtFault],
                            num_patterns: int = 64,
                            seed: int = 0
                            ) -> Tuple[Dict[StuckAtFault,
                                            Optional[int]], float]:
    """Random-pattern fault grading: detection map plus coverage.

    The standard front-end of deterministic ATPG -- random patterns
    detect the easy faults; SAT targets the survivors.
    """
    import random as _random

    rng = _random.Random(seed)
    vectors = [{name: rng.random() < 0.5 for name in circuit.inputs}
               for _ in range(num_patterns)]
    detection = parallel_fault_simulate(circuit, faults, vectors)
    detected = sum(1 for hit in detection.values() if hit is not None)
    coverage = detected / len(faults) if faults else 1.0
    return detection, coverage
