"""The single stuck-at fault model (paper Section 3, ATPG).

A stuck-at fault fixes one circuit node to a constant regardless of the
logic driving it.  This module provides the fault universe, fault
simulation (via :func:`repro.circuits.simulate.simulate` fault
injection) and faulty-circuit construction used by the SAT-based test
generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.circuits.simulate import simulate


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """Node *node* stuck at value *value* (0 or 1)."""

    node: str
    value: bool

    def __str__(self) -> str:
        return f"{self.node}/sa{int(self.value)}"


def full_fault_list(circuit: Circuit,
                    include_inputs: bool = True,
                    include_state: bool = False) -> List[StuckAtFault]:
    """Both stuck-at faults on every gate output (and PI when requested).

    This is the *stem* fault universe.  ``include_state`` adds faults
    on DFF outputs (meaningful for sequential ATPG only; combinational
    tools treat state as free pseudo-inputs).
    """
    faults = []
    for node in circuit:
        if node.gate_type is GateType.DFF and not include_state:
            continue
        if node.is_input and not include_inputs:
            continue
        if node.gate_type in (GateType.CONST0, GateType.CONST1):
            continue
        faults.append(StuckAtFault(node.name, False))
        faults.append(StuckAtFault(node.name, True))
    return faults


FAULT_NODE = "__fault__"


def inject_fault(circuit: Circuit, fault: StuckAtFault,
                 name: Optional[str] = None) -> Circuit:
    """A copy of *circuit* with *fault* hard-wired.

    The faulty circuit keeps the exact primary-input list of the good
    circuit (so miters and shared test vectors line up): the fault site
    keeps its logic, but a constant node ``__fault__`` replaces it in
    the fanin of every downstream gate (and in the output list when the
    site is a primary output).
    """
    if fault.node not in circuit:
        raise ValueError(f"unknown fault site {fault.node!r}")
    if FAULT_NODE in circuit:
        raise ValueError(f"circuit already contains a {FAULT_NODE} node")
    faulty = Circuit(name or f"{circuit.name}_{fault}")
    faulty.add_const(FAULT_NODE, fault.value)

    def redirect(fanins):
        return tuple(FAULT_NODE if f == fault.node else f for f in fanins)

    for node in circuit:
        if node.is_input:
            faulty.add_input(node.name)
        elif node.gate_type is GateType.DFF:
            fanin = redirect(node.fanins)
            faulty.add_dff(node.name, fanin[0] if fanin else None)
        elif node.gate_type in (GateType.CONST0, GateType.CONST1):
            faulty.add_const(node.name,
                             node.gate_type is GateType.CONST1)
        else:
            faulty.add_gate(node.name, node.gate_type,
                            redirect(node.fanins))
    for output in circuit.outputs:
        faulty.set_output(FAULT_NODE if output == fault.node else output)
    return faulty


def detects(circuit: Circuit, fault: StuckAtFault,
            vector: Dict[str, bool],
            state: Optional[Dict[str, bool]] = None) -> bool:
    """True when *vector* produces different primary outputs on the
    good and faulty circuit (fault detected)."""
    good = simulate(circuit, vector, state)
    bad = simulate(circuit, vector, state, faults={fault.node: fault.value})
    return any(good[out] != bad[out] for out in circuit.outputs)


def fault_simulate(circuit: Circuit, faults: Iterable[StuckAtFault],
                   vectors: Sequence[Dict[str, bool]]
                   ) -> Dict[StuckAtFault, Optional[int]]:
    """Serial fault simulation: for each fault, the index of the first
    detecting vector (``None`` when undetected).

    Applications use this for *fault dropping*: faults detected by an
    already-generated vector need no dedicated SAT call (Section 3's
    iterated-SAT usage pattern).
    """
    result: Dict[StuckAtFault, Optional[int]] = {f: None for f in faults}
    goods = [simulate(circuit, vector) for vector in vectors]
    for fault in result:
        for index, vector in enumerate(vectors):
            bad = simulate(circuit, vector,
                           faults={fault.node: fault.value})
            good = goods[index]
            if any(good[out] != bad[out] for out in circuit.outputs):
                result[fault] = index
                break
    return result


def collapse_equivalent(circuit: Circuit,
                        faults: Iterable[StuckAtFault]
                        ) -> List[StuckAtFault]:
    """Cheap structural fault collapsing.

    For a gate with a controlling value c and inversion parity i, the
    output stuck-at (c XOR i) fault is equivalent to any input stuck-at
    c fault; we keep the output representative.  This shrinks the fault
    list the ATPG engine iterates over without changing coverage.
    """
    from repro.circuits.gates import controlling_value, inversion_parity

    dropped = set()
    for node in circuit:
        if not node.is_gate or not node.fanins:
            continue
        control = controlling_value(node.gate_type)
        parity = inversion_parity(node.gate_type)
        if control is None or parity is None:
            continue
        # input stuck-at control ~ output stuck-at (control ^ parity)
        for fanin in node.fanins:
            if len(circuit.fanout(fanin)) == 1:
                dropped.add(StuckAtFault(fanin, control))
    return [f for f in faults if f not in dropped]
