"""Circuit-to-CNF encoding (paper Section 2, Table 1).

"The CNF formula of a combinational circuit is the conjunction of the
CNF formulas for each gate output" -- this module implements exactly
that construction, plus the objective/property constraints of Figure 1
("With property z = 0").

The encoding is the satisfiability-equivalent (Tseitin-style) one: each
circuit node gets a CNF variable, each gate contributes its Table 1
clauses, and any property is a set of unit (or richer) constraints over
node variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.circuits.gates import GateType, gate_cnf_clauses
from repro.circuits.netlist import Circuit


@dataclass
class CircuitEncoding:
    """The result of encoding a circuit: formula plus variable maps.

    ``var_of`` maps node name to CNF variable; ``node_of`` is the
    inverse.  Both survive formula growth (callers may add property
    clauses to ``formula`` afterwards).
    """

    circuit: Circuit
    formula: CNFFormula
    var_of: Dict[str, int] = field(default_factory=dict)
    node_of: Dict[int, str] = field(default_factory=dict)

    def literal(self, name: str, value: bool = True) -> int:
        """The literal asserting node *name* carries *value*."""
        var = self.var_of[name]
        return var if value else -var

    def assignment_for(self, node_values: Dict[str, bool]) -> Assignment:
        """Translate a node-value map into a CNF :class:`Assignment`."""
        out = Assignment()
        for name, value in node_values.items():
            out.assign(self.var_of[name], value)
        return out

    def input_vector(self, assignment: Assignment,
                     default: Optional[bool] = None
                     ) -> Dict[str, Optional[bool]]:
        """Extract primary-input values from a CNF assignment.

        Unassigned inputs map to *default* (``None`` keeps them as
        don't-cares, which is what the overspecification experiment C5
        measures).
        """
        vector: Dict[str, Optional[bool]] = {}
        for name in self.circuit.inputs:
            value = assignment.value_of(self.var_of[name])
            vector[name] = default if value is None else value
        return vector

    def node_values(self, assignment: Assignment) -> Dict[str, Optional[bool]]:
        """Full node-value map implied by a CNF assignment."""
        return {name: assignment.value_of(var)
                for name, var in self.var_of.items()}


def encode_circuit(circuit: Circuit,
                   formula: Optional[CNFFormula] = None,
                   var_prefix: str = "",
                   state_as_inputs: bool = True) -> CircuitEncoding:
    """Encode the combinational part of *circuit* into CNF.

    Every node receives a fresh variable in *formula* (a new formula is
    created when none is given -- passing one supports composing several
    circuits, e.g. miters, into a single variable space).  DFF outputs
    are treated as free pseudo-inputs when *state_as_inputs* is true
    (the single-frame view used by combinational applications); BMC
    instead unrolls time frames itself.
    """
    formula = formula if formula is not None else CNFFormula()
    encoding = CircuitEncoding(circuit, formula)

    for name in circuit.topological_order():
        var = formula.new_var(var_prefix + name)
        encoding.var_of[name] = var
        encoding.node_of[var] = name

    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type is GateType.INPUT:
            continue
        if node.gate_type is GateType.DFF:
            if not state_as_inputs:
                raise ValueError(
                    "sequential circuit: unroll with repro.apps.bmc or "
                    "pass state_as_inputs=True for the single-frame view")
            continue
        output_lit = encoding.var_of[name]
        input_lits = [encoding.var_of[f] for f in node.fanins]
        for clause in gate_cnf_clauses(node.gate_type, output_lit,
                                       input_lits):
            formula.add_clause(clause)
    return encoding


def add_objective(encoding: CircuitEncoding,
                  objectives: Dict[str, bool]) -> None:
    """Constrain node values with unit clauses (Figure 1's property).

    ``add_objective(enc, {"z": False})`` reproduces the paper's
    "with property z = 0" construction.
    """
    for name, value in objectives.items():
        encoding.formula.add_clause([encoding.literal(name, value)])


def encode_with_objective(circuit: Circuit,
                          objectives: Dict[str, bool]) -> CircuitEncoding:
    """Convenience: encode the circuit and constrain *objectives*."""
    encoding = encode_circuit(circuit)
    add_objective(encoding, objectives)
    return encoding


def build_miter(circuit_a: Circuit, circuit_b: Circuit,
                name: str = "miter") -> Tuple[Circuit, List[str]]:
    """Compose two circuits into a miter (Section 3, equivalence
    checking).

    Both circuits must have identical primary-input and primary-output
    name lists.  The miter shares the inputs, XORs each output pair and
    ORs the XORs into a single output ``miter_out``; the circuits differ
    on some vector iff ``miter_out`` can be set to 1.

    Returns the miter circuit and the list of per-output XOR node names
    (useful for output-by-output equivalence queries).
    """
    if list(circuit_a.inputs) != list(circuit_b.inputs):
        raise ValueError("miter requires identical input name lists")
    if len(circuit_a.outputs) != len(circuit_b.outputs):
        raise ValueError("miter requires equally many outputs")
    if circuit_a.is_sequential() or circuit_b.is_sequential():
        raise ValueError("miter construction is combinational only")

    renamed_a = circuit_a.renamed("a_")
    renamed_b = circuit_b.renamed("b_")
    miter = Circuit(name)
    for input_name in circuit_a.inputs:
        miter.add_input(input_name)

    def splice(renamed: Circuit, prefix: str) -> None:
        for node in renamed:
            if node.gate_type is GateType.INPUT:
                # Shared inputs: replace the renamed PI with a buffer of
                # the common input so downstream names stay consistent.
                original = node.name[len(prefix):]
                miter.add_gate(node.name, GateType.BUFFER, [original])
            else:
                miter.add_gate(node.name, node.gate_type, node.fanins)

    splice(renamed_a, "a_")
    splice(renamed_b, "b_")

    xor_names = []
    for out_a, out_b in zip(renamed_a.outputs, renamed_b.outputs):
        xor_name = f"diff_{out_a[2:]}"
        miter.add_gate(xor_name, GateType.XOR, [out_a, out_b])
        xor_names.append(xor_name)
    if len(xor_names) == 1:
        miter.add_gate("miter_out", GateType.BUFFER, xor_names)
    else:
        miter.add_gate("miter_out", GateType.OR, xor_names)
    miter.set_output("miter_out")
    return miter, xor_names


def encode_miter(circuit_a: Circuit,
                 circuit_b: Circuit) -> CircuitEncoding:
    """Encode the miter of two circuits with its output forced to 1.

    The resulting formula is satisfiable iff the circuits are NOT
    equivalent; a model gives a distinguishing input vector.
    """
    miter, _ = build_miter(circuit_a, circuit_b)
    return encode_with_objective(miter, {"miter_out": True})


def cone_encoding(circuit: Circuit, outputs: Iterable[str]
                  ) -> CircuitEncoding:
    """Encode only the cone of influence of *outputs*.

    EDA flows solve many instances per circuit (Section 5 drawback 2);
    restricting each instance to the relevant cone keeps formulas small.
    """
    cone = circuit.transitive_fanin(outputs)
    sub = Circuit(f"{circuit.name}_cone")
    for name in circuit.topological_order():
        if name not in cone:
            continue
        node = circuit.node(name)
        if node.gate_type is GateType.INPUT:
            sub.add_input(name)
        elif node.gate_type is GateType.DFF:
            sub.add_dff(name, node.fanins[0] if node.fanins else None)
        else:
            sub.add_gate(name, node.gate_type, node.fanins)
    for name in outputs:
        sub.set_output(name)
    return encode_circuit(sub)
