"""Structural hashing (strash) for netlists.

Merges gates computing syntactically identical functions -- same type,
same (order-normalized) fanins -- into one representative.  Miters are
the prime consumer (paper Section 3): structurally similar circuit
pairs share most of their logic, and hashing the shared cone away
before invoking SAT shrinks the instance, often collapsing identical
regions to a constant.  This is the structural component of the hybrid
equivalence checkers the paper cites [16, 26].

Constant propagation hooks in through the existing sweep pass; DFFs
are never merged (conservative for sequential semantics).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit

#: gate types whose fanin order is irrelevant.
_COMMUTATIVE = frozenset({
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
    GateType.XOR, GateType.XNOR,
})


def structural_hash(circuit: Circuit) -> Circuit:
    """A functionally equivalent copy with duplicate gates merged.

    Primary outputs keep their names (a buffer is inserted when the
    named node merged into a representative); inputs and DFFs are
    preserved verbatim.
    """
    circuit.validate()
    representative: Dict[str, str] = {}
    by_key: Dict[Tuple, str] = {}
    hashed = Circuit(circuit.name + "_strash")

    def resolve(name: str) -> str:
        while name in representative:
            name = representative[name]
        return name

    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type is GateType.INPUT:
            hashed.add_input(name)
            continue
        if node.gate_type is GateType.DFF:
            fanin = resolve(node.fanins[0]) if node.fanins else None
            hashed.add_dff(name, fanin)
            continue
        fanins = tuple(resolve(f) for f in node.fanins)
        if node.gate_type in _COMMUTATIVE:
            key_fanins: Tuple = tuple(sorted(fanins))
        else:
            key_fanins = fanins
        # A buffer is a wire: merge it with its driver outright unless
        # its name must survive as an output.
        if node.gate_type is GateType.BUFFER and \
                name not in circuit.outputs:
            representative[name] = fanins[0]
            continue
        key = (node.gate_type, key_fanins)
        existing = by_key.get(key)
        if existing is not None:
            if name in circuit.outputs:
                hashed.add_gate(name, GateType.BUFFER, [existing])
            else:
                representative[name] = existing
            continue
        by_key[key] = name
        if node.gate_type in (GateType.CONST0, GateType.CONST1):
            hashed.add_const(name,
                             node.gate_type is GateType.CONST1)
        else:
            hashed.add_gate(name, node.gate_type, list(fanins))
    for output in circuit.outputs:
        hashed.set_output(resolve(output))
    return hashed


def merged_gate_count(circuit: Circuit) -> int:
    """How many gates structural hashing removes from *circuit*."""
    return circuit.num_gates() - structural_hash(circuit).num_gates()
