"""ISCAS-85/89 ``.bench`` netlist reader and writer.

The ISCAS benchmark suites the paper's experiments historically used are
distributed in the ``.bench`` format::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)
    G7 = DFF(G10)        # ISCAS-89 sequential extension

Gate lines may appear in any order (forward references are legal);
this parser resolves them by topologically re-ordering definitions.
"""

from __future__ import annotations

import io
import re
from typing import Dict, List, Set, TextIO, Tuple, Union

from repro.circuits.gates import GateType, gate_type_from_name
from repro.circuits.netlist import Circuit, CircuitError


class BenchFormatError(ValueError):
    """Raised on malformed ``.bench`` input."""


_DEF_RE = re.compile(
    r"^\s*([^\s=]+)\s*=\s*([A-Za-z01]+)\s*\(\s*([^)]*)\s*\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$",
                    re.IGNORECASE)


def parse_bench(source: Union[str, TextIO], name: str = "bench") -> Circuit:
    """Parse ``.bench`` text (a string or readable file object)."""
    if isinstance(source, str):
        source = io.StringIO(source)

    inputs: List[str] = []
    outputs: List[str] = []
    definitions: Dict[str, Tuple[str, List[str]]] = {}
    order: List[str] = []

    for line_no, raw in enumerate(source, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, signal = io_match.group(1).upper(), io_match.group(2)
            (inputs if kind == "INPUT" else outputs).append(signal)
            continue
        def_match = _DEF_RE.match(line)
        if def_match:
            target, gate_name, args = def_match.groups()
            fanins = [token.strip() for token in args.split(",")
                      if token.strip()]
            if target in definitions:
                raise BenchFormatError(
                    f"line {line_no}: node {target!r} redefined")
            definitions[target] = (gate_name, fanins)
            order.append(target)
            continue
        raise BenchFormatError(f"line {line_no}: cannot parse {line!r}")

    circuit = Circuit(name)
    for signal in inputs:
        circuit.add_input(signal)

    # Pass 1: declare DFF outputs first (they are sources; their data
    # inputs may be defined later in the file).
    dff_pending: List[Tuple[str, str]] = []
    for target in order:
        gate_name, fanins = definitions[target]
        if gate_name.strip().upper() == "DFF":
            if len(fanins) != 1:
                raise BenchFormatError(
                    f"DFF {target!r} must have exactly one input")
            circuit.add_dff(target)
            dff_pending.append((target, fanins[0]))

    # Pass 2: add combinational gates in dependency order.
    defined: Set[str] = set(circuit.inputs) | {d for d, _ in dff_pending}
    remaining = [t for t in order
                 if definitions[t][0].strip().upper() != "DFF"]
    while remaining:
        progressed = []
        for target in remaining:
            gate_name, fanins = definitions[target]
            if all(f in defined for f in fanins):
                gate_type = _parse_gate(gate_name, target)
                if gate_type in (GateType.CONST0, GateType.CONST1):
                    circuit.add_const(target, gate_type is GateType.CONST1)
                else:
                    circuit.add_gate(target, gate_type, fanins)
                defined.add(target)
                progressed.append(target)
        if not progressed:
            missing = sorted(
                set(f for t in remaining for f in definitions[t][1])
                - defined)
            raise BenchFormatError(
                "unresolvable definitions (cycle or undefined signals: "
                f"{', '.join(missing[:5])})")
        remaining = [t for t in remaining if t not in progressed]

    for target, data_input in dff_pending:
        if data_input not in defined:
            raise BenchFormatError(
                f"DFF {target!r} input {data_input!r} is undefined")
        circuit.connect_dff(target, data_input)

    for signal in outputs:
        if signal not in circuit:
            raise BenchFormatError(f"OUTPUT({signal}) is undefined")
        circuit.set_output(signal)
    try:
        circuit.validate()
    except CircuitError as exc:
        raise BenchFormatError(str(exc)) from exc
    return circuit


def _parse_gate(gate_name: str, target: str) -> GateType:
    key = gate_name.strip().upper()
    if key in ("0", "GND", "CONST0"):
        return GateType.CONST0
    if key in ("1", "VDD", "CONST1"):
        return GateType.CONST1
    try:
        return gate_type_from_name(key)
    except ValueError:
        raise BenchFormatError(
            f"node {target!r}: unknown gate type {gate_name!r}") from None


def load_bench(path: str) -> Circuit:
    """Parse the ``.bench`` file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        stem = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        return parse_bench(handle, name=stem)


def write_bench(circuit: Circuit,
                sink: Union[TextIO, None] = None) -> str:
    """Serialize *circuit* to ``.bench`` text; returns the text."""
    lines = [f"# {circuit.name}"]
    for name in circuit.inputs:
        lines.append(f"INPUT({name})")
    for name in circuit.outputs:
        lines.append(f"OUTPUT({name})")
    for node in circuit:
        if node.gate_type is GateType.INPUT:
            continue
        if node.gate_type is GateType.DFF:
            data = node.fanins[0] if node.fanins else ""
            lines.append(f"{node.name} = DFF({data})")
        elif node.gate_type is GateType.CONST0:
            lines.append(f"{node.name} = CONST0()")
        elif node.gate_type is GateType.CONST1:
            lines.append(f"{node.name} = CONST1()")
        else:
            args = ", ".join(node.fanins)
            lines.append(f"{node.name} = {node.gate_type.value}({args})")
    text = "\n".join(lines) + "\n"
    if sink is not None:
        sink.write(text)
    return text


def save_bench(circuit: Circuit, path: str) -> None:
    """Write *circuit* to the ``.bench`` file at *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        write_bench(circuit, handle)
