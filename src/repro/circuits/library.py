"""The paper's example circuits and small classics.

Figures 1 and 3 of the paper are partially garbled in the archival
scan, so the circuits here are *reconstructions* chosen to reproduce
every concrete artifact the text states:

* Figure 1: a small circuit whose CNF formula is built gate-by-gate
  from Table 1 and then extended "with property z = 0".
* Figure 3: a circuit where the assignments ``w = 1``, ``y3 = 0`` and
  the decision ``x1 = 1`` force ``y1 = y2 = 0``, which is inconsistent
  with ``y3``; conflict analysis must derive the recorded clause
  ``(x1' + w' + y3)``.

c17 is the smallest ISCAS-85 benchmark (six NAND gates), reproduced
from its public netlist.
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit


def figure1_circuit() -> Circuit:
    """Reconstruction of the paper's Figure 1 example circuit.

    Inputs ``a``, ``b``, ``c``; gates::

        w1 = AND(a, b)
        x  = NOT(w1)
        w2 = OR(x, c)
        z  = AND(w1, w2)

    The associated CNF formula is the conjunction of the Table 1
    formulas of the four gates; the property of interest is ``z = 0``
    (satisfiable -- e.g. a = 0 forces w1 = 0 hence z = 0).
    """
    circuit = Circuit("figure1")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_input("c")
    circuit.add_gate("w1", GateType.AND, ["a", "b"])
    circuit.add_gate("x", GateType.NOT, ["w1"])
    circuit.add_gate("w2", GateType.OR, ["x", "c"])
    circuit.add_gate("z", GateType.AND, ["w1", "w2"])
    circuit.set_output("z")
    return circuit


def figure3_circuit() -> Circuit:
    """Reconstruction of the paper's Figure 3 conflict example.

    Inputs ``x1``, ``w``; gates::

        y1 = NOT(x1)
        y2 = NOT(w)
        y3 = NOR(y1, y2)        # y3 == AND(x1, w)

    With ``w = 1`` and ``y3 = 0``, deciding ``x1 = 1`` implies
    ``y1 = 0`` and ``y2 = 0``, which is inconsistent with ``y3 = 0``
    (a NOR of two zeros is 1).  The conflict holds as long as the three
    assignments hold, so the clause ``(x1' + w' + y3)`` is an implicate
    of the circuit's CNF -- exactly the clause the paper derives.
    """
    circuit = Circuit("figure3")
    circuit.add_input("x1")
    circuit.add_input("w")
    circuit.add_gate("y1", GateType.NOT, ["x1"])
    circuit.add_gate("y2", GateType.NOT, ["w"])
    circuit.add_gate("y3", GateType.NOR, ["y1", "y2"])
    circuit.set_output("y3")
    return circuit


def c17() -> Circuit:
    """ISCAS-85 c17: 5 inputs, 6 NAND gates, 2 outputs."""
    circuit = Circuit("c17")
    for name in ("G1", "G2", "G3", "G6", "G7"):
        circuit.add_input(name)
    circuit.add_gate("G10", GateType.NAND, ["G1", "G3"])
    circuit.add_gate("G11", GateType.NAND, ["G3", "G6"])
    circuit.add_gate("G16", GateType.NAND, ["G2", "G11"])
    circuit.add_gate("G19", GateType.NAND, ["G11", "G7"])
    circuit.add_gate("G22", GateType.NAND, ["G10", "G16"])
    circuit.add_gate("G23", GateType.NAND, ["G16", "G19"])
    circuit.set_output("G22")
    circuit.set_output("G23")
    return circuit


def half_adder() -> Circuit:
    """A half adder: sum = a XOR b, carry = a AND b."""
    circuit = Circuit("half_adder")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("sum", GateType.XOR, ["a", "b"])
    circuit.add_gate("carry", GateType.AND, ["a", "b"])
    circuit.set_output("sum")
    circuit.set_output("carry")
    return circuit


def majority3() -> Circuit:
    """Three-input majority vote (carry function of a full adder)."""
    circuit = Circuit("majority3")
    for name in ("a", "b", "c"):
        circuit.add_input(name)
    circuit.add_gate("ab", GateType.AND, ["a", "b"])
    circuit.add_gate("ac", GateType.AND, ["a", "c"])
    circuit.add_gate("bc", GateType.AND, ["b", "c"])
    circuit.add_gate("maj", GateType.OR, ["ab", "ac", "bc"])
    circuit.set_output("maj")
    return circuit


def redundant_or_chain() -> Circuit:
    """A circuit with an intentionally redundant gate.

    ``y = OR(a, ab)`` where ``ab = AND(a, b)``: by absorption
    ``y == a``, so the fault "ab stuck-at-0" is undetectable
    (redundant).  Redundancy identification (Section 3) must prove it.
    """
    circuit = Circuit("redundant_or")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("ab", GateType.AND, ["a", "b"])
    circuit.add_gate("y", GateType.OR, ["a", "ab"])
    circuit.set_output("y")
    return circuit


def two_level_example() -> Circuit:
    """f = ab + a'c -- the textbook two-level function used by the
    prime-implicant / covering experiments (Section 3)."""
    circuit = Circuit("two_level")
    for name in ("a", "b", "c"):
        circuit.add_input(name)
    circuit.add_gate("na", GateType.NOT, ["a"])
    circuit.add_gate("ab", GateType.AND, ["a", "b"])
    circuit.add_gate("nac", GateType.AND, ["na", "c"])
    circuit.add_gate("f", GateType.OR, ["ab", "nac"])
    circuit.set_output("f")
    return circuit
