"""Gate types, truth-table semantics and per-gate CNF (paper Table 1).

The CNF formula of a gate "denotes the valid input-output assignments to
the gate" (Section 2).  :func:`gate_cnf_clauses` reproduces Table 1 for
simple gates of arbitrary fan-in; XOR/XNOR use the full 2^k expansion
(fan-ins are small in practice -- encoders decompose wide XORs first).

This module also centralizes the structural gate facts used throughout
the library: controlling values (ATPG, backtracing) and the
justification thresholds of Table 2.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional, Sequence, Tuple


class GateType(enum.Enum):
    """The simple gate types of Table 1, plus netlist bookkeeping types.

    ``INPUT`` marks primary inputs, ``DFF`` marks D flip-flop outputs
    (state variables for sequential circuits); neither carries
    combinational CNF.  ``CONST0``/``CONST1`` are constant drivers used
    by redundancy removal (Section 3).
    """

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUFFER = "BUFFER"
    INPUT = "INPUT"
    DFF = "DFF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"


#: Gate types whose output is a Boolean function of their fanins.
COMBINATIONAL_TYPES = frozenset({
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
    GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUFFER,
    GateType.CONST0, GateType.CONST1,
})

#: Gate types with exactly one fanin.
UNARY_TYPES = frozenset({GateType.NOT, GateType.BUFFER, GateType.DFF})

#: Gate types taking two or more fanins.
MULTI_INPUT_TYPES = frozenset({
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
    GateType.XOR, GateType.XNOR,
})


class GateArityError(ValueError):
    """Raised when a gate is built with an invalid number of fanins."""


def check_arity(gate_type: GateType, num_inputs: int) -> None:
    """Validate the fanin count for *gate_type* (raises on mismatch).

    A DFF may temporarily have no fanin: netlist formats reference flip-
    flop data inputs before defining them, so the connection is deferred
    (``Circuit.validate`` enforces it eventually).
    """
    if gate_type is GateType.DFF:
        if num_inputs > 1:
            raise GateArityError(f"DFF takes at most 1 input, "
                                 f"got {num_inputs}")
        return
    if gate_type in UNARY_TYPES and num_inputs != 1:
        raise GateArityError(f"{gate_type.value} takes exactly 1 input, "
                             f"got {num_inputs}")
    if gate_type in MULTI_INPUT_TYPES and num_inputs < 1:
        raise GateArityError(f"{gate_type.value} needs at least 1 input")
    if gate_type in (GateType.INPUT, GateType.CONST0, GateType.CONST1) \
            and num_inputs != 0:
        raise GateArityError(f"{gate_type.value} takes no inputs, "
                             f"got {num_inputs}")


def evaluate_gate(gate_type: GateType, inputs: Sequence[bool]) -> bool:
    """Two-valued gate evaluation.

    >>> evaluate_gate(GateType.NAND, [True, True])
    False
    """
    check_arity(gate_type, len(inputs))
    if gate_type is GateType.AND:
        return all(inputs)
    if gate_type is GateType.NAND:
        return not all(inputs)
    if gate_type is GateType.OR:
        return any(inputs)
    if gate_type is GateType.NOR:
        return not any(inputs)
    if gate_type is GateType.XOR:
        return sum(map(bool, inputs)) % 2 == 1
    if gate_type is GateType.XNOR:
        return sum(map(bool, inputs)) % 2 == 0
    if gate_type is GateType.NOT:
        return not inputs[0]
    if gate_type is GateType.BUFFER:
        return bool(inputs[0])
    if gate_type is GateType.CONST0:
        return False
    if gate_type is GateType.CONST1:
        return True
    raise ValueError(f"{gate_type.value} has no combinational semantics")


def evaluate_gate3(gate_type: GateType,
                   inputs: Sequence[Optional[bool]]) -> Optional[bool]:
    """Three-valued (0/1/X) gate evaluation; ``None`` encodes X.

    A controlling value on any input determines the output even when
    other inputs are X -- exactly the justification logic of Section 5.
    """
    check_arity(gate_type, len(inputs))
    if gate_type in (GateType.CONST0, GateType.CONST1):
        return gate_type is GateType.CONST1
    if gate_type is GateType.NOT:
        return None if inputs[0] is None else not inputs[0]
    if gate_type is GateType.BUFFER:
        return inputs[0]
    if gate_type in (GateType.AND, GateType.NAND):
        if any(value is False for value in inputs):
            base: Optional[bool] = False
        elif all(value is True for value in inputs):
            base = True
        else:
            base = None
        if base is None:
            return None
        return (not base) if gate_type is GateType.NAND else base
    if gate_type in (GateType.OR, GateType.NOR):
        if any(value is True for value in inputs):
            base = True
        elif all(value is False for value in inputs):
            base = False
        else:
            base = None
        if base is None:
            return None
        return (not base) if gate_type is GateType.NOR else base
    if gate_type in (GateType.XOR, GateType.XNOR):
        if any(value is None for value in inputs):
            return None
        ones = sum(1 for value in inputs if value)
        base = ones % 2 == 1
        return (not base) if gate_type is GateType.XNOR else base
    raise ValueError(f"{gate_type.value} has no combinational semantics")


def controlling_value(gate_type: GateType) -> Optional[bool]:
    """The input value that alone determines the gate output, if any.

    AND/NAND are controlled by 0, OR/NOR by 1; XOR/XNOR and unary gates
    have no controlling value.  Used by backtracing (Section 5) and by
    ATPG path sensitization (Section 3).
    """
    if gate_type in (GateType.AND, GateType.NAND):
        return False
    if gate_type in (GateType.OR, GateType.NOR):
        return True
    return None


def inversion_parity(gate_type: GateType) -> Optional[bool]:
    """True when the gate inverts (NAND/NOR/NOT/XNOR), False when it
    does not (AND/OR/BUFFER/XOR); ``None`` for non-logic types."""
    if gate_type in (GateType.NAND, GateType.NOR, GateType.NOT,
                     GateType.XNOR):
        return True
    if gate_type in (GateType.AND, GateType.OR, GateType.BUFFER,
                     GateType.XOR):
        return False
    return None


def justification_thresholds(gate_type: GateType,
                             fanin_count: int) -> Tuple[int, int]:
    """Table 2: thresholds ``(u0, u1)`` on suitably assigned inputs
    needed to justify output values 0 and 1.

    For an AND gate one 0-input justifies output 0 (``u0 = 1``) while
    output 1 needs all inputs at 1 (``u1 = |FI|``); XOR/XNOR always need
    every input assigned.  The paper notes ``u0, u1 in {1, |FI(x)|}``
    for all simple gates.
    """
    check_arity(gate_type, fanin_count)
    n = fanin_count
    if gate_type is GateType.AND:
        return 1, n
    if gate_type is GateType.NAND:
        return n, 1
    if gate_type is GateType.OR:
        return n, 1
    if gate_type is GateType.NOR:
        return 1, n
    if gate_type in (GateType.XOR, GateType.XNOR):
        return n, n
    if gate_type in (GateType.NOT, GateType.BUFFER):
        return 1, 1
    raise ValueError(f"{gate_type.value} has no justification thresholds")


def counter_updates(gate_type: GateType,
                    input_value: bool) -> Tuple[bool, bool]:
    """Table 3: which justification counters an input assignment bumps.

    Returns ``(bump_t0, bump_t1)`` -- whether assigning *input_value* to
    a fanin increments the gate's ``t0`` and/or ``t1`` counter.  For an
    AND gate a 0 input counts toward justifying output 0 and a 1 input
    toward output 1; inverting gates swap the targets; XOR/XNOR inputs
    count toward both outputs (any value restricts the parity).
    """
    if gate_type is GateType.AND:
        return (not input_value, input_value)
    if gate_type is GateType.NAND:
        return (input_value, not input_value)
    if gate_type is GateType.OR:
        return (not input_value, input_value)
    if gate_type is GateType.NOR:
        return (input_value, not input_value)
    if gate_type in (GateType.XOR, GateType.XNOR):
        return (True, True)
    if gate_type is GateType.BUFFER:
        return (not input_value, input_value)
    if gate_type is GateType.NOT:
        return (input_value, not input_value)
    raise ValueError(f"{gate_type.value} has no justification counters")


def gate_cnf_clauses(gate_type: GateType, output: int,
                     inputs: Sequence[int]) -> List[List[int]]:
    """Table 1: the CNF clauses relating *output* to *inputs*.

    Arguments are DIMACS literals (normally positive variable indices;
    callers may pass negated literals to fold an inversion into the
    encoding).  The conjunction of the returned clauses is satisfied by
    exactly the valid input-output assignments of the gate.

    >>> gate_cnf_clauses(GateType.AND, 3, [1, 2])
    [[1, -3], [2, -3], [-1, -2, 3]]
    """
    check_arity(gate_type, len(inputs))
    x = output
    w = list(inputs)

    if gate_type is GateType.AND:
        # x -> w_i  and  (all w_i) -> x
        return [[wi, -x] for wi in w] + [[-wi for wi in w] + [x]]
    if gate_type is GateType.NAND:
        # x' -> w_i  and  (all w_i) -> x'
        return [[wi, x] for wi in w] + [[-wi for wi in w] + [-x]]
    if gate_type is GateType.OR:
        # w_i -> x  and  x -> (some w_i)
        return [[-wi, x] for wi in w] + [list(w) + [-x]]
    if gate_type is GateType.NOR:
        # w_i -> x'  and  x' -> (some w_i)
        return [[-wi, -x] for wi in w] + [list(w) + [x]]
    if gate_type is GateType.NOT:
        return [[x, w[0]], [-x, -w[0]]]
    if gate_type is GateType.BUFFER:
        return [[x, -w[0]], [-x, w[0]]]
    if gate_type in (GateType.XOR, GateType.XNOR):
        want_odd = gate_type is GateType.XOR
        clauses = []
        # For every input combination, the output is forced; emit the
        # clause falsified exactly by that combination paired with the
        # wrong output value (2^k clauses, k = fanin count).
        for signs in itertools.product([False, True], repeat=len(w)):
            ones = sum(signs)
            value = (ones % 2 == 1) if want_odd else (ones % 2 == 0)
            clause = [-wi if sign else wi for wi, sign in zip(w, signs)]
            clause.append(x if value else -x)
            clauses.append(clause)
        return clauses
    if gate_type is GateType.CONST0:
        return [[-x]]
    if gate_type is GateType.CONST1:
        return [[x]]
    raise ValueError(f"{gate_type.value} has no CNF encoding")


def gate_type_from_name(name: str) -> GateType:
    """Parse a gate-type name as found in ``.bench`` files.

    Accepts the common aliases (``BUF``, ``BUFF``, ``INV``).
    """
    key = name.strip().upper()
    aliases = {"BUF": "BUFFER", "BUFF": "BUFFER", "INV": "NOT"}
    key = aliases.get(key, key)
    try:
        return GateType(key)
    except ValueError:
        raise ValueError(f"unknown gate type {name!r}") from None
