"""Parameterized circuit families.

The paper's contemporaries benchmarked on the ISCAS-85/89 netlists.
Those files are not redistributable here, so these generators produce
netlists of the same structural character -- arithmetic (adders,
multipliers, ALUs), tree logic (parity, comparators, muxes), random
DAGs, and small sequential machines for BMC.  Every generator is
deterministic given its arguments (random circuits take a seed).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit


def _rng(seed: Union[int, random.Random, None]) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def full_adder(circuit: Circuit, a: str, b: str, cin: str,
               prefix: str) -> Tuple[str, str]:
    """Splice a full adder into *circuit*; returns ``(sum, carry)``."""
    axb = circuit.add_gate(f"{prefix}_axb", GateType.XOR, [a, b])
    total = circuit.add_gate(f"{prefix}_sum", GateType.XOR, [axb, cin])
    anb = circuit.add_gate(f"{prefix}_anb", GateType.AND, [a, b])
    cab = circuit.add_gate(f"{prefix}_cab", GateType.AND, [axb, cin])
    carry = circuit.add_gate(f"{prefix}_cout", GateType.OR, [anb, cab])
    return total, carry


def ripple_carry_adder(width: int, name: Optional[str] = None) -> Circuit:
    """An n-bit ripple-carry adder: inputs ``a0..``, ``b0..``, ``cin``;
    outputs ``s0..`` and ``cout``.

    The carry chain creates the long sensitizable paths that delay
    computation (Section 3) and delay-fault ATPG care about.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    circuit = Circuit(name or f"rca{width}")
    a = [circuit.add_input(f"a{i}") for i in range(width)]
    b = [circuit.add_input(f"b{i}") for i in range(width)]
    carry = circuit.add_input("cin")
    for i in range(width):
        total, carry = full_adder(circuit, a[i], b[i], carry, f"fa{i}")
        circuit.add_gate(f"s{i}", GateType.BUFFER, [total])
        circuit.set_output(f"s{i}")
    circuit.add_gate("cout", GateType.BUFFER, [carry])
    circuit.set_output("cout")
    return circuit


def carry_select_adder(width: int, block: int = 2,
                       name: Optional[str] = None) -> Circuit:
    """An n-bit carry-select adder (functionally equal to the RCA).

    Pairs of structurally different but functionally equivalent adders
    are the canonical equivalence-checking workload (Section 3).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if block < 1:
        raise ValueError("block must be >= 1")
    circuit = Circuit(name or f"csa{width}")
    a = [circuit.add_input(f"a{i}") for i in range(width)]
    b = [circuit.add_input(f"b{i}") for i in range(width)]
    carry = circuit.add_input("cin")

    position = 0
    block_id = 0
    while position < width:
        size = min(block, width - position)
        zero = circuit.add_const(f"blk{block_id}_c0", False)
        one = circuit.add_const(f"blk{block_id}_c1", True)
        sums0, sums1 = [], []
        c0, c1 = zero, one
        for i in range(position, position + size):
            s0, c0 = full_adder(circuit, a[i], b[i], c0,
                                f"blk{block_id}_z{i}")
            s1, c1 = full_adder(circuit, a[i], b[i], c1,
                                f"blk{block_id}_o{i}")
            sums0.append(s0)
            sums1.append(s1)
        # Select between the speculative sums with the incoming carry.
        for offset, i in enumerate(range(position, position + size)):
            sel1 = circuit.add_gate(f"sel1_{i}", GateType.AND,
                                    [carry, sums1[offset]])
            ncar = circuit.add_gate(f"ncar_{i}", GateType.NOT, [carry])
            sel0 = circuit.add_gate(f"sel0_{i}", GateType.AND,
                                    [ncar, sums0[offset]])
            circuit.add_gate(f"s{i}", GateType.OR, [sel0, sel1])
            circuit.set_output(f"s{i}")
        car1 = circuit.add_gate(f"car1_{block_id}", GateType.AND,
                                [carry, c1])
        ncar_b = circuit.add_gate(f"ncar_b{block_id}", GateType.NOT,
                                  [carry])
        car0 = circuit.add_gate(f"car0_{block_id}", GateType.AND,
                                [ncar_b, c0])
        carry = circuit.add_gate(f"carry_{block_id}", GateType.OR,
                                 [car0, car1])
        position += size
        block_id += 1
    circuit.add_gate("cout", GateType.BUFFER, [carry])
    circuit.set_output("cout")
    return circuit


def array_multiplier(width: int, name: Optional[str] = None) -> Circuit:
    """An n-by-n array multiplier: inputs ``a0..``, ``b0..``; outputs
    ``p0..p(2n-1)``.

    Multipliers are the classic hard instances for both SAT-based
    equivalence checking and ATPG.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    circuit = Circuit(name or f"mul{width}")
    a = [circuit.add_input(f"a{i}") for i in range(width)]
    b = [circuit.add_input(f"b{i}") for i in range(width)]

    partial = [[circuit.add_gate(f"pp{i}_{j}", GateType.AND, [a[i], b[j]])
                for j in range(width)] for i in range(width)]

    # School-book accumulation: acc[w] holds the signal of weight w.
    # Adding row i (shifted left by i) ripples a carry from weight i up;
    # before processing row i the accumulator spans weights 0..width+i-2,
    # so the last sum bit and the final carry each extend it by one.
    zero = circuit.add_const("mzero", False)
    acc: List[str] = list(partial[0])
    for i in range(1, width):
        carry = zero
        for j in range(width):
            weight = i + j
            lhs = acc[weight] if weight < len(acc) else zero
            total, carry = full_adder(circuit, partial[i][j], lhs, carry,
                                      f"m{i}_{j}")
            if weight < len(acc):
                acc[weight] = total
            else:
                acc.append(total)
        acc.append(carry)

    for bit, signal in enumerate(acc[: 2 * width]):
        circuit.add_gate(f"p{bit}", GateType.BUFFER, [signal])
        circuit.set_output(f"p{bit}")
    while len(acc) < 2 * width:  # width == 1: p1 is the (absent) carry
        circuit.add_const(f"p{len(acc)}", False)
        circuit.set_output(f"p{len(acc)}")
        acc.append(f"p{len(acc)}")
    return circuit


def parity_tree(width: int, name: Optional[str] = None) -> Circuit:
    """A balanced XOR tree computing the parity of *width* inputs."""
    if width < 1:
        raise ValueError("width must be >= 1")
    circuit = Circuit(name or f"parity{width}")
    layer = [circuit.add_input(f"i{k}") for k in range(width)]
    level = 0
    while len(layer) > 1:
        nxt = []
        for k in range(0, len(layer) - 1, 2):
            nxt.append(circuit.add_gate(f"x{level}_{k // 2}", GateType.XOR,
                                        [layer[k], layer[k + 1]]))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        level += 1
    circuit.add_gate("parity", GateType.BUFFER, [layer[0]])
    circuit.set_output("parity")
    return circuit


def comparator(width: int, name: Optional[str] = None) -> Circuit:
    """An n-bit equality comparator: output ``eq`` is 1 iff a == b."""
    if width < 1:
        raise ValueError("width must be >= 1")
    circuit = Circuit(name or f"cmp{width}")
    bits = []
    for i in range(width):
        a = circuit.add_input(f"a{i}")
        b = circuit.add_input(f"b{i}")
        bits.append(circuit.add_gate(f"eq{i}", GateType.XNOR, [a, b]))
    if len(bits) == 1:
        circuit.add_gate("eq", GateType.BUFFER, bits)
    else:
        circuit.add_gate("eq", GateType.AND, bits)
    circuit.set_output("eq")
    return circuit


def mux_tree(select_bits: int, name: Optional[str] = None) -> Circuit:
    """A 2^k-to-1 multiplexer built from 2-to-1 muxes."""
    if select_bits < 1:
        raise ValueError("select_bits must be >= 1")
    circuit = Circuit(name or f"mux{select_bits}")
    data = [circuit.add_input(f"d{i}") for i in range(1 << select_bits)]
    selects = [circuit.add_input(f"s{i}") for i in range(select_bits)]
    layer = data
    for level, sel in enumerate(selects):
        nsel = circuit.add_gate(f"ns{level}", GateType.NOT, [sel])
        nxt = []
        for k in range(0, len(layer), 2):
            lo = circuit.add_gate(f"m{level}_{k}_lo", GateType.AND,
                                  [nsel, layer[k]])
            hi = circuit.add_gate(f"m{level}_{k}_hi", GateType.AND,
                                  [sel, layer[k + 1]])
            nxt.append(circuit.add_gate(f"m{level}_{k}", GateType.OR,
                                        [lo, hi]))
        layer = nxt
    circuit.add_gate("out", GateType.BUFFER, [layer[0]])
    circuit.set_output("out")
    return circuit


def random_circuit(num_inputs: int, num_gates: int,
                   seed: Union[int, random.Random, None] = 0,
                   gate_types: Optional[Sequence[GateType]] = None,
                   max_fanin: int = 3,
                   name: Optional[str] = None) -> Circuit:
    """A random combinational DAG.

    Gates pick 1..max_fanin distinct existing nodes as fanins, biased
    toward recent nodes so depth grows.  All sink nodes become outputs.
    """
    if num_inputs < 1 or num_gates < 1:
        raise ValueError("need at least one input and one gate")
    rng = _rng(seed)
    types = list(gate_types or [GateType.AND, GateType.NAND, GateType.OR,
                                GateType.NOR, GateType.XOR, GateType.NOT])
    circuit = Circuit(name or f"rand{num_inputs}x{num_gates}")
    pool = [circuit.add_input(f"i{k}") for k in range(num_inputs)]
    for g in range(num_gates):
        gate_type = rng.choice(types)
        if gate_type in (GateType.NOT, GateType.BUFFER):
            fanin_count = 1
        else:
            fanin_count = rng.randint(2, max(2, min(max_fanin, len(pool))))
        # Bias toward the most recent half of the pool for depth.
        candidates = pool[len(pool) // 2:] if len(pool) > 4 else pool
        if fanin_count > len(candidates):
            candidates = pool
        fanins = rng.sample(candidates, fanin_count)
        pool.append(circuit.add_gate(f"g{g}", gate_type, fanins))
    for node_name in pool:
        if not circuit.fanout(node_name) and \
                not circuit.node(node_name).is_input:
            circuit.set_output(node_name)
    if not circuit.outputs:
        circuit.set_output(pool[-1])
    return circuit


def alu(width: int, name: Optional[str] = None) -> Circuit:
    """A small ALU slice: op-selected AND / OR / XOR / ADD.

    Inputs ``a0..``, ``b0..`` and a 2-bit opcode ``op0 op1``
    (00=AND, 01=OR, 10=XOR, 11=ADD with carry-in 0); outputs
    ``y0..y(width-1)`` plus ``ovf`` (the adder carry, 0 for logic
    ops).  A realistic mixed-logic workload for ATPG/CEC benchmarks.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    circuit = Circuit(name or f"alu{width}")
    a = [circuit.add_input(f"a{i}") for i in range(width)]
    b = [circuit.add_input(f"b{i}") for i in range(width)]
    op0 = circuit.add_input("op0")
    op1 = circuit.add_input("op1")

    nop0 = circuit.add_gate("nop0", GateType.NOT, [op0])
    nop1 = circuit.add_gate("nop1", GateType.NOT, [op1])
    sel_and = circuit.add_gate("sel_and", GateType.AND, [nop1, nop0])
    sel_or = circuit.add_gate("sel_or", GateType.AND, [nop1, op0])
    sel_xor = circuit.add_gate("sel_xor", GateType.AND, [op1, nop0])
    sel_add = circuit.add_gate("sel_add", GateType.AND, [op1, op0])

    carry = circuit.add_const("alu_c0", False)
    for i in range(width):
        and_i = circuit.add_gate(f"and{i}", GateType.AND, [a[i], b[i]])
        or_i = circuit.add_gate(f"or{i}", GateType.OR, [a[i], b[i]])
        xor_i = circuit.add_gate(f"xor{i}", GateType.XOR, [a[i], b[i]])
        sum_i, carry = full_adder(circuit, a[i], b[i], carry, f"alu_fa{i}")
        terms = []
        for sel, value, tag in ((sel_and, and_i, "and"),
                                (sel_or, or_i, "or"),
                                (sel_xor, xor_i, "xor"),
                                (sel_add, sum_i, "add")):
            terms.append(circuit.add_gate(f"t_{tag}{i}", GateType.AND,
                                          [sel, value]))
        circuit.add_gate(f"y{i}", GateType.OR, terms)
        circuit.set_output(f"y{i}")
    circuit.add_gate("ovf", GateType.AND, [sel_add, carry])
    circuit.set_output("ovf")
    return circuit


def binary_counter(width: int, with_reset: bool = False,
                   name: Optional[str] = None) -> Circuit:
    """A sequential n-bit binary up-counter (for BMC, Section 3).

    State bits ``q0..`` increment every cycle while input ``en`` is 1.
    Output ``rollover`` pulses when all bits are 1 and ``en`` is 1 --
    BMC finds the pulse at exactly depth 2^n with en held high.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    circuit = Circuit(name or f"cnt{width}")
    enable = circuit.add_input("en")
    state = [circuit.add_dff(f"q{i}") for i in range(width)]

    carry = enable
    for i in range(width):
        toggle = circuit.add_gate(f"t{i}", GateType.XOR, [state[i], carry])
        carry = circuit.add_gate(f"c{i}", GateType.AND, [state[i], carry])
        next_bit = toggle
        if with_reset:
            reset = "rst" if "rst" in circuit else circuit.add_input("rst")
            nreset = f"nrst{i}"
            circuit.add_gate(nreset, GateType.NOT, [reset])
            next_bit = circuit.add_gate(f"d{i}", GateType.AND,
                                        [toggle, nreset])
        circuit.connect_dff(f"q{i}", next_bit)

    all_ones = circuit.add_gate("allones", GateType.AND, list(state))
    circuit.add_gate("rollover", GateType.AND, [all_ones, enable])
    circuit.set_output("rollover")
    return circuit


def shift_register(length: int, name: Optional[str] = None) -> Circuit:
    """A serial-in shift register; output is the oldest bit."""
    if length < 1:
        raise ValueError("length must be >= 1")
    circuit = Circuit(name or f"shift{length}")
    serial = circuit.add_input("sin")
    stages = [circuit.add_dff(f"r{i}") for i in range(length)]
    previous = serial
    for i in range(length):
        circuit.connect_dff(f"r{i}", previous)
        previous = stages[i]
    circuit.add_gate("sout", GateType.BUFFER, [previous])
    circuit.set_output("sout")
    return circuit
