"""The :class:`Circuit` netlist model (paper Sections 2 and 5).

A circuit is a named DAG of gates.  The model covers:

* combinational logic built from the Table 1 gate types,
* sequential elements (``DFF``) whose outputs act as pseudo primary
  inputs and whose inputs act as pseudo primary outputs -- the view
  bounded model checking (Section 3) needs for unrolling,
* the structural queries of Section 5: fanin ``FI(x)``, fanout
  ``FO(x)``, levelization, and cones of influence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.circuits.gates import (
    COMBINATIONAL_TYPES,
    GateType,
    check_arity,
)


@dataclass(frozen=True)
class Node:
    """A single circuit node: a primary input, gate, constant or DFF.

    ``fanins`` are the names of driver nodes, in gate-input order.
    """

    name: str
    gate_type: GateType
    fanins: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        check_arity(self.gate_type, len(self.fanins))

    @property
    def is_input(self) -> bool:
        """True for primary inputs."""
        return self.gate_type is GateType.INPUT

    @property
    def is_state(self) -> bool:
        """True for DFF (state) nodes."""
        return self.gate_type is GateType.DFF

    @property
    def is_gate(self) -> bool:
        """True for combinational logic nodes (including constants)."""
        return self.gate_type in COMBINATIONAL_TYPES


class CircuitError(ValueError):
    """Raised on structurally invalid circuit construction."""


class Circuit:
    """A named netlist with primary inputs, gates, DFFs and outputs.

    Nodes are added bottom-up (every fanin must already exist), which
    guarantees acyclicity of the combinational part by construction;
    DFFs may close feedback loops since their fanin is sampled at the
    clock edge, not combinationally.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._dffs: List[str] = []
        self._order: List[str] = []          # insertion (topological) order
        self._fanouts: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input node."""
        self._insert(Node(name, GateType.INPUT))
        self._inputs.append(name)
        return name

    def add_gate(self, name: str, gate_type: GateType,
                 fanins: Iterable[str]) -> str:
        """Add a combinational gate driven by existing nodes."""
        if gate_type not in COMBINATIONAL_TYPES:
            raise CircuitError(f"{gate_type.value} is not a gate type; "
                               "use add_input/add_dff")
        node = Node(name, gate_type, tuple(fanins))
        for fanin in node.fanins:
            if fanin not in self._nodes:
                raise CircuitError(f"gate {name!r} references unknown "
                                   f"fanin {fanin!r}")
        self._insert(node)
        return name

    def add_const(self, name: str, value: bool) -> str:
        """Add a constant driver node."""
        gate_type = GateType.CONST1 if value else GateType.CONST0
        self._insert(Node(name, gate_type))
        return name

    def add_dff(self, name: str, data_input: Optional[str] = None) -> str:
        """Add a D flip-flop output node.

        The data input may be a forward reference or connected later via
        :meth:`connect_dff` (netlist formats reference DFF inputs before
        defining them); :meth:`validate` checks it is eventually wired.
        """
        fanins = (data_input,) if data_input is not None else ()
        self._insert(Node(name, GateType.DFF, fanins), allow_forward=True)
        self._dffs.append(name)
        return name

    def connect_dff(self, name: str, data_input: str) -> None:
        """Attach (or re-attach) the data input of DFF *name*."""
        node = self._nodes.get(name)
        if node is None or node.gate_type is not GateType.DFF:
            raise CircuitError(f"{name!r} is not a DFF")
        self._nodes[name] = Node(name, GateType.DFF, (data_input,))
        fanouts = self._fanouts.setdefault(data_input, [])
        if name not in fanouts:
            fanouts.append(name)

    def set_output(self, name: str) -> None:
        """Mark an existing node as a primary output."""
        if name not in self._nodes:
            raise CircuitError(f"unknown node {name!r}")
        if name not in self._outputs:
            self._outputs.append(name)

    def _insert(self, node: Node, allow_forward: bool = False) -> None:
        if node.name in self._nodes:
            raise CircuitError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._order.append(node.name)
        self._fanouts.setdefault(node.name, [])
        for fanin in node.fanins:
            if fanin in self._nodes or allow_forward:
                self._fanouts.setdefault(fanin, []).append(node.name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def inputs(self) -> List[str]:
        """Primary input names, in declaration order."""
        return list(self._inputs)

    @property
    def outputs(self) -> List[str]:
        """Primary output names, in declaration order."""
        return list(self._outputs)

    @property
    def dffs(self) -> List[str]:
        """DFF (state) node names, in declaration order."""
        return list(self._dffs)

    @property
    def nodes(self) -> Dict[str, Node]:
        """Name-to-node mapping (copy-on-read not enforced; treat as
        read-only)."""
        return self._nodes

    def node(self, name: str) -> Node:
        """The node called *name* (raises KeyError when absent)."""
        return self._nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return (self._nodes[name] for name in self._order)

    def gate_names(self) -> List[str]:
        """Names of combinational gate nodes, in topological order."""
        return [name for name in self._order
                if self._nodes[name].is_gate]

    def num_gates(self) -> int:
        """Number of combinational gates."""
        return len(self.gate_names())

    def is_sequential(self) -> bool:
        """True when the circuit contains DFFs."""
        return bool(self._dffs)

    def fanin(self, name: str) -> Tuple[str, ...]:
        """FI(x): the fanin node names of *name* (Section 5)."""
        return self._nodes[name].fanins

    def fanout(self, name: str) -> List[str]:
        """FO(x): the fanout node names of *name* (Section 5)."""
        return list(self._fanouts.get(name, ()))

    def topological_order(self) -> List[str]:
        """Node names with every combinational fanin before its fanout.

        DFF outputs are sources (their fanin crosses a clock edge), so
        insertion order already works for circuits built bottom-up; for
        circuits parsed with forward references we recompute via DFS.
        """
        visited: Set[str] = set()
        order: List[str] = []

        def visit(name: str, stack: Set[str]) -> None:
            if name in visited:
                return
            if name in stack:
                raise CircuitError(
                    f"combinational cycle through node {name!r}")
            node = self._nodes[name]
            if node.is_gate:
                stack.add(name)
                for fanin in node.fanins:
                    visit(fanin, stack)
                stack.remove(name)
            visited.add(name)
            order.append(name)

        for name in self._order:
            visit(name, set())
        return order

    def levelize(self) -> Dict[str, int]:
        """Logic level of every node: inputs/DFFs/constants at 0, each
        gate one more than its deepest fanin.  Used by delay computation
        (Section 3) and by levelized simulation."""
        levels: Dict[str, int] = {}
        for name in self.topological_order():
            node = self._nodes[name]
            if node.is_gate and node.fanins:
                levels[name] = 1 + max(levels[f] for f in node.fanins)
            else:
                levels[name] = 0
        return levels

    def depth(self) -> int:
        """The maximum logic level (topological circuit depth)."""
        levels = self.levelize()
        return max(levels.values()) if levels else 0

    def transitive_fanin(self, names: Iterable[str]) -> Set[str]:
        """All nodes in the cone of influence of *names* (inclusive)."""
        cone: Set[str] = set()
        stack = list(names)
        while stack:
            name = stack.pop()
            if name in cone:
                continue
            cone.add(name)
            node = self._nodes[name]
            if node.is_gate:
                stack.extend(node.fanins)
        return cone

    def transitive_fanout(self, names: Iterable[str]) -> Set[str]:
        """All nodes reachable from *names* through gate fanouts
        (inclusive); DFF boundaries are not crossed."""
        reached: Set[str] = set()
        stack = list(names)
        while stack:
            name = stack.pop()
            if name in reached:
                continue
            reached.add(name)
            for fanout in self._fanouts.get(name, ()):
                if self._nodes[fanout].is_gate:
                    stack.append(fanout)
        return reached

    def validate(self) -> None:
        """Check structural well-formedness; raises :class:`CircuitError`.

        Verifies that every fanin reference resolves, every DFF has a
        connected data input, every output exists, and the combinational
        part is acyclic.
        """
        for node in self:
            for fanin in node.fanins:
                if fanin not in self._nodes:
                    raise CircuitError(
                        f"node {node.name!r} references unknown fanin "
                        f"{fanin!r}")
        for dff in self._dffs:
            if not self._nodes[dff].fanins:
                raise CircuitError(f"DFF {dff!r} has no data input")
        for output in self._outputs:
            if output not in self._nodes:
                raise CircuitError(f"unknown output {output!r}")
        self.topological_order()  # raises on combinational cycles

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """A deep copy (nodes are immutable, so structure is rebuilt)."""
        out = Circuit(name or self.name)
        out._nodes = dict(self._nodes)
        out._inputs = list(self._inputs)
        out._outputs = list(self._outputs)
        out._dffs = list(self._dffs)
        out._order = list(self._order)
        out._fanouts = {k: list(v) for k, v in self._fanouts.items()}
        return out

    def renamed(self, prefix: str, name: Optional[str] = None) -> "Circuit":
        """A copy with every node name prefixed -- used when composing
        two circuits into a miter (Section 3) so namespaces stay
        disjoint."""
        mapping = {old: prefix + old for old in self._nodes}
        out = Circuit(name or (prefix + self.name))
        for old in self._order:
            node = self._nodes[old]
            renamed = Node(mapping[old], node.gate_type,
                           tuple(mapping[f] for f in node.fanins))
            out._nodes[renamed.name] = renamed
            out._order.append(renamed.name)
            out._fanouts.setdefault(renamed.name, [])
            for fanin in renamed.fanins:
                out._fanouts.setdefault(fanin, []).append(renamed.name)
        out._inputs = [mapping[n] for n in self._inputs]
        out._outputs = [mapping[n] for n in self._outputs]
        out._dffs = [mapping[n] for n in self._dffs]
        return out

    def stats(self) -> Dict[str, int]:
        """Summary counts used in experiment reports."""
        per_type: Dict[str, int] = {}
        for node in self:
            per_type[node.gate_type.value] = \
                per_type.get(node.gate_type.value, 0) + 1
        return {
            "nodes": len(self._nodes),
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "gates": self.num_gates(),
            "dffs": len(self._dffs),
            "depth": self.depth(),
            **{f"type_{k}": v for k, v in sorted(per_type.items())},
        }

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, inputs={len(self._inputs)}, "
                f"gates={self.num_gates()}, outputs={len(self._outputs)}, "
                f"dffs={len(self._dffs)})")
