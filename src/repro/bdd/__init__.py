"""Reduced Ordered Binary Decision Diagrams.

The paper's abstract frames its subject against BDDs: "SAT 'packages'
are currently expected to have an impact on EDA applications similar
to that of BDD packages since their introduction more than a decade
ago", and the hybrid equivalence checkers it cites [16] combine both.
This package provides the BDD baseline those comparisons need:

* :mod:`repro.bdd.manager` -- a shared, hash-consed ROBDD manager with
  ITE/apply, negation, quantification, counting and satisfying-cube
  extraction;
* :mod:`repro.bdd.circuit` -- building output BDDs for a netlist;
* equivalence checking via canonicity (benchmark X1 compares it with
  SAT-based CEC, reproducing the classic shape: BDDs are instant on
  shallow logic but blow up on multipliers, where SAT miters stay
  tractable).
"""

from repro.bdd.manager import BDDManager, BDDNode
from repro.bdd.circuit import build_output_bdds, check_equivalence_bdd

__all__ = [
    "BDDManager",
    "BDDNode",
    "build_output_bdds",
    "check_equivalence_bdd",
]
