"""Circuit-to-BDD construction and BDD-based equivalence checking.

The BDD baseline for the paper's equivalence-checking discussion:
build output BDDs for both circuits over a shared manager and compare
node references (canonical form makes equivalence a pointer check).
Blow-up (e.g. on multipliers) raises through as
:class:`repro.bdd.manager.BDDBlowup`, which the SAT-vs-BDD benchmark
reports as the crossover the literature describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bdd.manager import BDDManager, BDDNode
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit


def interleaved_order(circuit: Circuit) -> List[str]:
    """An interleaved input order for bus-structured circuits.

    Groups inputs by their trailing index (``a0, b0, a1, b1, ...``),
    the classic good ordering for adders/comparators where the natural
    declaration order (all of ``a`` then all of ``b``) inflates BDDs.
    Inputs without a trailing index keep their relative position at
    the end.
    """
    import re

    indexed = []
    plain = []
    for position, name in enumerate(circuit.inputs):
        match = re.search(r"(\d+)$", name)
        if match:
            indexed.append((int(match.group(1)), position, name))
        else:
            plain.append(name)
    indexed.sort()
    return [name for _, _, name in indexed] + plain


def build_output_bdds(circuit: Circuit,
                      manager: Optional[BDDManager] = None,
                      input_order: Optional[Sequence[str]] = None
                      ) -> Dict[str, BDDNode]:
    """BDDs for every node of a combinational circuit.

    Inputs become BDD variables 1..n in *input_order* (defaults to
    declaration order).  Returns the full node-name -> BDD map; project
    onto ``circuit.outputs`` for the output functions.
    """
    circuit.validate()
    if circuit.is_sequential():
        raise ValueError("BDD construction is combinational only")
    order = list(input_order or circuit.inputs)
    if sorted(order) != sorted(circuit.inputs):
        raise ValueError("input_order must permute the circuit inputs")
    manager = manager or BDDManager(len(order))
    var_of = {name: index + 1 for index, name in enumerate(order)}

    nodes: Dict[str, BDDNode] = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type is GateType.INPUT:
            nodes[name] = manager.var(var_of[name])
        elif node.gate_type is GateType.CONST0:
            nodes[name] = manager.zero
        elif node.gate_type is GateType.CONST1:
            nodes[name] = manager.one
        elif node.gate_type is GateType.NOT:
            nodes[name] = manager.apply_not(nodes[node.fanins[0]])
        elif node.gate_type is GateType.BUFFER:
            nodes[name] = nodes[node.fanins[0]]
        else:
            operands = [nodes[fanin] for fanin in node.fanins]
            nodes[name] = manager.apply_many(node.gate_type.value,
                                             operands)
    return nodes


@dataclass
class BDDEquivalenceReport:
    """Outcome of a BDD-based equivalence check."""

    equivalent: Optional[bool]
    counterexample: Optional[Dict[str, bool]] = None
    peak_nodes: int = 0
    per_output: List[bool] = field(default_factory=list)


def check_equivalence_bdd(circuit_a: Circuit, circuit_b: Circuit,
                          max_nodes: int = 200_000
                          ) -> BDDEquivalenceReport:
    """Equivalence by canonicity: same BDD node <=> same function.

    Circuits must share input and output name lists.  On blow-up the
    report carries ``equivalent=None`` (the budget is the practical
    limit BDDs hit on multiplier-like logic).
    """
    if list(circuit_a.inputs) != list(circuit_b.inputs):
        raise ValueError("equivalence check requires matching inputs")
    if len(circuit_a.outputs) != len(circuit_b.outputs):
        raise ValueError("equivalence check requires matching outputs")
    from repro.bdd.manager import BDDBlowup

    manager = BDDManager(len(circuit_a.inputs), max_nodes=max_nodes)
    try:
        nodes_a = build_output_bdds(circuit_a, manager)
        nodes_b = build_output_bdds(circuit_b, manager)
    except BDDBlowup:
        return BDDEquivalenceReport(None, peak_nodes=manager.num_nodes)

    report = BDDEquivalenceReport(True, peak_nodes=manager.num_nodes)
    input_names = list(circuit_a.inputs)
    for out_a, out_b in zip(circuit_a.outputs, circuit_b.outputs):
        same = nodes_a[out_a] is nodes_b[out_b]   # canonicity
        report.per_output.append(same)
        if not same and report.equivalent:
            report.equivalent = False
            difference = manager.apply_xor(nodes_a[out_a],
                                           nodes_b[out_b])
            model = manager.any_model(difference) or {}
            report.counterexample = {
                name: model.get(index + 1, False)
                for index, name in enumerate(input_names)}
    return report
