"""A reduced ordered BDD manager (hash-consed, ITE-based).

Classic Bryant-style implementation: nodes are unique triples
``(level, low, high)`` interned in a unique table, so two functions
are equal iff their node references are identical -- the canonicity
property equivalence checking exploits.  All Boolean operations are
derived from a memoized ``ite``.

Node-count budgets guard against the exponential blow-ups BDDs are
famous for (e.g. multiplier outputs); hitting the budget raises
:class:`BDDBlowup`, which the comparison benchmarks catch to report
the classic BDD-vs-SAT crossover.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class BDDBlowup(RuntimeError):
    """Raised when the manager exceeds its node budget."""


class BDDNode:
    """An internal decision node; terminals are the singletons
    ``manager.zero`` / ``manager.one``."""

    __slots__ = ("level", "low", "high", "_id")

    def __init__(self, level: int, low: "BDDNode", high: "BDDNode",
                 node_id: int):
        self.level = level
        self.low = low
        self.high = high
        self._id = node_id

    def __repr__(self) -> str:
        if self.level == _TERMINAL_LEVEL:
            return f"<BDD {'1' if self is not None and self._id else '0'}>"
        return f"<BDD node v{self.level} id={self._id}>"


_TERMINAL_LEVEL = 1 << 30


class BDDManager:
    """Shared ROBDD manager over variables ``1..num_vars``.

    Variable index equals decision level by default (lower index =
    closer to the root); pass *order* to remap.  ``max_nodes`` bounds
    the unique table (default one million).
    """

    def __init__(self, num_vars: int = 0,
                 order: Optional[Sequence[int]] = None,
                 max_nodes: int = 1_000_000):
        self.max_nodes = max_nodes
        self._unique: Dict[Tuple[int, int, int], BDDNode] = {}
        self._ite_cache: Dict[Tuple[int, int, int], BDDNode] = {}
        self._next_id = 2
        self.zero = BDDNode(_TERMINAL_LEVEL, None, None, 0)
        self.one = BDDNode(_TERMINAL_LEVEL, None, None, 1)
        self._level_of: Dict[int, int] = {}
        self._var_at_level: Dict[int, int] = {}
        if order is not None:
            for level, var in enumerate(order):
                self._install_var(var, level)
            num_vars = max(num_vars, len(order))
        for var in range(1, num_vars + 1):
            if var not in self._level_of:
                self._install_var(var, len(self._level_of))

    def _install_var(self, var: int, level: int) -> None:
        if var in self._level_of:
            raise ValueError(f"variable {var} ordered twice")
        self._level_of[var] = level
        self._var_at_level[level] = var

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Internal (non-terminal) nodes currently interned."""
        return len(self._unique)

    def var(self, index: int) -> BDDNode:
        """The BDD of the bare variable *index*."""
        if index not in self._level_of:
            self._install_var(index, len(self._level_of))
        return self._mk(self._level_of[index], self.zero, self.one)

    def nvar(self, index: int) -> BDDNode:
        """The BDD of the complemented variable."""
        if index not in self._level_of:
            self._install_var(index, len(self._level_of))
        return self._mk(self._level_of[index], self.one, self.zero)

    def constant(self, value: bool) -> BDDNode:
        """A terminal."""
        return self.one if value else self.zero

    def _mk(self, level: int, low: BDDNode, high: BDDNode) -> BDDNode:
        if low is high:
            return low                       # reduction rule
        key = (level, low._id, high._id)
        node = self._unique.get(key)
        if node is None:
            if len(self._unique) >= self.max_nodes:
                raise BDDBlowup(
                    f"unique table exceeded {self.max_nodes} nodes")
            node = BDDNode(level, low, high, self._next_id)
            self._next_id += 1
            self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # Core operation: ITE
    # ------------------------------------------------------------------

    def ite(self, cond: BDDNode, then: BDDNode,
            otherwise: BDDNode) -> BDDNode:
        """If-then-else; every binary operation reduces to it."""
        if cond is self.one:
            return then
        if cond is self.zero:
            return otherwise
        if then is otherwise:
            return then
        if then is self.one and otherwise is self.zero:
            return cond
        key = (cond._id, then._id, otherwise._id)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(cond.level, then.level, otherwise.level)

        def cofactor(node: BDDNode, positive: bool) -> BDDNode:
            if node.level != top:
                return node
            return node.high if positive else node.low

        high = self.ite(cofactor(cond, True), cofactor(then, True),
                        cofactor(otherwise, True))
        low = self.ite(cofactor(cond, False), cofactor(then, False),
                       cofactor(otherwise, False))
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------

    def apply_not(self, node: BDDNode) -> BDDNode:
        """Negation."""
        return self.ite(node, self.zero, self.one)

    def apply_and(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Conjunction."""
        return self.ite(left, right, self.zero)

    def apply_or(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Disjunction."""
        return self.ite(left, self.one, right)

    def apply_xor(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Exclusive or."""
        return self.ite(left, self.apply_not(right), right)

    def apply_xnor(self, left: BDDNode, right: BDDNode) -> BDDNode:
        """Equivalence."""
        return self.ite(left, right, self.apply_not(right))

    def apply_many(self, op: str, operands: Sequence[BDDNode]) -> BDDNode:
        """Fold AND/OR/XOR (and their negations) over operands."""
        table = {
            "AND": (self.apply_and, self.one, False),
            "NAND": (self.apply_and, self.one, True),
            "OR": (self.apply_or, self.zero, False),
            "NOR": (self.apply_or, self.zero, True),
            "XOR": (self.apply_xor, self.zero, False),
            "XNOR": (self.apply_xor, self.zero, True),
        }
        if op not in table:
            raise ValueError(f"unknown operation {op!r}")
        fold, unit, negate = table[op]
        result = unit
        for operand in operands:
            result = fold(result, operand)
        return self.apply_not(result) if negate else result

    def restrict(self, node: BDDNode, var: int, value: bool) -> BDDNode:
        """Cofactor with respect to ``var = value``."""
        level = self._level_of[var]

        def walk(current: BDDNode) -> BDDNode:
            if current.level > level:
                return current
            if current.level == level:
                return current.high if value else current.low
            high = walk(current.high)
            low = walk(current.low)
            return self._mk(current.level, low, high)

        return walk(node)

    def exists(self, node: BDDNode, var: int) -> BDDNode:
        """Existential quantification of one variable."""
        return self.apply_or(self.restrict(node, var, False),
                             self.restrict(node, var, True))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def evaluate(self, node: BDDNode,
                 assignment: Dict[int, bool]) -> bool:
        """Follow the decision path of a total assignment."""
        current = node
        while current.level != _TERMINAL_LEVEL:
            var = self._var_at_level[current.level]
            current = current.high if assignment[var] else current.low
        return current is self.one

    def count_solutions(self, node: BDDNode, num_vars: int) -> int:
        """Number of satisfying assignments over ``1..num_vars``."""
        levels = sorted(self._level_of[v]
                        for v in range(1, num_vars + 1))
        position = {level: index for index, level in enumerate(levels)}
        total_levels = len(levels)
        cache: Dict[int, int] = {}

        def walk(current: BDDNode, depth: int) -> int:
            if current.level == _TERMINAL_LEVEL:
                remaining = total_levels - depth
                return (1 << remaining) if current is self.one else 0
            key = (current._id, depth)
            if key in cache:
                return cache[key]
            here = position[current.level]
            gap = here - depth
            count = (walk(current.low, here + 1)
                     + walk(current.high, here + 1)) << gap
            cache[key] = count
            return count

        return walk(node, 0)

    def any_model(self, node: BDDNode) -> Optional[Dict[int, bool]]:
        """One satisfying partial assignment (None if node is zero)."""
        if node is self.zero:
            return None
        model: Dict[int, bool] = {}
        current = node
        while current.level != _TERMINAL_LEVEL:
            var = self._var_at_level[current.level]
            if current.high is not self.zero:
                model[var] = True
                current = current.high
            else:
                model[var] = False
                current = current.low
        return model

    def size(self, node: BDDNode) -> int:
        """Nodes reachable from *node* (terminals excluded)."""
        seen = set()

        def walk(current: BDDNode) -> None:
            if current.level == _TERMINAL_LEVEL or current._id in seen:
                return
            seen.add(current._id)
            walk(current.low)
            walk(current.high)

        walk(node)
        return len(seen)

    def iter_cubes(self, node: BDDNode) -> Iterator[Dict[int, bool]]:
        """Yield the satisfying cubes (paths to the 1 terminal)."""
        path: List[Tuple[int, bool]] = []

        def walk(current: BDDNode):
            if current is self.one:
                yield dict(path)
                return
            if current is self.zero:
                return
            var = self._var_at_level[current.level]
            for value, child in ((False, current.low),
                                 (True, current.high)):
                path.append((var, value))
                yield from walk(child)
                path.pop()

        yield from walk(node)
