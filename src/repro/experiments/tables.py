"""Plain-text result tables for experiment output.

Benchmarks print the same row/column structure the paper's tables use;
this module owns the formatting so every experiment reports uniformly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table.

    Cells are stringified with ``str``; floats are shown with four
    significant digits.
    """

    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        if cell is None:
            return "-"
        return str(cell)

    body: List[List[str]] = [[render(cell) for cell in row]
                             for row in rows]
    columns = [list(column) for column in
               zip(*([list(headers)] + body))] if body else \
        [[h] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(cells, widths)).rstrip()

    separator = "-+-".join("-" * width for width in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(separator)
    parts.extend(line(row) for row in body)
    return "\n".join(parts)


def print_table(headers: Sequence[str], rows: Iterable[Sequence],
                title: Optional[str] = None) -> None:
    """Print :func:`format_table` output (benchmarks' reporting path)."""
    print()
    print(format_table(headers, rows, title))
