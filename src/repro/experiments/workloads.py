"""Standard workloads shared by tests and benchmarks.

Includes the paper's worked examples as ready-made objects (the Figure
4 formula with its exact clause structure) and suite builders matching
the instance families named in DESIGN.md's substitution note.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import (
    parity_chain,
    pigeonhole,
    random_ksat_at_ratio,
)
from repro.circuits.generators import (
    array_multiplier,
    carry_select_adder,
    parity_tree,
    random_circuit,
    ripple_carry_adder,
)
from repro.circuits.library import c17, figure1_circuit, figure3_circuit
from repro.circuits.netlist import Circuit

#: Variables of the Figure 4 formula, by name.
FIGURE4_VARS: Dict[str, int] = {"u": 1, "w": 2, "x": 3, "y": 4, "z": 5}


def figure4_formula() -> CNFFormula:
    """The paper's Figure 4 CNF formula.

    With variables (u, w, x, y, z) = (1..5)::

        w1 = (u + x + w')
        w2 = (x + y')
        w3 = (w + y + z')

    Under the assignments ``z = 1, u = 0``, satisfying ``w3`` requires
    ``w = 1`` or ``y = 1``; either way ``x = 1`` follows (via ``w1``
    resp. ``w2``), so recursive learning must derive the necessary
    assignment ``x = 1`` and record the implicate ``(z' + u + x)``.
    """
    u, w, x, y, z = (FIGURE4_VARS[name] for name in "uwxyz")
    formula = CNFFormula(5)
    for name, var in FIGURE4_VARS.items():
        formula.set_name(var, name)
    formula.add_clause([u, x, -w])
    formula.add_clause([x, -y])
    formula.add_clause([w, y, -z])
    return formula


def figure4_condition() -> Dict[int, bool]:
    """The Figure 4 working assignment {z = 1, u = 0}."""
    return {FIGURE4_VARS["z"]: True, FIGURE4_VARS["u"]: False}


def small_circuit_suite() -> List[Circuit]:
    """Small circuits every application benchmark iterates over."""
    return [
        figure1_circuit(),
        figure3_circuit(),
        c17(),
        ripple_carry_adder(3),
        parity_tree(5),
    ]


def medium_circuit_suite(seed: int = 0) -> List[Circuit]:
    """Larger (still laptop-scale) structural instances."""
    return [
        ripple_carry_adder(8),
        carry_select_adder(8),
        array_multiplier(3),
        parity_tree(12),
        random_circuit(8, 40, seed=seed),
    ]


def equivalence_pairs() -> List[Tuple[Circuit, Circuit]]:
    """Functionally equivalent, structurally different circuit pairs."""
    return [
        (ripple_carry_adder(4), carry_select_adder(4)),
        (ripple_carry_adder(6), carry_select_adder(6, block=3)),
    ]


def unsat_formula_suite(scale: int = 1) -> List[Tuple[str, CNFFormula]]:
    """Unsatisfiable instances (the paper's UNSAT-dominant EDA mix)."""
    return [
        (f"php{4 + scale}", pigeonhole(4 + scale)),
        (f"parity{8 * scale}", parity_chain(8 * scale,
                                            satisfiable=False)),
    ]


def sat_formula_suite(num_vars: int = 30, count: int = 5,
                      seed: int = 0) -> List[Tuple[str, CNFFormula]]:
    """Satisfiable-leaning random 3-SAT below the phase transition."""
    return [
        (f"rand3sat_{num_vars}_{index}",
         random_ksat_at_ratio(num_vars, ratio=3.8, seed=seed + index))
        for index in range(count)
    ]
