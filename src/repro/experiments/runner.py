"""Uniform solver invocation with instrumentation.

Benchmarks compare algorithm configurations on common instances; this
module centralizes "run configuration X on formula Y and report the
counters" so every experiment measures the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cnf.formula import CNFFormula
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import DPLLSolver
from repro.solvers.heuristics import make_heuristic
from repro.solvers.local_search import solve_gsat, solve_walksat
from repro.solvers.restarts import make_restart_policy
from repro.solvers.result import SolverResult


@dataclass
class RunRecord:
    """One (configuration, instance) measurement."""

    config: str
    instance: str
    status: str
    decisions: int
    conflicts: int
    propagations: int
    backtracks: int
    nonchronological_backtracks: int
    learned: int
    deleted: int
    restarts: int
    seconds: float

    @classmethod
    def from_result(cls, config: str, instance: str,
                    result: SolverResult) -> "RunRecord":
        stats = result.stats
        return cls(config, instance, result.status.value,
                   stats.decisions, stats.conflicts, stats.propagations,
                   stats.backtracks, stats.nonchronological_backtracks,
                   stats.learned_clauses, stats.deleted_clauses,
                   stats.restarts, stats.time_seconds)

    def row(self) -> Tuple:
        """Table row for :func:`repro.experiments.tables.format_table`."""
        return (self.config, self.instance, self.status, self.decisions,
                self.conflicts, self.backtracks,
                self.nonchronological_backtracks, self.learned,
                self.restarts, round(self.seconds, 4))


RUN_HEADERS = ("config", "instance", "status", "decisions", "conflicts",
               "backtracks", "ncb", "learned", "restarts", "seconds")


def run_solver(config: str, formula: CNFFormula,
               max_conflicts: Optional[int] = 50000,
               max_decisions: Optional[int] = None,
               seed: int = 0) -> SolverResult:
    """Run one named configuration.

    Config grammar (dash-separated switches):

    * ``dpll`` -- chronological DPLL baseline;
    * ``cdcl`` -- defaults (VSIDS, 1-UIP, non-chronological, learning);
    * ``cdcl-chrono`` -- chronological backtracking ablation;
    * ``cdcl-nolearn`` -- clause recording off;
    * ``cdcl-size<k>`` / ``cdcl-rel<k>`` -- deletion policies;
    * ``cdcl-restart<interval>`` -- randomized fixed restarts;
    * ``cdcl-luby<unit>`` -- randomized Luby restarts;
    * ``cdcl-h:<name>`` -- decision heuristic override;
    * ``gsat`` / ``walksat`` -- local search baselines.
    """
    parts = config.split("-")
    engine = parts[0]
    if engine == "dpll":
        return DPLLSolver(formula, max_decisions=max_decisions,
                          max_conflicts=max_conflicts).solve()
    if engine == "gsat":
        return solve_gsat(formula, max_tries=20, max_flips=2000,
                          seed=seed)
    if engine == "walksat":
        flips = max_conflicts if max_conflicts else 20000
        return solve_walksat(formula, max_tries=20, max_flips=flips,
                             seed=seed)
    if engine != "cdcl":
        raise ValueError(f"unknown engine {engine!r} in {config!r}")

    kwargs: Dict = dict(max_conflicts=max_conflicts,
                        max_decisions=max_decisions)
    heuristic_name = "vsids"
    random_freq = 0.0
    for part in parts[1:]:
        if part == "chrono":
            kwargs["backtrack_mode"] = "chronological"
        elif part == "nolearn":
            kwargs["learning"] = False
        elif part == "minimize":
            kwargs["minimize_learned"] = True
        elif part == "phase":
            kwargs["phase_saving"] = True
        elif part == "decisioncut":
            kwargs["conflict_cut"] = "decision"
        elif part.startswith("size"):
            kwargs["deletion"] = "size"
            kwargs["deletion_bound"] = int(part[4:])
            kwargs["deletion_interval"] = 200
        elif part.startswith("rel"):
            kwargs["deletion"] = "relevance"
            kwargs["deletion_bound"] = int(part[3:])
            kwargs["deletion_interval"] = 200
        elif part.startswith("restart"):
            kwargs["restart_policy"] = make_restart_policy(
                "fixed", int(part[7:]))
            random_freq = 0.2
        elif part.startswith("luby"):
            kwargs["restart_policy"] = make_restart_policy(
                "luby", int(part[4:]) * 4)
            random_freq = 0.2
        elif part.startswith("h:"):
            heuristic_name = part[2:]
        else:
            raise ValueError(f"unknown switch {part!r} in {config!r}")
    heuristic = make_heuristic(heuristic_name, seed=seed,
                               random_freq=random_freq)
    return CDCLSolver(formula, heuristic=heuristic, **kwargs).solve()


def run_matrix(configs: Sequence[str],
               instances: Sequence[Tuple[str, CNFFormula]],
               max_conflicts: Optional[int] = 50000,
               seed: int = 0) -> List[RunRecord]:
    """Run every configuration on every instance."""
    records = []
    for config in configs:
        for name, formula in instances:
            result = run_solver(config, formula,
                                max_conflicts=max_conflicts, seed=seed)
            records.append(RunRecord.from_result(config, name, result))
    return records


def timed(function: Callable, *args, **kwargs) -> Tuple[float, object]:
    """Wall-clock one call; returns ``(seconds, result)``."""
    started = time.perf_counter()
    value = function(*args, **kwargs)
    return time.perf_counter() - started, value
