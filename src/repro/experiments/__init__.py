"""Experiment harness: workload suites, result tables, solver runners.

Used by the ``benchmarks/`` tree to regenerate every table and figure
of the paper and to validate its empirical claims (see DESIGN.md for
the experiment index).
"""

from repro.experiments.tables import format_table
from repro.experiments.workloads import figure4_formula

__all__ = ["figure4_formula", "format_table"]
