"""repro: Boolean Satisfiability in Electronic Design Automation.

A faithful, self-contained reproduction of Marques-Silva & Sakallah's
DAC 2000 tutorial: the CNF substrate (Section 2), the backtrack-search
and conflict-driven SAT algorithms it surveys (Section 4), recursive
learning on CNF formulas (Section 4.2), the circuit-structure layer
with justification frontiers (Section 5), equivalency reasoning,
randomized restarts and incremental SAT (Section 6), and the EDA
applications of Section 3 (ATPG, redundancy removal, equivalence
checking, delay computation, bounded model checking, functional vector
generation, covering/prime implicants, FPGA routing).

Quick start::

    from repro import CNFFormula, solve_cdcl
    formula = CNFFormula()
    a, b = formula.new_vars(2)
    formula.add_clause([a, b])
    formula.add_clause([-a, b])
    result = solve_cdcl(formula)
    assert result.is_sat and result.assignment.value_of(b) is True

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-reproduction index.
"""

from repro.cnf import Assignment, Clause, CNFFormula
from repro.cnf.dimacs import load_dimacs, parse_dimacs, save_dimacs
from repro.circuits import Circuit, GateType, encode_circuit
from repro.circuits.tseitin import build_miter, encode_with_objective
from repro.solvers import (
    CDCLSolver,
    DPLLSolver,
    SolverResult,
    Status,
    solve_cdcl,
    solve_dpll,
    solve_gsat,
    solve_walksat,
)
from repro.solvers.circuit_sat import CircuitSATSolver, solve_circuit
from repro.solvers.incremental import IncrementalSolver
from repro.apps.atpg import ATPGEngine, IncrementalATPG
from repro.apps.bmc import BoundedModelChecker, check_safety
from repro.apps.equivalence import check_equivalence

__version__ = "1.0.0"

__all__ = [
    "ATPGEngine",
    "Assignment",
    "BoundedModelChecker",
    "CDCLSolver",
    "CNFFormula",
    "Circuit",
    "CircuitSATSolver",
    "Clause",
    "DPLLSolver",
    "GateType",
    "IncrementalATPG",
    "IncrementalSolver",
    "SolverResult",
    "Status",
    "build_miter",
    "check_equivalence",
    "check_safety",
    "encode_circuit",
    "encode_with_objective",
    "load_dimacs",
    "parse_dimacs",
    "save_dimacs",
    "solve_cdcl",
    "solve_circuit",
    "solve_dpll",
    "solve_gsat",
    "solve_walksat",
    "__version__",
]
