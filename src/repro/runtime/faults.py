"""Deterministic fault injection for portfolio workers.

The supervisor's recovery paths (crash respawn, hang detection,
garbage rejection) are unreachable in a healthy run, so CI could never
exercise them.  A :class:`FaultPlan` travels to each worker process
(it is a frozen, picklable value object) and tells the worker to
misbehave in a prescribed, reproducible way:

* **crash** -- die via ``os._exit`` with no result, as a segfaulting
  or OOM-killed engine would;
* **hang** -- spin forever without heartbeating, as a livelocked or
  deadlocked engine would;
* **garbage** -- report a malformed or false payload (bad status
  name, non-model "model"), as a corrupted engine would;
* **false_unsat** -- report a well-formed UNSATISFIABLE verdict
  without having solved (and so without a proof), as a buggy engine
  would.  Under a certifying supervisor (``proof_dir`` set) this must
  be caught by the proof check and degraded to ``DISCREPANT``; an
  uncertified race has no defence against it, which is the point.

Faults are keyed by ``(worker index, attempt)`` so a plan can say
"worker 2 crashes on its first two attempts, then behaves", which is
exactly the shape supervisor tests need: forced failures followed by a
verifiable recovery.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

#: Fault kinds understood by :meth:`FaultPlan.action`.
CRASH = "crash"
HANG = "hang"
GARBAGE = "garbage"
FALSE_UNSAT = "false_unsat"

#: Additional service-level fault kinds
#: (:meth:`ServiceFaultPlan.action`).
KILL_MIDJOB = "kill_midjob"   # die after making observable progress
POISON = "poison"             # malformed payload on the result pipe
DELAY = "delay"               # server-side delayed response

#: Crash-recovery fault kinds (PR 10).  ``corrupt_checkpoint`` is a
#: *modifier*, not an action: the worker solves normally but flips
#: bytes in every checkpoint blob it piggybacks, so the consumer's
#: checksummed loader must reject them and the next respawn must fall
#: back to a cold restart.  ``server_kill`` is server-side: the
#: process dies via ``os._exit`` right after journaling a job's
#: accepted submission -- the deterministic stand-in for a SIGKILL
#: mid-batch that journal replay must recover from.
CORRUPT_CHECKPOINT = "corrupt_checkpoint"
SERVER_KILL = "server_kill"

#: Exit code of a scripted ``server_kill`` (distinct from worker
#: crash 17 and mid-job kill 23 so test harnesses can tell them
#: apart).
SERVER_KILL_EXIT = 29


def corrupt_blob(blob: bytes) -> bytes:
    """Deterministically corrupt *blob* (checkpoint wire bytes): the
    last byte is bit-flipped, which breaks the body digest without
    changing the length -- the subtlest corruption the loader must
    still catch."""
    if not blob:
        return blob
    return blob[:-1] + bytes([blob[-1] ^ 0xFF])


@dataclass(frozen=True)
class FaultPlan:
    """Scripted misbehaviour per (worker index, attempt).

    Parameters
    ----------
    crashes:
        worker index -> number of leading attempts that crash.
        ``{1: 2}`` crashes worker 1 on attempts 0 and 1; attempt 2
        runs normally.
    hangs:
        worker indices that hang on **every** attempt (a hung worker
        is terminated, not respawned, so one entry is enough).
    garbage:
        worker index -> number of leading attempts that return a
        corrupt payload instead of solving.
    false_unsat:
        worker index -> number of leading attempts that claim
        UNSATISFIABLE without solving (and without writing a proof).
    kills:
        worker index -> leading attempts that die *mid-job*, after
        ``kill_after_checkpoints`` cooperative checkpoints -- so the
        supervisor has already received progress (and piggybacked
        checkpoints) when the worker dies, which is what warm-restart
        respawn tests need.
    corrupt_checkpoints:
        worker index -> leading attempts whose piggybacked checkpoint
        blobs are corrupted before sending (the respawn must demote to
        a cold restart, never crash).
    kill_after_checkpoints:
        checkpoints a ``kills`` attempt survives before dying.
    """

    crashes: Dict[int, int] = field(default_factory=dict)
    hangs: FrozenSet[int] = field(default_factory=frozenset)
    garbage: Dict[int, int] = field(default_factory=dict)
    false_unsat: Dict[int, int] = field(default_factory=dict)
    kills: Dict[int, int] = field(default_factory=dict)
    corrupt_checkpoints: Dict[int, int] = field(default_factory=dict)
    kill_after_checkpoints: int = 2

    def __post_init__(self):
        # Normalize so equal plans compare/pickle identically.
        object.__setattr__(self, "crashes", dict(self.crashes))
        object.__setattr__(self, "hangs", frozenset(self.hangs))
        object.__setattr__(self, "garbage", dict(self.garbage))
        object.__setattr__(self, "false_unsat", dict(self.false_unsat))
        object.__setattr__(self, "kills", dict(self.kills))
        object.__setattr__(self, "corrupt_checkpoints",
                           dict(self.corrupt_checkpoints))

    def action(self, index: int, attempt: int) -> Optional[str]:
        """The scripted fault for this (worker, attempt), or None."""
        if index in self.hangs:
            return HANG
        if attempt < self.crashes.get(index, 0):
            return CRASH
        if attempt < self.kills.get(index, 0):
            return KILL_MIDJOB
        if attempt < self.garbage.get(index, 0):
            return GARBAGE
        if attempt < self.false_unsat.get(index, 0):
            return FALSE_UNSAT
        return None

    def corrupts_checkpoint(self, index: int, attempt: int) -> bool:
        """Should this attempt corrupt its checkpoint blobs?"""
        return attempt < self.corrupt_checkpoints.get(index, 0)

    @classmethod
    def crash_all_once(cls, num_workers: int) -> "FaultPlan":
        """Every worker crashes on its first attempt, then recovers --
        the canonical supervisor-respawn scenario."""
        return cls(crashes={index: 1 for index in range(num_workers)})

    @classmethod
    def hang_all(cls, num_workers: int) -> "FaultPlan":
        """Every worker hangs -- the canonical deadline scenario."""
        return cls(hangs=frozenset(range(num_workers)))


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Scripted misbehaviour for the solve service, keyed by
    ``(job id, attempt)`` -- the service twin of :class:`FaultPlan`.

    The service's recovery surface is wider than the portfolio's:
    besides crash-at-start and hang, a worker can die *mid-job* after
    heartbeating and reporting progress (exercising partial-result
    degradation), a payload can arrive poisoned, and a response can be
    deliberately delayed server-side (exercising client deadlines).
    All counts are "number of leading attempts", so ``{"job-3": 1}``
    fails job-3's first attempt and lets its retry succeed.

    Parameters
    ----------
    crashes:
        job id -> leading attempts that die at solve start.
    kills:
        job id -> leading attempts that die mid-job, after
        ``kill_after_checkpoints`` cooperative checkpoints (so the
        server has seen heartbeats and progress snapshots first).
    hangs:
        job id -> leading attempts that spin without heartbeating.
    poisons:
        job id -> leading attempts that send a malformed payload.
    delays:
        job id -> seconds the *server* stalls before replying
        (applies to every attempt; models a slow result path).
    kill_after_checkpoints:
        checkpoints a ``kills`` attempt survives before dying.
    corrupt_checkpoints:
        job id -> leading attempts whose piggybacked checkpoint blobs
        are corrupted before sending; the retry must fall back to a
        cold restart without losing the job.
    server_kills:
        job id -> nonzero means the *server process* dies via
        ``os._exit(SERVER_KILL_EXIT)`` immediately after journaling
        the job's accepted submission (deterministic SIGKILL
        mid-batch; exercises journal replay on restart).
    """

    crashes: Dict[str, int] = field(default_factory=dict)
    kills: Dict[str, int] = field(default_factory=dict)
    hangs: Dict[str, int] = field(default_factory=dict)
    poisons: Dict[str, int] = field(default_factory=dict)
    delays: Dict[str, float] = field(default_factory=dict)
    kill_after_checkpoints: int = 2
    corrupt_checkpoints: Dict[str, int] = field(default_factory=dict)
    server_kills: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        for name in ("crashes", "kills", "hangs", "poisons", "delays",
                     "corrupt_checkpoints", "server_kills"):
            object.__setattr__(self, name, dict(getattr(self, name)))

    def action(self, job_id: str, attempt: int) -> Optional[str]:
        """The scripted worker fault for this (job, attempt), or None.

        ``delays`` are not returned here -- they are a server-side
        response action, read via :meth:`delay`.
        """
        if attempt < self.crashes.get(job_id, 0):
            return CRASH
        if attempt < self.kills.get(job_id, 0):
            return KILL_MIDJOB
        if attempt < self.hangs.get(job_id, 0):
            return HANG
        if attempt < self.poisons.get(job_id, 0):
            return POISON
        return None

    def delay(self, job_id: str) -> float:
        """Seconds the server should stall before replying to *job*."""
        return self.delays.get(job_id, 0.0)

    def corrupts_checkpoint(self, job_id: str, attempt: int) -> bool:
        """Should this attempt corrupt its checkpoint blobs?"""
        return attempt < self.corrupt_checkpoints.get(job_id, 0)

    def kills_server(self, job_id: str) -> bool:
        """Should the server die after journaling *job*'s admission?"""
        return self.server_kills.get(job_id, 0) > 0

    @classmethod
    def from_dict(cls, payload: Dict) -> "ServiceFaultPlan":
        """Build a plan from a JSON-shaped dict (CLI ``--fault-plan``).

        Unknown keys raise: a chaos plan that silently drops actions
        would make CI green for the wrong reason.
        """
        known = {"crashes", "kills", "hangs", "poisons", "delays",
                 "kill_after_checkpoints", "corrupt_checkpoints",
                 "server_kills"}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown ServiceFaultPlan keys "
                             f"{sorted(extra)}")
        return cls(**payload)


def execute_fault(action: str, index: int, channel) -> None:
    """Carry out *action* inside a worker process.

    ``crash`` and ``hang`` never return.  ``garbage`` sends a corrupt
    payload over *channel* (the worker's result pipe) and returns (the
    worker then exits normally, as a confused-but-alive engine would).
    """
    if action == CRASH:
        # _exit, not sys.exit: no finally blocks, no pipe flushing --
        # indistinguishable from a hard native crash.
        os._exit(17)
    elif action == HANG:
        while True:           # pragma: no cover - killed externally
            time.sleep(0.05)
    elif action == GARBAGE:
        # Wrong arity AND a bogus status: must fail payload
        # validation, never parse as a real verdict.
        channel.send(("garbage", index, "NOT_A_STATUS"))
    elif action == FALSE_UNSAT:
        # A perfectly well-formed lie: passes payload validation, so
        # only a proof audit (supervisor proof_dir) can reject it.
        channel.send((index, 0, "UNSATISFIABLE", None, {}))
    else:
        raise ValueError(f"unknown fault action {action!r}")
