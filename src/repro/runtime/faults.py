"""Deterministic fault injection for portfolio workers.

The supervisor's recovery paths (crash respawn, hang detection,
garbage rejection) are unreachable in a healthy run, so CI could never
exercise them.  A :class:`FaultPlan` travels to each worker process
(it is a frozen, picklable value object) and tells the worker to
misbehave in a prescribed, reproducible way:

* **crash** -- die via ``os._exit`` with no result, as a segfaulting
  or OOM-killed engine would;
* **hang** -- spin forever without heartbeating, as a livelocked or
  deadlocked engine would;
* **garbage** -- report a malformed or false payload (bad status
  name, non-model "model"), as a corrupted engine would;
* **false_unsat** -- report a well-formed UNSATISFIABLE verdict
  without having solved (and so without a proof), as a buggy engine
  would.  Under a certifying supervisor (``proof_dir`` set) this must
  be caught by the proof check and degraded to ``DISCREPANT``; an
  uncertified race has no defence against it, which is the point.

Faults are keyed by ``(worker index, attempt)`` so a plan can say
"worker 2 crashes on its first two attempts, then behaves", which is
exactly the shape supervisor tests need: forced failures followed by a
verifiable recovery.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

#: Fault kinds understood by :meth:`FaultPlan.action`.
CRASH = "crash"
HANG = "hang"
GARBAGE = "garbage"
FALSE_UNSAT = "false_unsat"


@dataclass(frozen=True)
class FaultPlan:
    """Scripted misbehaviour per (worker index, attempt).

    Parameters
    ----------
    crashes:
        worker index -> number of leading attempts that crash.
        ``{1: 2}`` crashes worker 1 on attempts 0 and 1; attempt 2
        runs normally.
    hangs:
        worker indices that hang on **every** attempt (a hung worker
        is terminated, not respawned, so one entry is enough).
    garbage:
        worker index -> number of leading attempts that return a
        corrupt payload instead of solving.
    false_unsat:
        worker index -> number of leading attempts that claim
        UNSATISFIABLE without solving (and without writing a proof).
    """

    crashes: Dict[int, int] = field(default_factory=dict)
    hangs: FrozenSet[int] = field(default_factory=frozenset)
    garbage: Dict[int, int] = field(default_factory=dict)
    false_unsat: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        # Normalize so equal plans compare/pickle identically.
        object.__setattr__(self, "crashes", dict(self.crashes))
        object.__setattr__(self, "hangs", frozenset(self.hangs))
        object.__setattr__(self, "garbage", dict(self.garbage))
        object.__setattr__(self, "false_unsat", dict(self.false_unsat))

    def action(self, index: int, attempt: int) -> Optional[str]:
        """The scripted fault for this (worker, attempt), or None."""
        if index in self.hangs:
            return HANG
        if attempt < self.crashes.get(index, 0):
            return CRASH
        if attempt < self.garbage.get(index, 0):
            return GARBAGE
        if attempt < self.false_unsat.get(index, 0):
            return FALSE_UNSAT
        return None

    @classmethod
    def crash_all_once(cls, num_workers: int) -> "FaultPlan":
        """Every worker crashes on its first attempt, then recovers --
        the canonical supervisor-respawn scenario."""
        return cls(crashes={index: 1 for index in range(num_workers)})

    @classmethod
    def hang_all(cls, num_workers: int) -> "FaultPlan":
        """Every worker hangs -- the canonical deadline scenario."""
        return cls(hangs=frozenset(range(num_workers)))


def execute_fault(action: str, index: int, channel) -> None:
    """Carry out *action* inside a worker process.

    ``crash`` and ``hang`` never return.  ``garbage`` sends a corrupt
    payload over *channel* (the worker's result pipe) and returns (the
    worker then exits normally, as a confused-but-alive engine would).
    """
    if action == CRASH:
        # _exit, not sys.exit: no finally blocks, no pipe flushing --
        # indistinguishable from a hard native crash.
        os._exit(17)
    elif action == HANG:
        while True:           # pragma: no cover - killed externally
            time.sleep(0.05)
    elif action == GARBAGE:
        # Wrong arity AND a bogus status: must fail payload
        # validation, never parse as a real verdict.
        channel.send(("garbage", index, "NOT_A_STATUS"))
    elif action == FALSE_UNSAT:
        # A perfectly well-formed lie: passes payload validation, so
        # only a proof audit (supervisor proof_dir) can reject it.
        channel.send((index, 0, "UNSATISFIABLE", None, {}))
    else:
        raise ValueError(f"unknown fault action {action!r}")
