"""Serializable CDCL search-state checkpoints (crash recovery).

A supervised portfolio worker or service attempt that dies mid-solve
takes its learned clauses with it; the retry restarts cold and
re-derives everything (DESIGN.md, "Crash recovery").  This module
defines the transferable part of a CDCL attempt's search state:

* :class:`SearchCheckpoint` -- learned clauses in derivation order
  (with LBD and arena activity), pending unit implicates, saved
  phases, heuristic activities, and the restart/conflict counters of
  the attempt that exported it;
* a checksummed wire format (:meth:`SearchCheckpoint.serialize` /
  :func:`load_checkpoint`): a magic+digest header over a canonical
  JSON body, so a truncated or corrupted blob is *rejected by the
  loader* -- consumers fall back to a cold restart, they never crash;
* :func:`filter_rup_imports` -- the proof-validity gate: imported
  clauses are admitted only if RUP with respect to the formula plus
  the imports before them (checked with the independent checker's own
  propagation), which is precisely the condition under which the
  resumed attempt's DRUP proof (imported prefix + new derivations)
  passes the forward checker unchanged.

What is deliberately NOT checkpointed: the trail and assignment stack
(rebuilt by propagation), watch lists and antecedents (rebuilt by
attach), BCP backend state, the budget meter, and the inprocessor's
model-reconstruction stack.  Only state that is (a) expensive to
re-derive and (b) sound to replay against the *original* formula
crosses the process boundary; everything else is reconstructed from
the formula itself.  See DESIGN.md, "Checkpoint proof validity".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Wire-format magic; bump the digit on incompatible payload changes
#: (the loader rejects unknown versions -- old blobs demote to cold
#: restarts instead of being misread).
CHECKPOINT_MAGIC = b"repro-ckpt1"

#: Default cap on exported learned clauses.  The *prefix* of the
#: derivation order is kept when trimming: later clauses may be RUP
#: only thanks to earlier ones, so dropping from the tail never
#: weakens the importability of what remains.
DEFAULT_MAX_CLAUSES = 512

#: Default cap on the serialized blob a worker piggybacks on its
#: progress pipe.  Export degrades (fewer clauses), then skips the
#: send entirely, rather than flooding the channel.
DEFAULT_MAX_BLOB_BYTES = 1 << 18


class CheckpointError(ValueError):
    """A checkpoint blob failed checksum or structural validation."""


@dataclass
class SearchCheckpoint:
    """The transferable search state of one CDCL attempt.

    ``clauses`` holds ``(literals, lbd, activity)`` triples in
    *derivation order* -- the order the attempt attached them, which
    is the order a resumed attempt re-attaches them and the order
    their add lines appear in the resumed proof's prefix.
    """

    num_vars: int = 0
    clauses: List[Tuple[List[int], int, float]] = field(
        default_factory=list)
    #: Unit implicates (pending root-level assignments), derivation
    #: order.  Input units reappear here; the importer deduplicates.
    units: List[int] = field(default_factory=list)
    #: var -> last assigned polarity (phase saving).
    phases: Dict[int, bool] = field(default_factory=dict)
    #: literal -> heuristic activity, normalized so max == 1.0 (scale
    #: invariant; keeps fresh bumps competitive after a resume).
    activities: Dict[int, float] = field(default_factory=dict)
    #: Effort counters of the exporting attempt (reporting/accounting
    #: only -- a resumed attempt starts its own counters at zero).
    conflicts: int = 0
    restarts: int = 0

    # -- serialization --------------------------------------------

    def _payload(self) -> Dict[str, Any]:
        return {
            "num_vars": self.num_vars,
            "clauses": [[list(lits), lbd, act]
                        for lits, lbd, act in self.clauses],
            "units": list(self.units),
            "phases": {str(var): bool(pol)
                       for var, pol in self.phases.items()},
            "activities": {str(lit): float(score)
                           for lit, score in self.activities.items()},
            "conflicts": self.conflicts,
            "restarts": self.restarts,
        }

    def serialize(self) -> bytes:
        """Checksummed wire form: ``magic digest body``.

        The digest covers the canonical (sorted, compact) JSON body,
        so any bit flip or truncation fails :func:`load_checkpoint`.
        """
        body = json.dumps(self._payload(), sort_keys=True,
                          separators=(",", ":")).encode("ascii")
        digest = hashlib.sha256(body).hexdigest()[:16].encode("ascii")
        return CHECKPOINT_MAGIC + b" " + digest + b" " + body

    def serialize_bounded(
            self, max_bytes: int = DEFAULT_MAX_BLOB_BYTES
    ) -> Optional[bytes]:
        """Serialize, shedding learned clauses from the *tail* of the
        derivation order until the blob fits *max_bytes*; None when
        even a clause-free checkpoint is too large (give up and skip
        this export rather than block the pipe)."""
        keep = len(self.clauses)
        while True:
            candidate = self if keep == len(self.clauses) \
                else self.trimmed(keep)
            blob = candidate.serialize()
            if len(blob) <= max_bytes:
                return blob
            if keep == 0:
                return None
            keep //= 2

    def trimmed(self, max_clauses: int) -> "SearchCheckpoint":
        """A copy keeping at most the first *max_clauses* learned
        clauses (derivation-order prefix, see DEFAULT_MAX_CLAUSES)."""
        return SearchCheckpoint(
            num_vars=self.num_vars,
            clauses=list(self.clauses[:max_clauses]),
            units=list(self.units),
            phases=dict(self.phases),
            activities=dict(self.activities),
            conflicts=self.conflicts,
            restarts=self.restarts)


def _require_int(value: Any, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise CheckpointError(f"{what} must be an int")
    return value


def _parse_lits(value: Any, what: str) -> List[int]:
    if not isinstance(value, list) or not value:
        raise CheckpointError(f"{what} must be a non-empty list")
    lits: List[int] = []
    for lit in value:
        if _require_int(lit, f"{what} literal") == 0:
            raise CheckpointError(f"{what} contains literal 0")
        lits.append(lit)
    if len(set(lits)) != len(lits):
        raise CheckpointError(f"{what} repeats a literal")
    return lits


def load_checkpoint(blob: bytes) -> SearchCheckpoint:
    """Parse a :meth:`SearchCheckpoint.serialize` blob, raising
    :class:`CheckpointError` on *any* corruption: bad magic, digest
    mismatch (truncation, bit flips), malformed JSON, or a payload
    that fails structural validation.  Callers on the retry path use
    :func:`try_load_checkpoint` and treat None as "restart cold"."""
    if not isinstance(blob, (bytes, bytearray)):
        raise CheckpointError("checkpoint blob must be bytes")
    parts = bytes(blob).split(b" ", 2)
    if len(parts) != 3 or parts[0] != CHECKPOINT_MAGIC:
        raise CheckpointError("bad checkpoint magic")
    digest, body = parts[1], parts[2]
    expected = hashlib.sha256(body).hexdigest()[:16].encode("ascii")
    if digest != expected:
        raise CheckpointError("checkpoint digest mismatch")
    try:
        payload = json.loads(body.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unparseable checkpoint body: {exc}")
    if not isinstance(payload, dict):
        raise CheckpointError("checkpoint body is not an object")

    num_vars = _require_int(payload.get("num_vars"), "num_vars")
    if num_vars < 0:
        raise CheckpointError("num_vars must be >= 0")
    raw_clauses = payload.get("clauses")
    if not isinstance(raw_clauses, list):
        raise CheckpointError("clauses must be a list")
    clauses: List[Tuple[List[int], int, float]] = []
    for entry in raw_clauses:
        if not isinstance(entry, list) or len(entry) != 3:
            raise CheckpointError("clause entry must be [lits, lbd, act]")
        lits = _parse_lits(entry[0], "clause")
        lbd = _require_int(entry[1], "lbd")
        if lbd < 0:
            raise CheckpointError("lbd must be >= 0")
        act = entry[2]
        if isinstance(act, bool) or not isinstance(act, (int, float)):
            raise CheckpointError("activity must be a number")
        clauses.append((lits, lbd, float(act)))
    raw_units = payload.get("units")
    if not isinstance(raw_units, list):
        raise CheckpointError("units must be a list")
    units = [u for u in raw_units
             if _require_int(u, "unit") != 0] if raw_units else []
    if len(units) != len(raw_units):
        raise CheckpointError("units contains literal 0")
    raw_phases = payload.get("phases")
    if not isinstance(raw_phases, dict):
        raise CheckpointError("phases must be an object")
    phases: Dict[int, bool] = {}
    for key, pol in raw_phases.items():
        try:
            var = int(key)
        except ValueError:
            raise CheckpointError(f"bad phase variable {key!r}")
        if var <= 0 or not isinstance(pol, bool):
            raise CheckpointError("phases map positive vars to bools")
        phases[var] = pol
    raw_acts = payload.get("activities")
    if not isinstance(raw_acts, dict):
        raise CheckpointError("activities must be an object")
    activities: Dict[int, float] = {}
    for key, score in raw_acts.items():
        try:
            lit = int(key)
        except ValueError:
            raise CheckpointError(f"bad activity literal {key!r}")
        if lit == 0 or isinstance(score, bool) \
                or not isinstance(score, (int, float)):
            raise CheckpointError("activities map literals to numbers")
        activities[lit] = float(score)
    conflicts = _require_int(payload.get("conflicts"), "conflicts")
    restarts = _require_int(payload.get("restarts"), "restarts")
    if conflicts < 0 or restarts < 0:
        raise CheckpointError("counters must be >= 0")
    return SearchCheckpoint(num_vars=num_vars, clauses=clauses,
                            units=units, phases=phases,
                            activities=activities,
                            conflicts=conflicts, restarts=restarts)


def try_load_checkpoint(blob: Optional[bytes]) -> \
        Optional[SearchCheckpoint]:
    """:func:`load_checkpoint`, but None (cold restart) on any
    corruption instead of an exception -- the retry-path contract."""
    if blob is None:
        return None
    try:
        return load_checkpoint(blob)
    except CheckpointError:
        return None


def filter_rup_imports(
        formula, checkpoint: SearchCheckpoint
) -> Tuple[List[Tuple[List[int], int, float]], List[int], int]:
    """Split a checkpoint's clauses into importable and dropped.

    Returns ``(clauses, units, dropped)`` where each admitted clause /
    unit is RUP with respect to *formula* plus the admissions before
    it (checked with the independent checker's propagation, see
    :class:`repro.verify.checker.RupDatabase`).  Clauses referencing
    variables beyond ``formula.num_vars`` are dropped too.  Dropping
    cascades naturally: a clause whose support was dropped fails its
    own check.
    """
    # Local import: repro.verify's package init pulls in the solver
    # stack, which imports this module.
    from repro.verify.checker import RupDatabase

    database = RupDatabase(formula)
    num_vars = getattr(formula, "num_vars", checkpoint.num_vars)
    clauses: List[Tuple[List[int], int, float]] = []
    units: List[int] = []
    dropped = 0
    for lits, lbd, act in checkpoint.clauses:
        if any(abs(lit) > num_vars for lit in lits) \
                or not database.admit(lits):
            dropped += 1
            continue
        if len(lits) == 1:
            units.append(lits[0])
        else:
            clauses.append((lits, lbd, act))
    for lit in checkpoint.units:
        if abs(lit) > num_vars or not database.admit([lit]):
            dropped += 1
            continue
        units.append(lit)
    return clauses, units, dropped
