"""Resource governance and fault tolerance (``repro.runtime``).

Production EDA flows call SAT engines under strict effort envelopes:
an ATPG run gets seconds per fault, an LEC regression gets a global
wall-clock budget, and a portfolio race must survive workers that
crash or hang.  This package provides the runtime layer those flows
need:

* :mod:`repro.runtime.budget` -- the :class:`Budget` value object
  (deadline, counter caps, soft memory ceiling) and the amortised
  cooperative-checkpoint :class:`BudgetMeter` every engine consults;
* :mod:`repro.runtime.supervisor` -- the portfolio
  :class:`Supervisor`: heartbeat liveness, crash respawn with
  exponential backoff, hung-worker termination, payload auditing, and
  the per-worker :class:`PortfolioReport`;
* :mod:`repro.runtime.faults` -- deterministic fault injection
  (:class:`FaultPlan`) so the recovery paths are testable in CI.
"""

from repro.runtime.budget import (
    Budget,
    BudgetMeter,
    DEFAULT_CHECK_INTERVAL,
    merge_legacy_caps,
    process_rss_mb,
)
from repro.runtime.faults import FaultPlan, ServiceFaultPlan
from repro.runtime.supervisor import (
    PortfolioReport,
    Supervisor,
    WorkerOutcome,
    WorkerReport,
)

__all__ = [
    "Budget",
    "BudgetMeter",
    "DEFAULT_CHECK_INTERVAL",
    "FaultPlan",
    "PortfolioReport",
    "ServiceFaultPlan",
    "Supervisor",
    "WorkerOutcome",
    "WorkerReport",
    "merge_legacy_caps",
    "process_rss_mb",
]
