"""Unified effort budgets and the cooperative checkpoint API.

Every engine in the library (CDCL, DPLL, local search, incremental,
recursive learning) historically grew its own ad-hoc effort caps
(``max_conflicts``, ``max_flips``, ...).  This module replaces that
plumbing with one :class:`Budget` value object -- wall-clock deadline,
search-counter caps, and a soft memory ceiling -- and one
:class:`BudgetMeter` that engines consult cooperatively.

The paper's Section 4 engines return UNKNOWN when an effort budget is
exhausted; production EDA flows (hardness estimation for LEC, the
VLSAT suites) additionally require *wall-clock* budgets that are
actually enforced.  The design constraint is that enforcement must be
nearly free on the solver hot path:

* counter caps are plain integer comparisons against
  :class:`~repro.solvers.result.SolverStats`, taken relative to a
  baseline snapshot so budgets are per-call even on persistent
  (incremental) engines;
* deadline and memory probes are *amortised*: engines report work via
  :meth:`BudgetMeter.spend` (typically once per ``_propagate`` call,
  with the propagation count as the cost) and the meter only touches
  ``time.monotonic()`` / ``getrusage`` every ``check_interval`` units
  of spent work.  With no wall/memory constraint configured the spend
  path is a single attribute test (see DESIGN.md, "Cooperative
  checkpoints").

The meter also carries an optional ``on_checkpoint`` callback fired at
every amortised probe; the portfolio :mod:`supervisor
<repro.runtime.supervisor>` uses it as a worker heartbeat.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

from repro.solvers.result import SolverStats

#: Work units (roughly: propagations) between wall-clock/memory probes.
#: Large enough that the probe syscalls vanish in the noise, small
#: enough that deadlines are honoured within a few milliseconds.
DEFAULT_CHECK_INTERVAL = 4096


def process_rss_mb() -> Optional[float]:
    """High-water resident-set size of this process in MiB.

    Returns ``None`` where ``getrusage`` is unavailable.  Linux
    reports ``ru_maxrss`` in KiB; macOS in bytes -- both are scaled.
    """
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if peak > 1 << 32:          # plausibly bytes (macOS)
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


@dataclass(frozen=True)
class Budget:
    """An effort envelope for one solve call.

    All limits are optional; ``Budget()`` is unlimited.  Counter caps
    are interpreted *relative to the start of the call* (a persistent
    incremental engine with 1e6 historical conflicts still gets the
    full ``max_conflicts`` for the next query).

    Parameters
    ----------
    wall_seconds:
        wall-clock deadline for the call.
    max_conflicts, max_decisions, max_flips:
        search-effort caps (flips apply to local search).
    max_memory_mb:
        soft ceiling on the process high-water RSS; exceeding it stops
        the search with UNKNOWN rather than risking the OOM killer.
        "Soft" because Python frees nothing back to the OS -- this
        detects runaway growth, it cannot undo it.
    """

    wall_seconds: Optional[float] = None
    max_conflicts: Optional[int] = None
    max_decisions: Optional[int] = None
    max_flips: Optional[int] = None
    max_memory_mb: Optional[float] = None

    def __post_init__(self):
        for name in ("wall_seconds", "max_conflicts", "max_decisions",
                     "max_flips", "max_memory_mb"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")

    @property
    def unlimited(self) -> bool:
        """True when no limit at all is configured."""
        return (self.wall_seconds is None and self.max_conflicts is None
                and self.max_decisions is None and self.max_flips is None
                and self.max_memory_mb is None)

    def remaining_after(self, elapsed: float,
                        spent: Optional[SolverStats] = None) -> "Budget":
        """The budget left once *elapsed* wall seconds were consumed.

        The deadline shrinks by *elapsed* (never below zero); with
        *spent* -- the search counters a previous attempt already
        burned -- the counter caps shrink too, so a retried or
        respawned call can never spend more total effort than the
        caller's original envelope.  The memory ceiling passes through
        unchanged (RSS is a reading, not an allowance).  Used to hand
        the tail of an app-level budget to the next solver call and to
        respawn/retry paths (portfolio supervisor, solve service).
        """
        if self.wall_seconds is None and spent is None:
            return self

        def shrink(cap: Optional[int], used: int) -> Optional[int]:
            if cap is None:
                return None
            return max(0, cap - max(0, used))

        conflicts = decisions = flips = 0
        if spent is not None:
            conflicts = spent.conflicts
            decisions = spent.decisions
            flips = spent.flips
        wall = self.wall_seconds
        if wall is not None:
            wall = max(0.0, wall - elapsed)
        return Budget(wall_seconds=wall,
                      max_conflicts=shrink(self.max_conflicts, conflicts),
                      max_decisions=shrink(self.max_decisions, decisions),
                      max_flips=shrink(self.max_flips, flips),
                      max_memory_mb=self.max_memory_mb)

    @property
    def exhausted(self) -> bool:
        """True when some configured limit has already hit zero --
        a call started under this budget can only return UNKNOWN, so
        retry loops should stop scheduling instead."""
        return (self.wall_seconds == 0.0 or self.max_conflicts == 0
                or self.max_decisions == 0 or self.max_flips == 0)

    def meter(self, baseline: Optional[SolverStats] = None,
              on_checkpoint: Optional[Callable[[], None]] = None,
              check_interval: int = DEFAULT_CHECK_INTERVAL
              ) -> "BudgetMeter":
        """Start the clock: a :class:`BudgetMeter` bound to this
        budget, with counters measured relative to *baseline*."""
        return BudgetMeter(self, baseline=baseline,
                           on_checkpoint=on_checkpoint,
                           check_interval=check_interval)


class BudgetMeter:
    """Runtime enforcement of one :class:`Budget` (one solve call).

    Engines interact with the meter in two ways:

    * ``spend(cost)`` from the hot path -- amortised; probes the
      wall clock / memory and fires the heartbeat callback only every
      ``check_interval`` units of cost.  Sets :attr:`stop_reason`
      when the deadline or memory ceiling is hit.
    * ``blown(stats)`` from the control loop (per conflict/decision)
      -- cheap counter comparisons plus the latched stop flag.
    """

    __slots__ = ("budget", "started", "deadline", "stop_reason",
                 "on_checkpoint", "check_interval", "_countdown",
                 "_active", "_base_conflicts", "_base_decisions",
                 "_base_flips")

    def __init__(self, budget: Budget,
                 baseline: Optional[SolverStats] = None,
                 on_checkpoint: Optional[Callable[[], None]] = None,
                 check_interval: int = DEFAULT_CHECK_INTERVAL):
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.budget = budget
        self.started = time.monotonic()
        self.deadline = (None if budget.wall_seconds is None
                         else self.started + budget.wall_seconds)
        self.stop_reason: Optional[str] = None
        self.on_checkpoint = on_checkpoint
        self.check_interval = check_interval
        self._countdown = check_interval
        # The spend() fast path degenerates to `if not self._active`
        # when nothing time- or memory-shaped needs watching.
        self._active = (self.deadline is not None
                        or budget.max_memory_mb is not None
                        or on_checkpoint is not None)
        self._base_conflicts = baseline.conflicts if baseline else 0
        self._base_decisions = baseline.decisions if baseline else 0
        self._base_flips = baseline.flips if baseline else 0

    # -- hot path ------------------------------------------------------

    def spend(self, cost: int = 1) -> bool:
        """Report *cost* units of work; True once the budget is blown.

        Amortised: only every ``check_interval`` units does it probe
        the wall clock and memory and fire the heartbeat callback.
        """
        if not self._active:
            return False
        self._countdown -= cost
        if self._countdown > 0:
            return self.stop_reason is not None
        self._countdown = self.check_interval
        return self._probe()

    def _probe(self) -> bool:
        """The unamortised check: deadline, memory, heartbeat."""
        if self.on_checkpoint is not None:
            self.on_checkpoint()
        if self.stop_reason is not None:
            return True
        if (self.deadline is not None
                and time.monotonic() >= self.deadline):
            self.stop_reason = "deadline"
            return True
        ceiling = self.budget.max_memory_mb
        if ceiling is not None:
            rss = process_rss_mb()
            if rss is not None and rss > ceiling:
                self.stop_reason = "memory"
                return True
        return False

    # -- control loop --------------------------------------------------

    def over_counters(self, stats: SolverStats) -> bool:
        """Have the (baseline-relative) counter caps been reached?"""
        budget = self.budget
        if (budget.max_conflicts is not None
                and stats.conflicts - self._base_conflicts
                >= budget.max_conflicts):
            return True
        if (budget.max_decisions is not None
                and stats.decisions - self._base_decisions
                >= budget.max_decisions):
            return True
        if (budget.max_flips is not None
                and stats.flips - self._base_flips >= budget.max_flips):
            return True
        return False

    def blown(self, stats: SolverStats) -> bool:
        """Full budget test (counters + latched deadline/memory stop).

        Also performs an unamortised probe when a deadline or memory
        ceiling exists but no work has been spent recently -- so
        engines that stall without propagating still time out.
        """
        if self.stop_reason is not None:
            return True
        if self.over_counters(stats):
            self.stop_reason = "counters"
            return True
        if (self.deadline is not None
                or self.budget.max_memory_mb is not None):
            return self._probe()
        return False

    def expired(self) -> bool:
        """Deadline/memory-only test for app-level control loops
        (ATPG fault lists, BMC depth sweeps) that have no
        :class:`SolverStats` of their own."""
        if self.stop_reason is not None:
            return True
        if (self.deadline is None
                and self.budget.max_memory_mb is None):
            return False
        return self._probe()

    @property
    def elapsed(self) -> float:
        """Wall seconds since the meter started."""
        return time.monotonic() - self.started

    def remaining_budget(self) -> Budget:
        """The unspent tail of the budget (deadline shrunk)."""
        return self.budget.remaining_after(self.elapsed)


def merge_legacy_caps(budget: Optional[Budget],
                      max_conflicts: Optional[int] = None,
                      max_decisions: Optional[int] = None,
                      max_flips: Optional[int] = None
                      ) -> Optional[Budget]:
    """Fold pre-runtime keyword caps into a :class:`Budget`.

    Engines keep their historical ``max_conflicts=``-style keywords
    for compatibility; this combines them with an optional explicit
    budget, taking the tighter cap where both specify one.  Returns
    ``None`` when nothing is limited (the engine can then skip meter
    creation entirely).
    """
    if budget is None:
        if (max_conflicts is None and max_decisions is None
                and max_flips is None):
            return None
        return Budget(max_conflicts=max_conflicts,
                      max_decisions=max_decisions, max_flips=max_flips)

    def tighter(a: Optional[int], b: Optional[int]) -> Optional[int]:
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)

    return Budget(
        wall_seconds=budget.wall_seconds,
        max_conflicts=tighter(budget.max_conflicts, max_conflicts),
        max_decisions=tighter(budget.max_decisions, max_decisions),
        max_flips=tighter(budget.max_flips, max_flips),
        max_memory_mb=budget.max_memory_mb)
