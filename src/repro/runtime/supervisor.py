"""Supervised parallel portfolio: heartbeats, respawn, verdict audit.

The PR-1 portfolio raced worker processes and silently dropped any
that died: a crashed worker just never reported, a hung worker pinned
a core until the race ended, and a corrupted payload could have been
believed.  This module wraps the race in a :class:`Supervisor` that

* tracks per-worker liveness through **heartbeats** written from the
  solvers' cooperative checkpoints (see :mod:`repro.runtime.budget`),
  so a worker that stops making progress is distinguishable from one
  that is merely slow;
* **respawns crashed workers** with bounded retries and exponential
  backoff, so a transient failure (OOM kill, interpreter abort) does
  not forfeit that configuration's diversity;
* **terminates hung workers** once their heartbeat goes stale past
  ``hang_timeout`` and records them as ``TIMED_OUT``;
* **audits payloads** -- malformed tuples, unknown status names and
  SAT claims whose model does not satisfy the formula are rejected
  and treated as crashes (the worker clearly can't be trusted);
* **audits UNSAT claims** when a ``proof_dir`` is configured: each
  worker streams a DRUP proof to a per-attempt file, and a worker
  claiming UNSAT must pass the independent checker
  (:mod:`repro.verify.checker`) before the race settles; on check
  failure the slot degrades to ``DISCREPANT`` and the race continues
  -- the UNSAT mirror of the SAT model audit;
* enforces the race-wide wall-clock **deadline** from the
  :class:`~repro.runtime.budget.Budget`, cancelling everything still
  running when it expires;
* returns a structured :class:`PortfolioReport` naming every worker's
  fate instead of only the winner.

Fault injection (:mod:`repro.runtime.faults`) makes all of these
paths deterministically reachable from tests.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from enum import Enum
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import try_load_checkpoint
from repro.runtime.faults import (KILL_MIDJOB, FaultPlan, corrupt_blob,
                                  execute_fault)
from repro.solvers.result import SolverResult, SolverStats, Status

#: Grace period between observing a worker's death and declaring it
#: crashed: its final payload may still be buffered in its pipe and
#: not yet drained by the supervisor loop.
#:
#: Results travel over one dedicated pipe per worker, NOT a shared
#: multiprocessing.Queue: terminating a worker while it holds a shared
#: queue's write lock would poison the queue and deadlock every other
#: worker's put().  With per-worker pipes a kill can only ever corrupt
#: the victim's own channel.
_DEATH_GRACE = 0.25


class WorkerOutcome(Enum):
    """Terminal state of one portfolio worker."""

    SAT = "SAT"                   # reported a (verified) model
    UNSAT = "UNSAT"               # reported unsatisfiability
    UNKNOWN = "UNKNOWN"           # exhausted its own budget
    CRASHED = "CRASHED"           # died without a trustworthy result
    TIMED_OUT = "TIMED_OUT"       # hung or overran the deadline
    CANCELLED = "CANCELLED"       # healthy, lost the race
    DISCREPANT = "DISCREPANT"     # claimed UNSAT, proof check failed


@dataclass
class WorkerReport:
    """One worker's fate across all of its attempts."""

    index: int
    name: str
    outcome: WorkerOutcome
    attempts: int = 1             # spawns, including respawns
    stats: Optional[SolverStats] = None
    wall_seconds: float = 0.0
    #: Checker diagnostic when the outcome is ``DISCREPANT`` (the
    #: worker claimed UNSAT but its proof failed the independent
    #: check) -- e.g. ``"line 3: clause is not a RUP consequence..."``.
    discrepancy: Optional[str] = None
    #: Live progress samples relayed over the worker's pipe: dicts of
    #: ``{"attempt", "elapsed", "stats"}`` in arrival order, spanning
    #: every attempt (counters reset on respawn).
    timeline: List[Dict] = field(default_factory=list)


@dataclass
class PortfolioReport:
    """Structured outcome of a supervised race.

    ``result`` is the decisive verdict (or UNKNOWN); ``workers`` has
    one entry per configuration, so no failure is silent.
    """

    result: SolverResult
    workers: List[WorkerReport] = field(default_factory=list)
    winner: Optional[str] = None
    winner_index: Optional[int] = None
    wall_seconds: float = 0.0
    deadline_hit: bool = False
    total_respawns: int = 0

    @property
    def status(self) -> Status:
        return self.result.status

    def outcome_counts(self) -> Dict[WorkerOutcome, int]:
        """How many workers ended in each state."""
        counts: Dict[WorkerOutcome, int] = {}
        for report in self.workers:
            counts[report.outcome] = counts.get(report.outcome, 0) + 1
        return counts

    def effort_timelines(self) -> Dict[str, List[Dict]]:
        """Per-worker progress samples, keyed by configuration name.

        Each sample is ``{"attempt", "elapsed", "stats"}`` with the
        worker's cumulative counters at that moment -- the live view
        of where every configuration spent its effort.
        """
        return {report.name: list(report.timeline)
                for report in self.workers}

    def loss_summary(self) -> Dict[str, str]:
        """One "why did this worker lose" line per non-winning worker."""
        summary: Dict[str, str] = {}
        for report in self.workers:
            if (self.winner_index is not None
                    and report.index == self.winner_index):
                continue
            effort = ""
            stats = report.stats
            if stats is not None:
                effort = (f" after {stats.conflicts} conflicts / "
                          f"{stats.decisions} decisions")
            elif report.timeline:
                last = report.timeline[-1]
                s = last.get("stats", {})
                effort = (f" at {s.get('conflicts', 0)} conflicts / "
                          f"{s.get('decisions', 0)} decisions "
                          f"({last.get('elapsed', 0.0):.2f}s in)")
            if report.outcome is WorkerOutcome.CANCELLED:
                reason = ("still searching when the race was decided"
                          + effort)
            elif report.outcome is WorkerOutcome.UNKNOWN:
                reason = "exhausted its budget" + effort
            elif report.outcome is WorkerOutcome.CRASHED:
                reason = (f"crashed ({report.attempts} attempt(s), "
                          f"retries exhausted)" + effort)
            elif report.outcome is WorkerOutcome.TIMED_OUT:
                reason = "hung or overran the deadline" + effort
            elif report.outcome is WorkerOutcome.DISCREPANT:
                reason = ("claimed UNSAT but its proof failed the "
                          "independent check"
                          + (f" ({report.discrepancy})"
                             if report.discrepancy else "") + effort)
            else:
                reason = ("reached a decisive verdict" + effort
                          + " but a lower-index worker won the tie")
            summary[report.name] = reason
        return summary


def stats_to_dict(stats: SolverStats) -> Dict[str, float]:
    """Primitive (picklable) projection of every stats field.

    Delegates to :meth:`SolverStats.as_dict`, which iterates
    ``dataclasses.fields`` -- newly added counters can never be
    silently dropped at the worker-pipe boundary again.
    """
    return stats.as_dict()


def stats_from_dict(payload: Dict[str, float]) -> SolverStats:
    """Rebuild audited stats from a worker payload.

    Delegates to :meth:`SolverStats.from_dict`: unknown keys and
    wrong-typed values are dropped, never ``setattr``-ed.
    """
    return SolverStats.from_dict(payload)


def _worker_main(index: int, attempt: int,
                 clause_lits: List[Tuple[int, ...]], num_vars: int,
                 config, budget: Optional[Budget],
                 heartbeats, channel,
                 fault_plan: Optional[FaultPlan],
                 progress_interval: Optional[float] = None,
                 proof_path: Optional[str] = None,
                 resume_blob: Optional[bytes] = None) -> None:
    """Entry point of one supervised process (module-level: picklable).

    The formula travels as literal tuples; the verdict travels back as
    primitives over *channel*, this worker's private pipe end.
    Heartbeats are written through the solver's cooperative
    checkpoint, so a worker that stops propagating also stops
    heartbeating -- which is exactly what hang detection needs.  With a
    *progress_interval*, the same checkpoint also sends periodic
    ``("progress", index, attempt, elapsed, stats_dict)`` snapshots
    over the pipe -- the supervisor's live per-worker effort timeline --
    each followed by a ``("checkpoint", index, attempt, blob)``
    search-state snapshot (:mod:`repro.runtime.checkpoint`) the
    supervisor holds for warm respawns.

    *resume_blob* is the last such blob of this slot's previous
    attempt: loaded through the checksummed loader, a valid one seeds
    the solver (warm restart); a corrupt or truncated one demotes to a
    cold restart -- a bad checkpoint must never fail the retry.

    With a *proof_path* the worker streams a DRUP proof there while
    solving; the supervisor checks it before believing an UNSAT claim.
    A non-UNSAT outcome removes the (partial, useless) file.
    """
    kill_after: Optional[int] = None
    corrupting = False
    if fault_plan is not None:
        action = fault_plan.action(index, attempt)
        if action == KILL_MIDJOB:
            # Die mid-job, after the supervisor has seen progress and
            # piggybacked checkpoints (warm-respawn chaos scenario).
            kill_after = fault_plan.kill_after_checkpoints
        elif action is not None:
            execute_fault(action, index, channel)
            return                # garbage fault: reported, exit
        corrupting = fault_plan.corrupts_checkpoint(index, attempt)

    def beat() -> None:
        heartbeats[index] = time.monotonic()

    beat()
    started = time.monotonic()
    formula = CNFFormula(num_vars=num_vars, clauses=clause_lits)
    resume_from = try_load_checkpoint(resume_blob)
    build_kwargs = {} if resume_from is None \
        else {"resume_from": resume_from}
    solver = config.build_solver(formula, budget=budget, **build_kwargs)
    sink = None
    if proof_path is not None:
        from repro.verify.drat import FileProofSink, attach_proof_stream
        sink = attach_proof_stream(solver, FileProofSink(proof_path))
    if progress_interval is None:
        solver.on_checkpoint = beat
    else:
        last_sent = [started]
        sends = [0]

        def beat_and_report() -> None:
            now = time.monotonic()
            heartbeats[index] = now
            if now - last_sent[0] >= progress_interval:
                last_sent[0] = now
                arena = getattr(solver, "arena", None)
                if arena is not None:
                    # Sync the clause-arena high-water mark so live
                    # snapshots report occupancy (the engine itself
                    # only syncs it at GC time and at solve end).
                    solver.stats.arena_peak_lits = arena.peak_lits
                blob = None
                export = getattr(solver, "export_checkpoint", None)
                if export is not None:
                    blob = export().serialize_bounded()
                    if blob is not None and corrupting:
                        blob = corrupt_blob(blob)
                try:
                    channel.send(("progress", index, attempt,
                                  now - started,
                                  stats_to_dict(solver.stats)))
                    if blob is not None:
                        channel.send(("checkpoint", index, attempt,
                                      blob))
                except (BrokenPipeError, OSError):
                    pass          # supervisor gone; keep solving
                sends[0] += 1
                if kill_after is not None and sends[0] >= kill_after:
                    os._exit(23)  # scripted mid-job death
        solver.on_checkpoint = beat_and_report
    result = solver.solve()
    if sink is not None:
        sink.close()
        if result.status is not Status.UNSATISFIABLE:
            try:
                os.remove(proof_path)
            except OSError:
                pass
    beat()
    model = None
    if result.assignment is not None:
        model = {var: result.assignment.value_of(var)
                 for var in result.assignment.assigned_variables()}
    channel.send((index, attempt, result.status.name, model,
                  stats_to_dict(result.stats)))
    channel.close()


class _Slot:
    """Mutable supervisor-side state of one configuration."""

    __slots__ = ("index", "config", "proc", "conn", "attempts",
                 "outcome", "result", "stats", "respawn_at", "died_at",
                 "spawned_at", "finished_at", "timeline", "traced_base",
                 "proof_path", "discrepancy", "last_checkpoint")

    def __init__(self, index: int, config):
        self.index = index
        self.config = config
        self.proc = None
        self.conn = None              # supervisor end of the pipe
        self.attempts = 0
        #: DRUP proof file of the *latest* attempt (proof_dir mode).
        self.proof_path: Optional[str] = None
        #: Checker diagnostic when the slot went DISCREPANT.
        self.discrepancy: Optional[str] = None
        #: Latest piggybacked checkpoint blob (verified only by the
        #: respawned worker's checksummed loader -- a corrupt blob
        #: demotes that respawn to a cold restart, see _worker_main).
        self.last_checkpoint: Optional[bytes] = None
        self.outcome: Optional[WorkerOutcome] = None
        self.result: Optional[SolverResult] = None
        self.stats: Optional[SolverStats] = None
        self.respawn_at: Optional[float] = None
        self.died_at: Optional[float] = None
        self.spawned_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        # Progress samples across every attempt (survives respawns).
        self.timeline: List[Dict] = []
        # (attempt, stats) of the last sample the tracer actually
        # emitted, so traced deltas stay sum-consistent under throttle.
        self.traced_base: Tuple[int, Dict] = (-1, {})

    @property
    def settled(self) -> bool:
        return self.outcome is not None


class Supervisor:
    """Run a portfolio race under full resource governance.

    Parameters
    ----------
    configs:
        portfolio configurations; each must provide ``name`` and
        ``build_solver(formula, budget=...)``
        (:class:`repro.solvers.portfolio.PortfolioConfig` does).
    budget:
        race-wide :class:`Budget`.  Its wall-clock deadline bounds the
        whole race; its counter caps are handed to every worker.
    max_retries:
        respawns allowed per configuration after crashes.
    backoff_seconds:
        base of the exponential respawn backoff: retry *k* waits
        ``backoff_seconds * 2**(k-1)``.
    hang_timeout:
        seconds of heartbeat silence after which a live worker is
        declared hung and terminated (``None`` disables detection).
    fault_plan:
        scripted misbehaviour for tests (:mod:`repro.runtime.faults`).
    poll_interval:
        supervisor wake-up period.
    progress_interval:
        seconds between a worker's live counter snapshots over its
        pipe (building the per-worker effort timelines); ``None``
        disables them and restores bare heartbeats.
    proof_dir:
        directory for per-attempt DRUP proof files.  When set, every
        worker streams its derivation there and an UNSAT claim is only
        believed after the independent checker validates the file; a
        failed check settles that slot as ``DISCREPANT`` while the
        race continues.  ``None`` (default) trusts UNSAT claims as
        before.
    tracer:
        optional :class:`repro.obs.trace.Tracer`: the race becomes a
        ``portfolio.race`` span with spawn/outcome events and
        per-worker progress relayed supervisor-side.
    """

    def __init__(self, configs: Sequence, *,
                 budget: Optional[Budget] = None,
                 max_retries: int = 2,
                 backoff_seconds: float = 0.1,
                 hang_timeout: Optional[float] = 10.0,
                 fault_plan: Optional[FaultPlan] = None,
                 poll_interval: float = 0.05,
                 progress_interval: Optional[float] = 0.25,
                 proof_dir: Optional[str] = None,
                 tracer=None):
        if not configs:
            raise ValueError("empty portfolio")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if progress_interval is not None and progress_interval < 0:
            raise ValueError("progress_interval must be >= 0")
        self.configs = list(configs)
        self.budget = budget or Budget()
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.hang_timeout = hang_timeout
        self.fault_plan = fault_plan
        self.poll_interval = poll_interval
        self.progress_interval = progress_interval
        self.proof_dir = proof_dir
        if proof_dir is not None:
            os.makedirs(proof_dir, exist_ok=True)
        self.tracer = tracer

    # ------------------------------------------------------------------

    def run(self, formula: CNFFormula) -> PortfolioReport:
        """Race the configurations on *formula* under supervision."""
        tracer = self.tracer
        if tracer is None:
            return self._run(formula)
        with tracer.span("portfolio.race", workers=len(self.configs),
                         num_vars=formula.num_vars,
                         num_clauses=len(formula.clauses)) as end:
            report = self._run(formula)
            end["status"] = report.result.status.value
            end["winner"] = report.winner
            end["respawns"] = report.total_respawns
            end["deadline_hit"] = report.deadline_hit
            return report

    def _run(self, formula: CNFFormula) -> PortfolioReport:
        started = time.monotonic()
        deadline = (None if self.budget.wall_seconds is None
                    else started + self.budget.wall_seconds)
        clause_lits = [tuple(clause) for clause in formula.clauses]
        ctx = multiprocessing.get_context()
        heartbeats = ctx.Array("d", len(self.configs))
        slots = [_Slot(index, config)
                 for index, config in enumerate(self.configs)]
        deadline_hit = False

        def spawn(slot: _Slot, now: float) -> None:
            # A respawn gets the *remaining* budget, never a fresh
            # one: the deadline shrinks by the race time already
            # elapsed, and the counter caps shrink by the effort the
            # slot's previous attempts demonstrably burned (their
            # last progress snapshots) -- retries can never spend
            # more total effort than the caller's original envelope.
            spent = _slot_spent(slot) if slot.attempts > 0 else None
            worker_budget = self.budget.remaining_after(
                now - started if deadline is not None else 0.0,
                spent=spent)
            # Respawns run a *perturbed* configuration: a config that
            # crashes deterministically would otherwise burn all its
            # backoff retries re-crashing identically.
            config = slot.config
            if slot.attempts > 0:
                perturbed = getattr(config, "perturbed", None)
                if perturbed is not None:
                    config = perturbed(slot.attempts)
            proof_path = None
            if self.proof_dir is not None:
                proof_path = os.path.join(
                    self.proof_dir,
                    f"worker{slot.index}-attempt{slot.attempts}.drup")
            slot.proof_path = proof_path
            # A fresh pipe per attempt: the previous one may hold the
            # torn remains of a killed sender.
            if slot.conn is not None:
                slot.conn.close()
            reader, writer = ctx.Pipe(duplex=False)
            slot.conn = reader
            proc = ctx.Process(
                target=_worker_main,
                args=(slot.index, slot.attempts, clause_lits,
                      formula.num_vars, config, worker_budget,
                      heartbeats, writer, self.fault_plan,
                      self.progress_interval, proof_path,
                      # Warm respawn: the previous attempt's last
                      # piggybacked search state (None on attempt 0).
                      slot.last_checkpoint),
                daemon=True)
            slot.attempts += 1
            slot.respawn_at = None
            slot.died_at = None
            slot.spawned_at = now
            heartbeats[slot.index] = now      # liveness until first beat
            slot.proc = proc
            proc.start()
            writer.close()    # keep only the worker's end open
            if self.tracer is not None:
                self.tracer.event("portfolio.spawn", worker=slot.index,
                                  config=slot.config.name,
                                  attempt=slot.attempts,
                                  seed=getattr(config, "seed", None))

        def record_payload(target: _Slot, payload, now: float) -> None:
            _index, status, model, stats = self._validate(payload,
                                                          clause_lits)
            if target.settled or target.result is not None:
                return                        # stale duplicate
            certificate = None
            if (status is Status.UNSATISFIABLE
                    and self.proof_dir is not None):
                # The UNSAT mirror of the SAT model audit: the claim
                # is only believed once the worker's streamed proof
                # passes the independent checker.  A missing or
                # invalid proof settles the slot as DISCREPANT and
                # the race continues without it.
                from repro.verify.certificate import check_unsat_proof
                certificate = check_unsat_proof(
                    formula, target.proof_path or "", self.tracer)
                if not certificate.valid:
                    target.outcome = WorkerOutcome.DISCREPANT
                    target.discrepancy = certificate.reason
                    target.stats = stats
                    target.finished_at = now
                    if self.tracer is not None:
                        self.tracer.event(
                            "portfolio.discrepant", worker=target.index,
                            config=target.config.name,
                            reason=certificate.reason
                            or "proof check failed")
                    return
            target.stats = stats
            target.finished_at = now
            assignment = Assignment(model) if model is not None else None
            target.result = SolverResult(status, assignment, stats,
                                         certificate=certificate)
            if status is Status.UNKNOWN:
                target.outcome = WorkerOutcome.UNKNOWN

        def reject_payload(target: _Slot, now: float) -> None:
            """A malformed/false payload: its sender can't be trusted.
            Treat exactly like a crash of that attempt."""
            if target.settled or target.result is not None:
                return
            if target.proc is not None and target.proc.is_alive():
                target.proc.terminate()
            target.died_at = now - _DEATH_GRACE   # fail it immediately
            self._handle_crash(target, now)

        try:
            now = time.monotonic()
            for slot in slots:
                spawn(slot, now)

            while True:
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    deadline_hit = True
                    break

                # Wait on every live worker's pipe, then decide.  The
                # sender of a payload is identified by its pipe, never
                # by the (untrusted) index inside the payload.
                watch = {slot.conn: slot for slot in slots
                         if slot.conn is not None and not slot.settled
                         and slot.result is None}
                timeout = self._poll(deadline, now)
                if watch:
                    ready = mp_connection.wait(list(watch), timeout)
                else:
                    time.sleep(timeout)       # awaiting respawns only
                    ready = []
                for conn in ready:
                    slot = watch[conn]
                    now = time.monotonic()
                    try:
                        if not conn.poll(0):
                            continue
                        payload = conn.recv()
                    except (EOFError, OSError):
                        # Sender gone, channel drained; liveness
                        # supervision decides crash vs. clean exit.
                        conn.close()
                        slot.conn = None
                        continue
                    if _is_checkpoint(payload):
                        # Piggybacked search state for warm respawns;
                        # shape-audited only -- checksum verification
                        # is the respawned loader's job.
                        if not self._record_checkpoint(slot, payload):
                            reject_payload(slot, now)
                    elif _is_progress(payload):
                        # Live effort snapshot, not a verdict; fold it
                        # into the timeline (or distrust the sender).
                        if not self._record_progress(slot, payload):
                            reject_payload(slot, now)
                    elif (self._payload_valid(payload, clause_lits)
                            and payload[0] == slot.index):
                        record_payload(slot, payload, now)
                    else:
                        reject_payload(slot, now)

                if any(s.result is not None
                       and s.result.status is not Status.UNKNOWN
                       for s in slots):
                    break                     # decisive verdict arrived

                now = time.monotonic()
                self._supervise(slots, spawn, heartbeats, now)
                if all(s.settled for s in slots):
                    break                     # nobody left to wait for
        finally:
            for slot in slots:
                if slot.proc is not None and slot.proc.is_alive():
                    slot.proc.terminate()
            for slot in slots:
                if slot.proc is not None:
                    slot.proc.join(timeout=5.0)
                    if slot.proc.is_alive():  # pragma: no cover
                        slot.proc.kill()
                        slot.proc.join(timeout=5.0)
                if slot.conn is not None:
                    slot.conn.close()
                    slot.conn = None

        return self._assemble(slots, started, deadline_hit)

    # ------------------------------------------------------------------

    def _poll(self, deadline: Optional[float], now: float) -> float:
        if deadline is None:
            return self.poll_interval
        return max(0.0, min(self.poll_interval, deadline - now))

    def _supervise(self, slots: List[_Slot], spawn, heartbeats,
                   now: float) -> None:
        """One pass of liveness checks: crashes, hangs, respawns."""
        for slot in slots:
            if slot.settled or slot.result is not None:
                continue
            if slot.respawn_at is not None:
                if now >= slot.respawn_at:
                    spawn(slot, now)
                continue
            proc = slot.proc
            if proc is None:
                continue
            if not proc.is_alive():
                # Possibly crashed -- but its result may still be
                # buffered in its pipe; allow a grace period so the
                # drain loop can read it before deciding.
                if slot.died_at is None:
                    slot.died_at = now
                elif now - slot.died_at >= _DEATH_GRACE:
                    self._handle_crash(slot, now)
                continue
            slot.died_at = None
            if (self.hang_timeout is not None
                    and now - heartbeats[slot.index] > self.hang_timeout):
                proc.terminate()
                slot.outcome = WorkerOutcome.TIMED_OUT
                slot.finished_at = now

    def _handle_crash(self, slot: _Slot, now: float) -> None:
        retries_used = slot.attempts - 1
        if retries_used < self.max_retries:
            delay = self.backoff_seconds * (2 ** retries_used)
            slot.respawn_at = now + delay
            slot.died_at = None
        else:
            slot.outcome = WorkerOutcome.CRASHED
            slot.finished_at = now

    # -- progress timeline --------------------------------------------

    def _record_progress(self, slot: _Slot, payload) -> bool:
        """Fold one worker progress snapshot into its slot's timeline.

        Returns False on any malformed field (the sender then loses
        all trust, exactly like a malformed result payload).
        """
        _tag, index, attempt, elapsed, stats_dict = payload
        if (not isinstance(index, int) or index != slot.index
                or not isinstance(attempt, int) or attempt < 0
                or not isinstance(elapsed, (int, float))
                or isinstance(elapsed, bool) or elapsed < 0
                or not isinstance(stats_dict, dict)):
            return False
        # Round-trip through the audited projection: unknown keys and
        # wrong-typed values are discarded, never stored.
        clean = stats_from_dict(stats_dict).as_dict()
        tracer = self.tracer
        if tracer is not None:
            base_attempt, base = slot.traced_base
            if base_attempt != attempt:   # respawn reset the counters
                base = {}
            if tracer.progress(
                    f"portfolio.worker{slot.index}",
                    worker=slot.index, config=slot.config.name,
                    attempt=attempt, elapsed=float(elapsed),
                    decisions=clean["decisions"]
                    - base.get("decisions", 0),
                    conflicts=clean["conflicts"]
                    - base.get("conflicts", 0),
                    propagations=clean["propagations"]
                    - base.get("propagations", 0),
                    gc_runs=clean["gc_runs"] - base.get("gc_runs", 0),
                    arena_lits=clean["arena_peak_lits"]):
                slot.traced_base = (attempt, clean)
        slot.timeline.append({"attempt": attempt,
                              "elapsed": float(elapsed),
                              "stats": clean})
        return True

    def _record_checkpoint(self, slot: _Slot, payload) -> bool:
        """Hold a worker's piggybacked checkpoint blob for its next
        respawn.  Shape violations cost the sender its trust; blob
        *content* is deliberately not verified here -- the checksummed
        loader in the respawned worker rejects corruption and demotes
        to a cold restart (the fault-plan contract)."""
        _tag, index, attempt, blob = payload
        if (not isinstance(index, int) or index != slot.index
                or not isinstance(attempt, int) or attempt < 0
                or not isinstance(blob, (bytes, bytearray))
                or len(blob) > _MAX_CHECKPOINT_BLOB):
            return False
        slot.last_checkpoint = bytes(blob)
        return True

    # -- payload validation -------------------------------------------

    def _payload_valid(self, payload, clause_lits) -> bool:
        if not isinstance(payload, tuple) or len(payload) != 5:
            return False
        index, attempt, status_name, model, stats_dict = payload
        if not isinstance(index, int) or not 0 <= index < len(
                self.configs):
            return False
        if status_name not in Status.__members__:
            return False
        if model is not None:
            if not isinstance(model, dict) or not all(
                    isinstance(k, int) and isinstance(v, bool)
                    for k, v in model.items()):
                return False
        if Status[status_name] is Status.SATISFIABLE:
            if model is None or not _model_satisfies(clause_lits, model):
                return False
        return True

    def _validate(self, payload, clause_lits):
        """Parsed (index, status, model, stats) of a valid payload."""
        index, _attempt, status_name, model, stats_dict = payload
        stats = stats_from_dict(stats_dict) \
            if isinstance(stats_dict, dict) else SolverStats()
        return index, Status[status_name], model, stats

    # -- report assembly ----------------------------------------------

    def _assemble(self, slots: List[_Slot], started: float,
                  deadline_hit: bool) -> PortfolioReport:
        now = time.monotonic()
        decisive = sorted(
            (slot.index, slot.result) for slot in slots
            if slot.result is not None
            and slot.result.status is not Status.UNKNOWN)

        workers: List[WorkerReport] = []
        for slot in slots:
            outcome = slot.outcome
            if outcome is None:
                if slot.result is not None:
                    outcome = (WorkerOutcome.SAT
                               if slot.result.status
                               is Status.SATISFIABLE
                               else WorkerOutcome.UNSAT)
                elif slot.respawn_at is not None:
                    outcome = WorkerOutcome.CRASHED
                elif deadline_hit:
                    outcome = WorkerOutcome.TIMED_OUT
                else:
                    outcome = WorkerOutcome.CANCELLED
            end = slot.finished_at if slot.finished_at is not None \
                else now
            begin = slot.spawned_at if slot.spawned_at is not None \
                else started
            workers.append(WorkerReport(
                index=slot.index, name=slot.config.name,
                outcome=outcome, attempts=slot.attempts,
                stats=slot.stats,
                wall_seconds=max(0.0, end - begin),
                discrepancy=slot.discrepancy,
                timeline=slot.timeline))
            if self.tracer is not None:
                self.tracer.event(
                    "portfolio.outcome", worker=slot.index,
                    config=slot.config.name, outcome=outcome.value,
                    attempts=slot.attempts,
                    samples=len(slot.timeline))

        respawns = sum(max(0, slot.attempts - 1) for slot in slots)
        if decisive:
            index, result = decisive[0]       # lowest index: reproducible
            return PortfolioReport(
                result=result, workers=workers,
                winner=self.configs[index].name, winner_index=index,
                wall_seconds=now - started, deadline_hit=deadline_hit,
                total_respawns=respawns)
        # No decisive verdict: surface any exhausted worker's stats.
        for slot in slots:
            if slot.result is not None:
                return PortfolioReport(
                    result=SolverResult(Status.UNKNOWN, None,
                                        slot.result.stats),
                    workers=workers, wall_seconds=now - started,
                    deadline_hit=deadline_hit, total_respawns=respawns)
        return PortfolioReport(
            result=SolverResult(Status.UNKNOWN), workers=workers,
            wall_seconds=now - started, deadline_hit=deadline_hit,
            total_respawns=respawns)


def _slot_spent(slot: "_Slot") -> Optional[SolverStats]:
    """Search effort a slot's previous attempts are known to have
    consumed: the last progress snapshot of each attempt, summed.

    A crashed attempt reports no final stats, so its latest snapshot
    is the best (under-)estimate of what it burned; underestimating
    only makes the respawn budget too generous by one progress
    interval, never too tight.  None when no snapshot ever arrived.
    """
    latest: Dict[int, Dict] = {}
    for sample in slot.timeline:
        latest[sample["attempt"]] = sample["stats"]
    if not latest:
        return None
    total = SolverStats()
    for stats_dict in latest.values():
        total.merge(stats_from_dict(stats_dict))
    return total


def _is_progress(payload) -> bool:
    """Shape test for a worker progress tuple (content audited later)."""
    return (isinstance(payload, tuple) and len(payload) == 5
            and payload[0] == "progress")


#: Upper bound on a stored checkpoint blob -- workers already bound
#: their exports (serialize_bounded), so anything bigger is a
#: misbehaving sender, not a big search.
_MAX_CHECKPOINT_BLOB = 1 << 20


def _is_checkpoint(payload) -> bool:
    """Shape test for a piggybacked checkpoint tuple."""
    return (isinstance(payload, tuple) and len(payload) == 4
            and payload[0] == "checkpoint")


def _model_satisfies(clause_lits, model: Dict[int, bool]) -> bool:
    """Audit a SAT claim: no clause may be falsified by *model*.

    Clauses left undecided by a partial model are accepted (any
    extension can satisfy them), matching the engines' contract.
    """
    for clause in clause_lits:
        falsified = True
        for lit in clause:
            value = model.get(abs(lit))
            if value is None or value == (lit > 0):
                falsified = False
                break
        if falsified and clause:
            return False
    return True
