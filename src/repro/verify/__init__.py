"""Result certification: streamed UNSAT proofs, an independent
checker, certificates, and a differential fuzzer.

An answer from a SAT engine is only as trustworthy as the engine; this
package makes answers *checkable* instead:

* :mod:`repro.verify.drat` streams DRUP proof lines (clause additions,
  GC deletions, the final empty clause) to a file with O(1)
  solver-side memory;
* :mod:`repro.verify.checker` validates such a proof by forward RUP
  checking with its own unit propagation -- it shares no code with the
  solvers it audits;
* :mod:`repro.verify.certificate` packages the outcome
  (SAT model / UNSAT proof / UNKNOWN reason) as a
  :class:`Certificate` and enforces the demotion contract: an answer
  whose evidence fails the check is reported UNKNOWN, never believed;
* :mod:`repro.verify.fuzz` hunts for wrong answers: differential
  fuzzing across CDCL / DPLL / recursive-learning with delta-debugged
  minimal reproducers.
"""

from repro.verify.certificate import (
    Certificate,
    certified_solve,
    check_unsat_proof,
    model_certificate,
)
from repro.verify.checker import (
    CheckOutcome,
    check_proof_file,
    check_proof_lines,
    check_proof_steps,
)
from repro.verify.drat import (
    FileProofSink,
    MemoryProofSink,
    ProofSink,
    attach_proof_stream,
    solve_with_proof_stream,
)
from repro.verify.fuzz import (
    Discrepancy,
    FuzzReport,
    run_fuzz,
    shrink_formula,
)

__all__ = [
    "Certificate",
    "certified_solve",
    "check_unsat_proof",
    "model_certificate",
    "CheckOutcome",
    "check_proof_file",
    "check_proof_lines",
    "check_proof_steps",
    "ProofSink",
    "FileProofSink",
    "MemoryProofSink",
    "attach_proof_stream",
    "solve_with_proof_stream",
    "Discrepancy",
    "FuzzReport",
    "run_fuzz",
    "shrink_formula",
]
