"""Certificates: answers the system can defend.

A :class:`Certificate` travels on ``SolverResult.certificate`` and
records *why* an answer should be believed:

* ``kind="model"`` -- SAT, with the model re-evaluated against the
  original formula (the same audit the portfolio supervisor applies
  to worker payloads);
* ``kind="proof"`` -- UNSAT, with a streamed DRUP proof that the
  independent checker (:mod:`repro.verify.checker`) validated;
* ``kind="none"`` -- UNKNOWN, or a demoted answer, with ``reason``
  saying what is missing.

:func:`certified_solve` is the one-stop entry: solve with streaming
proof emission, check the proof, and **demote** any UNSAT whose proof
fails the check to UNKNOWN -- a certified pipeline never reports an
answer it cannot defend.  Each check emits a ``verify.check`` trace
event (steps, bytes, check time, verdict) consumed by the
``repro profile`` certification section.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from repro.verify.checker import CheckOutcome, check_proof_file
from repro.verify.drat import FileProofSink, attach_proof_stream

#: Certificate kinds.
MODEL = "model"
PROOF = "proof"
NONE = "none"


@dataclass
class Certificate:
    """Evidence attached to a solver answer (see module docstring)."""

    kind: str
    #: Checker / audit verdict; None when nothing was checked.
    valid: Optional[bool] = None
    proof_path: Optional[str] = None
    #: Proof steps the checker processed (adds + deletes).
    steps: int = 0
    deletions: int = 0
    bytes_written: int = 0
    check_seconds: float = 0.0
    #: Why there is no usable certificate (kind="none"), or the
    #: checker diagnostic for an invalid proof.
    reason: Optional[str] = None

    def summary(self) -> str:
        """One human line for CLI output."""
        if self.kind == MODEL:
            return ("model verified against the formula"
                    if self.valid else
                    f"model INVALID: {self.reason or 'audit failed'}")
        if self.kind == PROOF:
            if self.valid:
                where = f" ({self.proof_path})" if self.proof_path else ""
                return (f"proof verified: {self.steps} steps, "
                        f"{self.bytes_written} bytes, "
                        f"{self.check_seconds:.3f}s check{where}")
            return f"proof INVALID: {self.reason or 'check failed'}"
        return f"no certificate: {self.reason or 'unknown result'}"


def _emit_check_event(tracer, outcome: CheckOutcome, bytes_written: int,
                      seconds: float) -> None:
    if tracer is not None:
        tracer.event("verify.check",
                     steps=outcome.steps_checked,
                     bytes=bytes_written,
                     check_seconds=round(seconds, 6),
                     valid=int(outcome.valid))


def check_unsat_proof(formula, proof_path: str,
                      tracer=None) -> Certificate:
    """Run the independent checker over *proof_path* and wrap the
    verdict in a :class:`Certificate` (emitting ``verify.check``)."""
    try:
        size = os.path.getsize(proof_path)
    except OSError:
        size = 0
    started = time.perf_counter()
    outcome = check_proof_file(formula, proof_path)
    elapsed = time.perf_counter() - started
    _emit_check_event(tracer, outcome, size, elapsed)
    if outcome.valid:
        return Certificate(PROOF, valid=True, proof_path=proof_path,
                           steps=outcome.steps_checked,
                           deletions=outcome.deletes,
                           bytes_written=size,
                           check_seconds=elapsed)
    return Certificate(PROOF, valid=False, proof_path=proof_path,
                       steps=outcome.steps_checked,
                       deletions=outcome.deletes,
                       bytes_written=size,
                       check_seconds=elapsed,
                       reason=outcome.error)


def model_certificate(formula, assignment) -> Certificate:
    """Audit a SAT model against the original formula."""
    ok = formula.is_satisfied_by(assignment)
    return Certificate(MODEL, valid=ok,
                       reason=None if ok else
                       "claimed model does not satisfy the formula")


def certified_solve(formula, proof_path: Optional[str] = None,
                    tracer=None, sink_factory=FileProofSink,
                    preprocess: bool = False,
                    **cdcl_kwargs):
    """Solve *formula* with end-to-end certification.

    Streams a DRUP proof while solving; on UNSAT the independent
    checker validates it before the answer is released.  Returns a
    :class:`~repro.solvers.result.SolverResult` whose ``certificate``
    is always populated:

    * SAT    -> model audited against *formula*;
    * UNSAT  -> proof check passed (the file stays at *proof_path*
      when one was given; a temporary file is cleaned up);
    * UNKNOWN, or UNSAT whose proof **fails** the check -> the status
      is *demoted* to UNKNOWN with the diagnostic in
      ``certificate.reason`` (an invalid proof keeps its file for
      post-mortem when *proof_path* was explicit).

    ``preprocess=True`` runs the proof-logged preprocessing subset
    (:func:`repro.cnf.simplify.simplify_with_proof`) into the same
    sink before solving the reduced formula, so the combined stream
    still verifies against the *original* formula; SAT models are
    lifted back through the forced assignments and audited against
    the original.

    ``sink_factory`` exists for fault injection: tests substitute a
    sink that corrupts the stream to pin the demotion path.
    """
    from repro.solvers.cdcl import CDCLSolver
    from repro.solvers.result import SolverResult, SolverStats, Status

    if cdcl_kwargs.get("learning") is False:
        raise ValueError("certified_solve requires clause learning: "
                         "without recorded clauses there is no proof")
    ephemeral = proof_path is None
    if ephemeral:
        handle, proof_path = tempfile.mkstemp(suffix=".drup",
                                              prefix="repro-proof-")
        os.close(handle)
    sink = sink_factory(proof_path)
    target = formula
    forced = {}
    if preprocess:
        from repro.cnf.simplify import simplify_with_proof
        pre = simplify_with_proof(formula, sink)
        if pre.unsat:
            # Preprocessing refuted the formula; the sink already
            # holds the concluding empty clause.  Check the stream
            # against the original formula like any other UNSAT.
            sink.close()
            certificate = check_unsat_proof(formula, proof_path, tracer)
            certificate.deletions = sink.deletes
            if ephemeral:
                _remove(proof_path)
                certificate.proof_path = None
            status = (Status.UNSATISFIABLE if certificate.valid
                      else Status.UNKNOWN)
            result = SolverResult(status, None, SolverStats())
            result.certificate = certificate
            return result
        target = pre.formula
        forced = pre.forced
    solver = CDCLSolver(target, **cdcl_kwargs)
    if tracer is not None:
        solver.tracer = tracer
    attach_proof_stream(solver, sink)
    try:
        result = solver.solve()
    finally:
        sink.close()

    if result.status is Status.SATISFIABLE and forced:
        # Lift the model of the reduced formula back to the original:
        # propagated-unit variables take their forced values
        # (overwriting whatever the search assigned to the now
        # unconstrained variables).
        for var, value in forced.items():
            result.assignment.assign(var, value)

    if result.status is Status.UNSATISFIABLE:
        certificate = check_unsat_proof(formula, proof_path, tracer)
        certificate.deletions = sink.deletes
        if certificate.valid:
            result.certificate = certificate
            if ephemeral:
                _remove(proof_path)
                certificate.proof_path = None
            return result
        # Demote: an UNSAT whose proof fails the independent check is
        # not an answer, it is a bug report.
        if ephemeral:
            _remove(proof_path)
            certificate.proof_path = None
        demoted = SolverResult(Status.UNKNOWN, None, result.stats)
        demoted.certificate = certificate
        return demoted

    _remove(proof_path)        # partial proofs are not certificates
    if result.status is Status.SATISFIABLE:
        certificate = model_certificate(formula, result.assignment)
        if not certificate.valid:
            demoted = SolverResult(Status.UNKNOWN, None, result.stats)
            demoted.certificate = certificate
            return demoted
        result.certificate = certificate
        return result
    result.certificate = Certificate(
        NONE, reason="solver returned UNKNOWN (budget exhausted)")
    return result


def _remove(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass
