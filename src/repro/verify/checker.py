"""Independent forward DRUP proof checker.

This module validates the proofs :mod:`repro.verify.drat` emits -- and
it deliberately shares **no code** with the solver stack.  It imports
nothing from ``repro.solvers``: it has its own truth-value array, its
own trail, its own two-watched-literal propagation, its own clause
store.  A checker that reused the solver's BCP would faithfully
reproduce the solver's bugs and certify nothing (see DESIGN.md,
"Certified results").  The *formula* argument is duck-typed: anything
with ``num_vars`` that iterates to literal sequences works.

Checking is forward DRUP:

* an **add** line ``l1 .. lk 0`` is valid iff asserting the negation
  of every literal and unit-propagating over the current clause
  database yields a conflict (the clause is a RUP consequence);
* a **delete** line ``d l1 .. lk 0`` removes one clause with that
  literal set from the database (clauses are matched as sets -- the
  emitter's watched-literal normalization permutes stored order);
* the proof certifies UNSAT when the **empty clause** (a line ``0``)
  is reached, i.e. the database propagates to conflict outright.

Every rejection carries a ``line N:``-prefixed diagnostic so a
corrupted or truncated file is pinpointed, not just refused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class CheckOutcome:
    """Result of checking one proof against one formula."""

    valid: bool
    steps_checked: int = 0
    adds: int = 0
    deletes: int = 0
    #: True when the empty clause was reached (UNSAT certified).
    concluded: bool = False
    #: ``line N:``-prefixed diagnostic when invalid.
    error: Optional[str] = None
    #: 1-based proof line (or step index) of the failure.
    line: Optional[int] = None

    def __bool__(self) -> bool:
        return self.valid


class _ParseError(Exception):
    def __init__(self, line: int, message: str) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class _Propagation:
    """Self-contained two-watched-literal unit propagation.

    Truth values are a flat signed array indexed by variable (0 =
    unassigned); watch lists are keyed by the watched literal and
    visited when its negation is assigned; deleted clauses are swept
    from watch lists lazily.  Root-level assignments are persistent
    (they only grow); RUP checks push assumptions on the trail and
    undo back to the saved mark.
    """

    __slots__ = ("_value", "_trail", "_qhead", "_clauses", "_watch",
                 "_by_key", "root_conflict", "num_vars")

    def __init__(self, num_vars: int) -> None:
        self.num_vars = num_vars
        self._value: List[int] = [0] * (num_vars + 1)
        self._trail: List[int] = []
        self._qhead = 0
        #: cid -> literal list; None once deleted.
        self._clauses: List[Optional[List[int]]] = []
        self._watch: Dict[int, List[int]] = {}
        #: sorted-literal-set key -> live cids (deletion matching).
        self._by_key: Dict[Tuple[int, ...], List[int]] = {}
        self.root_conflict = False

    # -- assignment primitives ------------------------------------

    def grow(self, var: int) -> None:
        if var > self.num_vars:
            self._value.extend([0] * (var - self.num_vars))
            self.num_vars = var

    def _val(self, lit: int) -> Optional[bool]:
        v = self._value[lit if lit > 0 else -lit]
        if v == 0:
            return None
        return (v > 0) == (lit > 0)

    def _assign(self, lit: int) -> None:
        self._value[lit if lit > 0 else -lit] = 1 if lit > 0 else -1
        self._trail.append(lit)

    def _watchers(self, lit: int) -> List[int]:
        bucket = self._watch.get(lit)
        if bucket is None:
            bucket = self._watch[lit] = []
        return bucket

    # -- clause database ------------------------------------------

    def add_clause(self, literals: Sequence[int]) -> None:
        """Insert a clause and restore the root propagation fixpoint.

        Callers must have RUP-checked the clause first when that
        matters; insertion itself never fails.  Tautologies are stored
        (so they stay deletable) but never watched -- they cannot
        propagate.  An empty or root-falsified clause sets
        ``root_conflict``.
        """
        lits = list(dict.fromkeys(literals))
        cid = len(self._clauses)
        self._clauses.append(lits)
        key = tuple(sorted(lits))
        self._by_key.setdefault(key, []).append(cid)

        litset = set(lits)
        if any(-lit in litset for lit in lits):
            return                      # tautology: inert
        if not lits:
            self.root_conflict = True
            return
        free = [lit for lit in lits if self._val(lit) is not False]
        if not free:
            self.root_conflict = True
            return
        if any(self._val(lit) is True for lit in free):
            # Satisfied by a persistent root assignment: it can never
            # propagate anything new, so it needs no watches.
            return
        if len(free) == 1:
            self._assign(free[0])
            if self.propagate() is not None:
                self.root_conflict = True
            return
        # Watch two non-false literals (slots 0 and 1).
        j = lits.index(free[0])
        lits[0], lits[j] = lits[j], lits[0]
        k = lits.index(free[1], 1)
        lits[1], lits[k] = lits[k], lits[1]
        self._watchers(lits[0]).append(cid)
        self._watchers(lits[1]).append(cid)

    def delete_clause(self, literals: Sequence[int]) -> bool:
        """Remove one clause matching *literals* as a set; False when
        no live clause matches (watch entries die lazily)."""
        key = tuple(sorted(dict.fromkeys(literals)))
        bucket = self._by_key.get(key)
        if not bucket:
            return False
        cid = bucket.pop()
        self._clauses[cid] = None
        return True

    # -- propagation ----------------------------------------------

    def propagate(self) -> Optional[int]:
        """Unit propagation to fixpoint; returns a conflicting cid."""
        trail = self._trail
        clauses = self._clauses
        while self._qhead < len(trail):
            p = trail[self._qhead]
            self._qhead += 1
            watchers = self._watch.get(-p)
            if not watchers:
                continue
            i = 0
            while i < len(watchers):
                cid = watchers[i]
                lits = clauses[cid]
                if lits is None:        # deleted: sweep lazily
                    watchers[i] = watchers[-1]
                    watchers.pop()
                    continue
                if lits[0] == -p:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                fval = self._val(first)
                if fval is True:
                    i += 1
                    continue
                for k in range(2, len(lits)):
                    if self._val(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watchers(lits[1]).append(cid)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        break
                else:
                    if fval is False:
                        return cid      # conflict
                    self._assign(first)
                    i += 1
        return None

    def rup_check(self, literals: Sequence[int]) -> bool:
        """Is the clause a RUP consequence of the current database?

        Asserts the negation of every literal, propagates, and undoes
        back to the root trail.  A literal already true at root (its
        negation contradicts the database) or a tautologous pair both
        count as the required conflict.
        """
        mark = len(self._trail)
        conflict = False
        for lit in literals:
            v = self._val(lit)
            if v is True:
                conflict = True
                break
            if v is False:
                continue
            self._assign(-lit)
        if not conflict:
            conflict = self.propagate() is not None
        value = self._value
        for lit in self._trail[mark:]:
            value[lit if lit > 0 else -lit] = 0
        del self._trail[mark:]
        self._qhead = mark
        return conflict


class RupDatabase:
    """Incremental RUP admission over the checker's own propagation.

    Crash-recovery checkpoints (:mod:`repro.runtime.checkpoint`) replay
    learned clauses from a dead attempt into a fresh solver, and those
    imports become the *add prefix* of the resumed attempt's DRUP
    proof.  The forward checker will accept that prefix only if every
    imported clause is RUP with respect to the formula plus the imports
    before it -- exactly what :meth:`admit` enforces, using the same
    engine :func:`check_proof_steps` runs.  A clause that fails here is
    dropped by the importer (it would fail certification later), which
    doubles as a soundness firewall: admitted clauses are genuine
    consequences of the original formula, whatever transformations
    (e.g. inprocessing) the dead attempt had applied when it learned
    them.

    The dependency direction is solver -> checker; the checker still
    imports nothing from the solver stack.
    """

    __slots__ = ("_engine",)

    def __init__(self, formula) -> None:
        engine = _Propagation(getattr(formula, "num_vars", 0))
        for clause in formula:
            lits = list(clause)
            for lit in lits:
                engine.grow(lit if lit > 0 else -lit)
            engine.add_clause(lits)
        if engine.propagate() is not None:
            engine.root_conflict = True
        self._engine = engine

    def admit(self, literals: Sequence[int]) -> bool:
        """RUP-check *literals*; on success insert the clause into the
        database (so later candidates may depend on it) and return
        True.  A failed check leaves the database unchanged."""
        engine = self._engine
        lits = list(literals)
        for lit in lits:
            engine.grow(lit if lit > 0 else -lit)
        if not engine.root_conflict and not engine.rup_check(lits):
            return False
        engine.add_clause(lits)
        return True


def _parse_proof_line(lineno: int, raw: str
                      ) -> Optional[Tuple[str, List[int]]]:
    """One DRUP line -> ``(kind, literals)``; None for blank/comment.

    Raises :class:`_ParseError` with a precise diagnostic for
    malformed tokens, a missing terminating 0, or an embedded 0.
    """
    text = raw.strip()
    if not text or text[0] == "c":
        return None
    kind = "a"
    if text[0] == "d":
        if len(text) > 1 and not text[1].isspace():
            raise _ParseError(lineno, f"malformed token {text.split()[0]!r}")
        kind = "d"
        text = text[1:]
    nums: List[int] = []
    for token in text.split():
        try:
            nums.append(int(token))
        except ValueError:
            raise _ParseError(lineno, f"malformed literal {token!r}")
    if not nums or nums[-1] != 0:
        raise _ParseError(lineno, "missing terminating 0")
    if 0 in nums[:-1]:
        raise _ParseError(lineno, "literal 0 inside the clause body")
    return kind, nums[:-1]


def _check(formula, steps: Iterable[Tuple[int, str, Sequence[int]]],
           require_empty: bool) -> CheckOutcome:
    engine = _Propagation(getattr(formula, "num_vars", 0))
    for clause in formula:
        lits = list(clause)
        for lit in lits:
            engine.grow(lit if lit > 0 else -lit)
        engine.add_clause(lits)
    if engine.propagate() is not None:
        engine.root_conflict = True

    outcome = CheckOutcome(valid=False)
    last_line = 0
    for lineno, kind, lits in steps:
        last_line = lineno
        for lit in lits:
            engine.grow(lit if lit > 0 else -lit)
        if kind == "d":
            if not engine.delete_clause(lits):
                outcome.error = (f"line {lineno}: deletion of a clause "
                                 f"not in the database")
                outcome.line = lineno
                return outcome
            outcome.deletes += 1
        else:
            if not engine.root_conflict and not engine.rup_check(lits):
                outcome.error = (f"line {lineno}: clause is not a RUP "
                                 f"consequence of the database")
                outcome.line = lineno
                return outcome
            engine.add_clause(lits)
            outcome.adds += 1
            if not lits:
                outcome.concluded = True
        outcome.steps_checked += 1
        if outcome.concluded:
            break                       # UNSAT certified; ignore tail

    if require_empty and not outcome.concluded:
        outcome.error = (f"line {last_line}: proof ends without the "
                         f"empty clause (truncated?)")
        outcome.line = last_line
        return outcome
    outcome.valid = True
    return outcome


def check_proof_steps(formula, events: Iterable[Tuple[str, Sequence[int]]],
                      require_empty: bool = True) -> CheckOutcome:
    """Check in-memory proof *events* (``("a"|"d", literals)`` pairs,
    e.g. :attr:`repro.verify.drat.MemoryProofSink.events`)."""
    numbered = ((index + 1, kind, lits)
                for index, (kind, lits) in enumerate(events))
    return _check(formula, numbered, require_empty)


def check_proof_lines(formula, lines: Iterable[str],
                      require_empty: bool = True) -> CheckOutcome:
    """Check an iterable of DRUP text lines against *formula*."""
    def steps():
        for lineno, raw in enumerate(lines, start=1):
            parsed = _parse_proof_line(lineno, raw)
            if parsed is not None:
                yield lineno, parsed[0], parsed[1]
    try:
        return _check(formula, steps(), require_empty)
    except _ParseError as exc:
        return CheckOutcome(valid=False, error=str(exc), line=exc.line)


def check_proof_file(formula, path: str,
                     require_empty: bool = True) -> CheckOutcome:
    """Check the DRUP file at *path* against *formula*.

    A missing or unreadable file is an invalid proof (with the OS
    error as diagnostic), never an exception: certification callers
    must treat it as "cannot defend this answer".
    """
    try:
        with open(path, "r", encoding="ascii", errors="replace") as fh:
            return check_proof_lines(formula, fh, require_empty)
    except OSError as exc:
        return CheckOutcome(valid=False,
                            error=f"unreadable proof file: {exc}")
