"""Differential fuzzing + delta-debugging shrinker.

The certification stack (streamed proofs, independent checker, model
audits) tells us when an answer is wrong; the fuzzer's job is to go
*looking* for wrong answers before users do.  Each round draws a
random instance -- uniform k-SAT near and off the phase transition, or
a Tseitin-encoded random-circuit miter -- and cross-checks three
algorithm families the paper treats as interchangeable decision
procedures:

* **CDCL** under a randomized configuration (heuristic, restarts,
  deletion policy, minimization, phase saving, budget) with a
  streamed proof attached -- every UNSAT verdict is check-verified;
* **DPLL** (chronological, no learning) -- an independent baseline;
* **recursive learning** as a preprocessor feeding a plain CDCL.

Any two decisive verdicts must agree; every SAT model must satisfy
the original formula; every CDCL UNSAT proof must check.  UNKNOWN
(budget exhausted) never counts against an engine.  Periodically a
round races a small *supervised portfolio* under a random
:class:`~repro.runtime.faults.FaultPlan` with proof certification on,
exercising the crash/garbage/false-UNSAT recovery paths against a
known verdict.

When a round fails, the instance is **shrunk**: greedy ddmin over
clauses (then a variable renumbering) while the failure predicate
still fires, and the minimal reproducer is written to disk as DIMACS
plus a JSON description of the disagreeing engines.  ``repro fuzz``
is the CLI entry; CI runs it as the fuzz-smoke job.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cnf.canonical import renumber
from repro.cnf.dimacs import save_dimacs
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.solvers.result import SolverResult, Status
from repro.verify.checker import check_proof_steps
from repro.verify.drat import MemoryProofSink, attach_proof_stream


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------

class Engine:
    """One deterministic decision procedure under test.

    ``run(formula)`` returns a :class:`SolverResult`; for engines that
    can emit proofs, ``proof_events`` holds the streamed
    ``("a"|"d", lits)`` events of the *latest* run (None otherwise).
    Engines must be deterministic for a fixed construction: the
    shrinker re-runs them on candidate formulas and needs the failure
    to be a function of the formula alone.
    """

    name = "engine"
    proof_events: Optional[List[Tuple[str, Tuple[int, ...]]]] = None

    def run(self, formula: CNFFormula) -> SolverResult:
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        return {"name": self.name}


class CDCLEngine(Engine):
    """Randomly-configured CDCL with a streamed (in-memory) proof."""

    def __init__(self, name: str, heuristic: str = "vsids",
                 seed: int = 0, random_freq: float = 0.0,
                 restart: str = "none", restart_interval: int = 100,
                 deletion: str = "keep", deletion_bound: int = 20,
                 deletion_interval: int = 1000,
                 minimize_learned: bool = False,
                 phase_saving: bool = False,
                 max_conflicts: Optional[int] = None,
                 inprocess_interval: Optional[int] = None,
                 propagation: str = "auto"):
        self.name = name
        self.params = dict(
            heuristic=heuristic, seed=seed, random_freq=random_freq,
            restart=restart, restart_interval=restart_interval,
            deletion=deletion, deletion_bound=deletion_bound,
            deletion_interval=deletion_interval,
            minimize_learned=minimize_learned,
            phase_saving=phase_saving, max_conflicts=max_conflicts,
            inprocess_interval=inprocess_interval,
            propagation=propagation)
        self.proof_events = None

    def run(self, formula: CNFFormula) -> SolverResult:
        from repro.solvers.cdcl import CDCLSolver
        from repro.solvers.heuristics import make_heuristic
        from repro.solvers.restarts import make_restart_policy

        p = self.params
        inprocess = None
        if p["inprocess_interval"] is not None:
            from repro.solvers.inprocess import InprocessConfig
            inprocess = InprocessConfig(interval=p["inprocess_interval"])
        solver = CDCLSolver(
            formula,
            heuristic=make_heuristic(p["heuristic"], seed=p["seed"],
                                     random_freq=p["random_freq"]),
            restart_policy=make_restart_policy(p["restart"],
                                               p["restart_interval"]),
            deletion=p["deletion"], deletion_bound=p["deletion_bound"],
            deletion_interval=p["deletion_interval"],
            minimize_learned=p["minimize_learned"],
            phase_saving=p["phase_saving"],
            max_conflicts=p["max_conflicts"],
            inprocess=inprocess,
            propagation=p["propagation"])
        sink = attach_proof_stream(solver, MemoryProofSink())
        result = solver.solve()
        self.proof_events = sink.events
        return result

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "kind": "cdcl", **self.params}


class DPLLEngine(Engine):
    """Plain DPLL -- no learning, chronological backtracking."""

    def __init__(self, max_decisions: Optional[int] = None):
        self.name = "dpll"
        self.max_decisions = max_decisions
        self.proof_events = None

    def run(self, formula: CNFFormula) -> SolverResult:
        from repro.solvers.dpll import solve_dpll
        return solve_dpll(formula, max_decisions=self.max_decisions)

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "kind": "dpll",
                "max_decisions": self.max_decisions}


class RecursiveLearningEngine(Engine):
    """Recursive-learning preprocessing feeding a default CDCL."""

    def __init__(self, depth: int = 1):
        self.name = f"rl{depth}+cdcl"
        self.depth = depth
        self.proof_events = None

    def run(self, formula: CNFFormula) -> SolverResult:
        from repro.solvers.cdcl import solve_cdcl
        from repro.solvers.recursive_learning import (
            preprocess_recursive_learning)

        strengthened, _forced = preprocess_recursive_learning(
            formula, depth=self.depth)
        if strengthened is None:
            return SolverResult(Status.UNSATISFIABLE)
        # The strengthened formula only adds *implied* units, so it is
        # equisatisfiable and its models satisfy the original.
        return solve_cdcl(strengthened)

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "kind": "recursive-learning",
                "depth": self.depth}


def default_engines(rng: random.Random) -> List[Engine]:
    """The per-round engine panel: one randomized CDCL, one DPLL, one
    recursive-learning pipeline.  Budgets are randomized too -- a
    budget-limited engine answers UNKNOWN, which must never be treated
    as a disagreement."""
    heuristic = rng.choice(["vsids", "dlis", "jw"])
    restart = rng.choice(["none", "fixed", "geometric", "luby"])
    deletion = rng.choice(["keep", "size", "relevance"])
    max_conflicts = rng.choice([None, None, None, 150])
    # Half the rounds run with in-search inprocessing enabled at an
    # aggressive interval so the differential harness also exercises
    # the simplification passes (subsumption / vivification / BVE /
    # equivalence substitution) against the reference engines.
    inprocess_interval = rng.choice([None, None, 4, 16])
    # A third of the rounds run the batch counter-BCP backend (PR 9)
    # instead of watch-mode, so the differential harness also pits
    # the two propagation disciplines against each other (and the
    # counter kernel against the proof checker) on every instance
    # shape, including under deletion/GC and inprocessing.
    propagation = rng.choice(["auto", "auto", "numpy"])
    cdcl = CDCLEngine(
        name=f"cdcl-{heuristic}-{restart}-{deletion}"
             + ("-inp" if inprocess_interval is not None else "")
             + ("-bcp" if propagation == "numpy" else ""),
        heuristic=heuristic, seed=rng.randrange(1 << 30),
        random_freq=rng.choice([0.0, 0.02, 0.1]),
        restart=restart, restart_interval=rng.choice([16, 64, 256]),
        deletion=deletion, deletion_bound=rng.choice([3, 8, 20]),
        deletion_interval=rng.choice([25, 100, 1000]),
        minimize_learned=rng.random() < 0.5,
        phase_saving=rng.random() < 0.5,
        max_conflicts=max_conflicts,
        inprocess_interval=inprocess_interval,
        propagation=propagation)
    return [cdcl,
            DPLLEngine(max_decisions=rng.choice([None, None, 20000])),
            RecursiveLearningEngine(depth=rng.choice([1, 2]))]


# ----------------------------------------------------------------------
# Instances
# ----------------------------------------------------------------------

def random_instance(rng: random.Random, max_vars: int = 26
                    ) -> Tuple[str, CNFFormula]:
    """Draw one fuzz instance: ``(description, formula)``."""
    if rng.random() < 0.75:
        num_vars = rng.randint(5, max_vars)
        k = rng.choice([2, 3, 3, 4])
        ratio = rng.uniform(1.5, 6.0)
        num_clauses = max(1, round(ratio * num_vars))
        formula = random_ksat(num_vars, num_clauses, k=k,
                              seed=rng.randrange(1 << 30))
        return (f"ksat(v={num_vars},c={num_clauses},k={k})", formula)
    from repro.apps.equivalence import mutate_circuit
    from repro.circuits.generators import random_circuit
    from repro.circuits.tseitin import encode_miter

    circuit = random_circuit(num_inputs=rng.randint(3, 5),
                             num_gates=rng.randint(4, 14),
                             seed=rng.randrange(1 << 30))
    if rng.random() < 0.5:
        other = circuit                     # self-miter: UNSAT
        kind = "self"
    else:
        other = mutate_circuit(circuit, seed=rng.randrange(1 << 30))
        kind = "mutant"
    formula = encode_miter(circuit, other).formula
    return (f"miter({kind},v={formula.num_vars})", formula)


# ----------------------------------------------------------------------
# Differential check
# ----------------------------------------------------------------------

@dataclass
class Discrepancy:
    """One confirmed fuzz failure, before/after shrinking."""

    kind: str            # disagreement | bad-model | bad-proof | portfolio
    detail: str
    engines: List[Dict[str, object]] = field(default_factory=list)
    instance: str = ""
    seed: int = 0
    original_clauses: int = 0
    shrunk_clauses: int = 0
    cnf_path: Optional[str] = None
    meta_path: Optional[str] = None


def differential_failure(formula: CNFFormula,
                         engines: Sequence[Engine]
                         ) -> Optional[Tuple[str, str, List[Engine]]]:
    """Run every engine on *formula* and cross-check.

    Returns ``(kind, detail, culprit_engines)`` for the first failure
    found, or None when all answers are mutually consistent:

    * a SAT claim whose model falsifies the formula -> ``bad-model``;
    * a CDCL UNSAT whose streamed proof fails the independent check
      -> ``bad-proof``;
    * two decisive verdicts that differ -> ``disagreement``.
    """
    verdicts: List[Tuple[Engine, SolverResult]] = []
    for engine in engines:
        result = engine.run(formula)
        if result.status is Status.SATISFIABLE:
            if (result.assignment is None
                    or not formula.is_satisfied_by(result.assignment)):
                return ("bad-model",
                        f"{engine.name} claimed SAT with a model that "
                        f"does not satisfy the formula", [engine])
        elif result.status is Status.UNSATISFIABLE:
            if engine.proof_events is not None:
                outcome = check_proof_steps(formula, engine.proof_events)
                if not outcome.valid:
                    return ("bad-proof",
                            f"{engine.name} claimed UNSAT but its proof "
                            f"failed: {outcome.error}", [engine])
        verdicts.append((engine, result))

    decisive = [(e, r) for e, r in verdicts
                if r.status is not Status.UNKNOWN]
    for i in range(1, len(decisive)):
        a_engine, a = decisive[0]
        b_engine, b = decisive[i]
        if a.status is not b.status:
            return ("disagreement",
                    f"{a_engine.name}={a.status.value} vs "
                    f"{b_engine.name}={b.status.value}",
                    [a_engine, b_engine])
    return None


# ----------------------------------------------------------------------
# Shrinker
# ----------------------------------------------------------------------

def shrink_formula(formula: CNFFormula,
                   predicate: Callable[[CNFFormula], bool],
                   max_evals: int = 250) -> CNFFormula:
    """Delta-debug *formula* down while *predicate* keeps firing.

    Greedy ddmin over clauses: try removing chunks (halving the chunk
    size down to single clauses), restarting a pass after any
    successful removal, bounded by *max_evals* predicate evaluations.
    Finishes with a compacting variable renumbering (kept only if the
    predicate still fires on the renamed formula).
    """
    clauses: List[Tuple[int, ...]] = [tuple(c) for c in formula.clauses]
    num_vars = formula.num_vars

    def build(cls: Sequence[Tuple[int, ...]]) -> CNFFormula:
        return CNFFormula(num_vars=num_vars, clauses=list(cls))

    evals = 0
    chunk = max(1, len(clauses) // 2)
    while chunk >= 1 and evals < max_evals:
        index = 0
        removed_any = False
        while index < len(clauses) and evals < max_evals:
            candidate = clauses[:index] + clauses[index + chunk:]
            if not candidate:
                index += chunk
                continue
            evals += 1
            if predicate(build(candidate)):
                clauses = candidate
                removed_any = True      # same index now names new chunk
            else:
                index += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else 1
        if chunk == 1 and not removed_any and evals >= max_evals:
            break

    shrunk = build(clauses)
    # Compact the variable space: reproducers read better as 1..k.
    # The renumbering is the shared repro.cnf.canonical helper -- the
    # same transformation that feeds the service's cache key.
    renamed, mapping = renumber(shrunk)
    if mapping and (renamed.num_vars < num_vars
                    or any(old != new for old, new in mapping.items())):
        if predicate(renamed):
            return renamed
    return shrunk


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------

@dataclass
class FuzzReport:
    """Aggregate outcome of one :func:`run_fuzz` campaign."""

    iterations: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    proofs_checked: int = 0
    portfolio_rounds: int = 0
    failures: List[Discrepancy] = field(default_factory=list)
    out_dir: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        return (f"{self.iterations} instances: {self.sat} SAT / "
                f"{self.unsat} UNSAT / {self.unknown} UNKNOWN, "
                f"{self.proofs_checked} proofs checked, "
                f"{self.portfolio_rounds} portfolio rounds, "
                f"{len(self.failures)} failure(s)")


def _write_reproducer(out_dir: str, failure: Discrepancy,
                      formula: CNFFormula) -> None:
    os.makedirs(out_dir, exist_ok=True)
    stem = os.path.join(out_dir, f"repro-{failure.seed}")
    failure.cnf_path = stem + ".cnf"
    failure.meta_path = stem + ".json"
    save_dimacs(formula, failure.cnf_path,
                comments=[f"fuzz reproducer seed={failure.seed}",
                          f"kind={failure.kind}", failure.detail])
    with open(failure.meta_path, "w", encoding="utf-8") as fh:
        json.dump({"seed": failure.seed, "kind": failure.kind,
                   "detail": failure.detail,
                   "instance": failure.instance,
                   "engines": failure.engines,
                   "original_clauses": failure.original_clauses,
                   "shrunk_clauses": failure.shrunk_clauses},
                  fh, indent=2, sort_keys=True)


def _portfolio_round(formula: CNFFormula, rng: random.Random,
                     consensus: Optional[Status]) -> Optional[str]:
    """Race a small certified supervised portfolio under a random
    fault plan; returns a failure detail string or None.

    The race must either agree with the engines' *consensus* verdict
    or come back UNKNOWN (budgets and injected faults make giving up
    legitimate; lying does not).
    """
    from repro.runtime.faults import FaultPlan
    from repro.solvers.portfolio import default_portfolio, solve_portfolio

    plan = rng.choice([
        None,
        FaultPlan(crashes={0: 1}),
        FaultPlan(garbage={0: 1}),
        FaultPlan(false_unsat={0: 1}),
    ])
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-race-") as tmp:
        outcome = solve_portfolio(
            formula, configs=default_portfolio(2, seed=rng.randrange(1000)),
            processes=2, timeout=20.0, max_retries=1,
            fault_plan=plan, progress_interval=None, proof_dir=tmp)
        status = outcome.result.status
        if status is Status.UNKNOWN:
            return None
        if consensus is not None and status is not consensus:
            return (f"portfolio={status.value} disagrees with "
                    f"engine consensus {consensus.value} "
                    f"(faults={plan!r})")
        if (status is Status.UNSATISFIABLE
                and (outcome.result.certificate is None
                     or not outcome.result.certificate.valid)):
            return "portfolio UNSAT arrived without a valid certificate"
    return None


def run_fuzz(iterations: int, seed: int = 0,
             out_dir: Optional[str] = None,
             max_vars: int = 26,
             portfolio_every: int = 0,
             shrink: bool = True,
             max_shrink_evals: int = 250,
             engines_factory: Optional[
                 Callable[[random.Random], List[Engine]]] = None,
             on_progress: Optional[Callable[[int, "FuzzReport"],
                                            None]] = None) -> FuzzReport:
    """Run *iterations* differential rounds; returns a
    :class:`FuzzReport` (``report.ok`` == no failures).

    Every round is seeded as ``seed * 1_000_003 + i``, so a failing
    round reproduces standalone.  ``portfolio_every > 0`` inserts a
    supervised certified portfolio race (with a random fault plan)
    every that-many rounds.  ``engines_factory`` overrides the engine
    panel -- the mutation test injects a deliberately buggy engine
    through it and asserts the campaign catches it.
    """
    report = FuzzReport(out_dir=out_dir)
    make_engines = engines_factory or default_engines
    for i in range(iterations):
        spec_seed = seed * 1_000_003 + i
        rng = random.Random(spec_seed)
        instance, formula = random_instance(rng, max_vars=max_vars)
        engines = make_engines(rng)
        failure = differential_failure(formula, engines)
        report.iterations += 1

        # Bookkeeping: one representative verdict per round.
        statuses = set()
        for engine in engines:
            if engine.proof_events is not None:
                report.proofs_checked += 1
        if failure is None:
            consensus = _consensus(formula, engines, report, statuses)
            if (portfolio_every > 0
                    and (i + 1) % portfolio_every == 0):
                report.portfolio_rounds += 1
                detail = _portfolio_round(formula, rng, consensus)
                if detail is not None:
                    failure = ("portfolio", detail, [])

        if failure is not None:
            kind, detail, culprits = failure
            record = Discrepancy(
                kind=kind, detail=detail,
                engines=[e.describe() for e in culprits],
                instance=instance, seed=spec_seed,
                original_clauses=len(formula.clauses))
            shrunk = formula
            if shrink and culprits:
                def still_failing(candidate: CNFFormula) -> bool:
                    got = differential_failure(candidate, culprits)
                    return got is not None and got[0] == kind
                shrunk = shrink_formula(formula, still_failing,
                                        max_evals=max_shrink_evals)
            record.shrunk_clauses = len(shrunk.clauses)
            if out_dir is not None:
                _write_reproducer(out_dir, record, shrunk)
            report.failures.append(record)

        if on_progress is not None:
            on_progress(i + 1, report)
    return report


def _consensus(formula: CNFFormula, engines: Sequence[Engine],
               report: FuzzReport, statuses: set) -> Optional[Status]:
    """Fold the engines' (cached-by-rerun) verdicts into the report
    tallies; returns the decisive consensus status, if any.

    Engines were already run by :func:`differential_failure`; rather
    than cache results there (and complicate its shrink-time reuse),
    the cheapest decisive engine opinion is recomputed here: a plain
    default CDCL solve, whose verdict the round already validated.
    """
    from repro.solvers.cdcl import solve_cdcl

    result = solve_cdcl(formula)
    if result.status is Status.SATISFIABLE:
        report.sat += 1
    elif result.status is Status.UNSATISFIABLE:
        report.unsat += 1
    else:
        report.unknown += 1
        return None
    return result.status
