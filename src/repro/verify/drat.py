"""Streaming DRUP/DRAT proof emission for the CDCL engine.

The paper's clause-recording property (Section 4.1) means an UNSAT run
*is* a proof: every learned clause is a resolution implicate, so
logging the clauses in derivation order -- plus the clauses the GC
deletes, so a checker's propagation stays bounded -- yields a standard
DRUP file any independent tool can validate.

The in-memory ``repro.solvers.proof.Proof`` transcript is
O(all-learned-clauses) in RAM, which rules it out for long runs; the
sinks here are O(1) solver-side: each step is formatted and handed to
the sink immediately, and :class:`FileProofSink` appends it to a file
through a bounded buffer.

Attachment uses the same monkey-patch hook philosophy as
``attach_proof_logger`` (the engine is never modified), plus the
engine's ``on_proof_delete`` hook for GC deletion lines.  Literals are
snapshotted at attach time (``arena.lits_of``), so later compactions
-- which renumber ids and recycle buffer space -- can never corrupt an
already-emitted step.

DRUP line format (checker-facing contract):

* ``l1 l2 ... 0``     -- the learned clause (an *add* step);
* ``d l1 l2 ... 0``   -- a deletion (the clause left the solver's DB);
* ``0``               -- the final empty clause, ending an UNSAT proof.
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence, Tuple

#: Flush threshold for :class:`FileProofSink`'s line buffer (bytes).
_FLUSH_BYTES = 1 << 16


class ProofSink:
    """Interface every proof sink implements.

    ``add``/``delete`` receive raw literal sequences in derivation
    order; ``conclude`` marks the proof complete (empty clause);
    ``close`` releases resources.  All counters are maintained here so
    subclasses only implement ``_emit``.
    """

    def __init__(self) -> None:
        self.adds = 0
        self.deletes = 0
        self.bytes_written = 0
        self.concluded = False
        self.closed = False

    def add(self, literals: Sequence[int]) -> None:
        """Record a learned clause (RUP consequence)."""
        self.adds += 1
        self._emit(self._format(literals, delete=False))

    def delete(self, literals: Sequence[int]) -> None:
        """Record a clause deletion (GC dropped it)."""
        self.deletes += 1
        self._emit(self._format(literals, delete=True))

    def conclude(self) -> None:
        """Record the empty clause: the proof now certifies UNSAT."""
        if not self.concluded:
            self.concluded = True
            self._emit("0\n")

    def close(self) -> None:
        self.closed = True

    @property
    def steps(self) -> int:
        """Total emitted steps (adds + deletes + conclusion)."""
        return self.adds + self.deletes + (1 if self.concluded else 0)

    def _format(self, literals: Sequence[int], delete: bool) -> str:
        body = " ".join(map(str, literals))
        if delete:
            return f"d {body} 0\n" if body else "d 0\n"
        return f"{body} 0\n" if body else "0\n"

    def _emit(self, line: str) -> None:
        raise NotImplementedError


class FileProofSink(ProofSink):
    """Append proof lines to *path* with O(1) memory.

    Lines are buffered up to ``_FLUSH_BYTES`` and written in batches;
    ``flush``/``close`` force everything to disk, so a checker reading
    the file after ``close`` sees the complete stream.
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self._file = open(path, "w", encoding="ascii")
        self._buffer: List[str] = []
        self._buffered = 0

    def _emit(self, line: str) -> None:
        self.bytes_written += len(line)
        self._buffer.append(line)
        self._buffered += len(line)
        if self._buffered >= _FLUSH_BYTES:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._file.write("".join(self._buffer))
            self._buffer.clear()
            self._buffered = 0
        self._file.flush()

    def close(self) -> None:
        if not self.closed:
            self.flush()
            self._file.close()
            super().close()

    def __enter__(self) -> "FileProofSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryProofSink(ProofSink):
    """Keep the proof in memory -- unit tests and the fuzzer only.

    ``events`` holds ``("a"|"d", (lits...))`` tuples in emission order
    (what :func:`repro.verify.checker.check_proof_steps` consumes);
    ``lines()`` renders the equivalent file body.
    """

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Tuple[str, Tuple[int, ...]]] = []

    def add(self, literals: Sequence[int]) -> None:
        self.events.append(("a", tuple(literals)))
        super().add(literals)

    def delete(self, literals: Sequence[int]) -> None:
        self.events.append(("d", tuple(literals)))
        super().delete(literals)

    def conclude(self) -> None:
        if not self.concluded:
            self.events.append(("a", ()))
        super().conclude()

    def _emit(self, line: str) -> None:
        self.bytes_written += len(line)

    def lines(self) -> str:
        """The proof rendered as DRUP file text."""
        out = io.StringIO()
        for kind, lits in self.events:
            body = " ".join(map(str, lits))
            if kind == "d":
                out.write(f"d {body} 0\n" if body else "d 0\n")
            else:
                out.write(f"{body} 0\n" if body else "0\n")
        return out.getvalue()


def attach_proof_stream(solver, sink: ProofSink) -> ProofSink:
    """Stream *solver*'s derivation into *sink* (returns the sink).

    Instruments a :class:`~repro.solvers.cdcl.CDCLSolver` without
    modifying it: learned clauses via ``_attach`` (literals snapshotted
    from the arena at attach time), unit implicates via the
    pending-unit diff around ``_handle_conflict``, GC deletions via the
    engine's ``on_proof_delete`` hook, and the concluding empty clause
    when ``_search`` returns UNSATISFIABLE with no assumptions (an
    assumption-relative UNSAT is not a proof of the formula).  The
    engine's ``on_proof_add`` hook is pointed at ``sink.add`` so the
    inprocessing engine can log strengthened *original* clauses and
    derived units (its learned-clause rewrites already flow through
    the instrumented ``_attach``).
    """
    original_attach = solver._attach
    original_handle = solver._handle_conflict
    original_search = solver._search

    def streaming_attach(cid, learned):
        if learned:
            sink.add(solver.arena.lits_of(cid))
        original_attach(cid, learned)

    def streaming_handle(conflict):
        before = len(solver._pending_units)
        original_handle(conflict)
        for lit in solver._pending_units[before:]:
            sink.add((lit,))

    def streaming_search(assumptions):
        from repro.solvers.result import Status
        status = original_search(assumptions)
        if status is Status.UNSATISFIABLE and not assumptions:
            sink.conclude()
        return status

    def streaming_delete(clauses):
        for lits in clauses:
            sink.delete(lits)

    solver._attach = streaming_attach
    solver._handle_conflict = streaming_handle
    solver._search = streaming_search
    solver.on_proof_delete = streaming_delete
    solver.on_proof_add = sink.add
    return sink


def solve_with_proof_stream(formula, sink: Optional[ProofSink] = None,
                            proof_path: Optional[str] = None,
                            **cdcl_kwargs):
    """Solve *formula* streaming its proof; returns ``(result, sink)``.

    Exactly one of *sink* / *proof_path* selects the destination
    (default: an in-memory sink).  The sink is closed before return,
    so a file proof is immediately checkable.
    """
    from repro.solvers.cdcl import CDCLSolver

    if sink is not None and proof_path is not None:
        raise ValueError("pass either sink or proof_path, not both")
    if sink is None:
        sink = (FileProofSink(proof_path) if proof_path is not None
                else MemoryProofSink())
    solver = CDCLSolver(formula, **cdcl_kwargs)
    attach_proof_stream(solver, sink)
    try:
        result = solver.solve()
    finally:
        sink.close()
    return result, sink
