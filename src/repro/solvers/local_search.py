"""Local search for SAT: GSAT and WalkSAT (paper Section 4, [32]).

The paper observes that "of these, only backtrack search has proven
useful for solving instances of SAT from EDA applications, in
particular for applications where the objective is to prove
unsatisfiability" -- local search is *incomplete*: it can exhibit a
model but can never prove UNSAT, returning ``UNKNOWN`` instead.
Benchmark C1 reproduces that comparison.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.literals import variable
from repro.runtime.budget import (Budget, DEFAULT_CHECK_INTERVAL,
                                  process_rss_mb)
from repro.solvers.result import SolverResult, SolverStats, Status


class _State:
    """Shared bookkeeping: current assignment, per-clause satisfied
    literal counts, and the unsatisfied-clause set."""

    def __init__(self, formula: CNFFormula, rng: random.Random):
        self.clauses: List[Tuple[int, ...]] = [tuple(c) for c in formula]
        self.num_vars = formula.num_vars
        self.values: List[bool] = [False] * (self.num_vars + 1)
        self.occurrences: Dict[int, List[int]] = {}
        for index, clause in enumerate(self.clauses):
            for lit in clause:
                self.occurrences.setdefault(lit, []).append(index)
        self.sat_counts: List[int] = [0] * len(self.clauses)
        self.unsat: Set[int] = set()
        self.rng = rng

    def randomize(self) -> None:
        for var in range(1, self.num_vars + 1):
            self.values[var] = self.rng.random() < 0.5
        self._recount()

    def _recount(self) -> None:
        self.unsat.clear()
        for index, clause in enumerate(self.clauses):
            count = sum(1 for lit in clause if self._true(lit))
            self.sat_counts[index] = count
            if count == 0:
                self.unsat.add(index)

    def _true(self, lit: int) -> bool:
        return self.values[variable(lit)] == (lit > 0)

    def flip(self, var: int) -> None:
        """Flip *var* and update clause counts incrementally."""
        # Literal that becomes true / false after the flip:
        old_true = var if self.values[var] else -var
        self.values[var] = not self.values[var]
        new_true = var if self.values[var] else -var
        for index in self.occurrences.get(new_true, ()):
            self.sat_counts[index] += 1
            if self.sat_counts[index] == 1:
                self.unsat.discard(index)
        for index in self.occurrences.get(old_true, ()):
            self.sat_counts[index] -= 1
            if self.sat_counts[index] == 0:
                self.unsat.add(index)

    def gain(self, var: int) -> int:
        """Net change in satisfied clauses if *var* were flipped."""
        becomes_true = -var if self.values[var] else var
        becomes_false = var if self.values[var] else -var
        made = sum(1 for idx in self.occurrences.get(becomes_true, ())
                   if self.sat_counts[idx] == 0)
        broken = sum(1 for idx in self.occurrences.get(becomes_false, ())
                     if self.sat_counts[idx] == 1)
        return made - broken

    def break_count(self, var: int) -> int:
        """Clauses that would become unsatisfied if *var* flipped."""
        becomes_false = var if self.values[var] else -var
        return sum(1 for idx in self.occurrences.get(becomes_false, ())
                   if self.sat_counts[idx] == 1)

    def model(self) -> Assignment:
        out = Assignment()
        for var in range(1, self.num_vars + 1):
            out.assign(var, self.values[var])
        return out


def _progress_reporter(tracer, name: str, stats: SolverStats,
                       state: _State):
    """Checkpoint hook: flip deltas plus the live unsatisfied-clause
    count (baseline advances only on actual emission)."""
    last = [stats.flips]

    def report() -> None:
        if tracer.progress(name, flips=stats.flips - last[0],
                           tries=stats.tries,
                           unsat=len(state.unsat),
                           rss_mb=process_rss_mb()):
            last[0] = stats.flips
    return report


def _build_meter(budget: Optional[Budget], tracer, name: str,
                 stats: SolverStats, state: _State):
    """The per-call meter, armed by a budget and/or a tracer; None
    when neither is present (flip loop then skips the spend path)."""
    if budget is None and tracer is None:
        return None
    reporter = None
    interval = DEFAULT_CHECK_INTERVAL
    if tracer is not None:
        reporter = _progress_reporter(tracer, name, stats, state)
        if tracer.checkpoint_interval is not None:
            interval = tracer.checkpoint_interval
    return (budget or Budget()).meter(baseline=stats,
                                      on_checkpoint=reporter,
                                      check_interval=interval)


def _run_span(tracer, name: str, formula: CNFFormula, run):
    """Wrap *run()* in a solve span when a tracer is attached."""
    if tracer is None:
        return run()
    with tracer.span(name + ".solve", num_vars=formula.num_vars,
                     num_clauses=len(formula.clauses)) as end:
        result = run()
        end["status"] = result.status.value
        end["flips"] = result.stats.flips
        end["tries"] = result.stats.tries
        return result


def solve_gsat(formula: CNFFormula, max_tries: int = 10,
               max_flips: int = 1000,
               seed: Optional[int] = 0,
               budget: Optional[Budget] = None,
               tracer=None) -> SolverResult:
    """GSAT [32]: greedy hill-climbing on the satisfied-clause count.

    Each try starts from a random assignment and flips the variable
    with the best gain (random tie-break) for up to *max_flips* steps.
    Returns SATISFIABLE with a model, or UNKNOWN -- never UNSATISFIABLE.
    *budget* adds a deadline / total-flip cap / memory ceiling across
    all tries (``max_flips`` stays the classical per-try cutoff).
    *tracer* wraps the call in a span, marks each try, and emits
    periodic flip-rate progress snapshots.
    """
    return _run_span(tracer, "gsat", formula,
                     lambda: _gsat(formula, max_tries, max_flips, seed,
                                   budget, tracer))


def _gsat(formula: CNFFormula, max_tries: int, max_flips: int,
          seed: Optional[int], budget: Optional[Budget],
          tracer) -> SolverResult:
    stats = SolverStats()
    started = time.perf_counter()
    rng = random.Random(seed)
    if any(len(c) == 0 for c in formula):
        stats.time_seconds = time.perf_counter() - started
        return SolverResult(Status.UNSATISFIABLE, None, stats)

    state = _State(formula, rng)
    meter = _build_meter(budget, tracer, "gsat", stats, state)
    for _ in range(max_tries):
        stats.tries += 1
        state.randomize()
        if tracer is not None:
            tracer.event("gsat.try", tries=stats.tries,
                         unsat=len(state.unsat))
        for _ in range(max_flips):
            if not state.unsat:
                stats.time_seconds = time.perf_counter() - started
                return SolverResult(Status.SATISFIABLE, state.model(),
                                    stats)
            if meter is not None and (meter.spend(1)
                                      or meter.over_counters(stats)):
                stats.time_seconds = time.perf_counter() - started
                return SolverResult(Status.UNKNOWN, None, stats)
            best_gain = None
            best_vars: List[int] = []
            candidates = {variable(lit)
                          for idx in state.unsat
                          for lit in state.clauses[idx]}
            for var in candidates:
                gain = state.gain(var)
                if best_gain is None or gain > best_gain:
                    best_gain, best_vars = gain, [var]
                elif gain == best_gain:
                    best_vars.append(var)
            state.flip(rng.choice(best_vars))
            stats.flips += 1
        if not state.unsat:
            stats.time_seconds = time.perf_counter() - started
            return SolverResult(Status.SATISFIABLE, state.model(), stats)
    stats.time_seconds = time.perf_counter() - started
    return SolverResult(Status.UNKNOWN, None, stats)


def solve_walksat(formula: CNFFormula, max_tries: int = 10,
                  max_flips: int = 10000, noise: float = 0.5,
                  seed: Optional[int] = 0,
                  budget: Optional[Budget] = None,
                  tracer=None) -> SolverResult:
    """WalkSAT: pick a random unsatisfied clause; with probability
    *noise* flip a random variable of it, otherwise flip the variable
    with the lowest break count (zero break count is taken greedily).
    *budget* adds a deadline / total-flip cap / memory ceiling across
    all tries (``max_flips`` stays the classical per-try cutoff).
    *tracer* wraps the call in a span, marks each try, and emits
    periodic flip-rate progress snapshots.
    """
    if not 0.0 <= noise <= 1.0:
        raise ValueError("noise must be within [0, 1]")
    return _run_span(tracer, "walksat", formula,
                     lambda: _walksat(formula, max_tries, max_flips,
                                      noise, seed, budget, tracer))


def _walksat(formula: CNFFormula, max_tries: int, max_flips: int,
             noise: float, seed: Optional[int],
             budget: Optional[Budget], tracer) -> SolverResult:
    stats = SolverStats()
    started = time.perf_counter()
    rng = random.Random(seed)
    if any(len(c) == 0 for c in formula):
        stats.time_seconds = time.perf_counter() - started
        return SolverResult(Status.UNSATISFIABLE, None, stats)

    state = _State(formula, rng)
    meter = _build_meter(budget, tracer, "walksat", stats, state)
    for _ in range(max_tries):
        stats.tries += 1
        state.randomize()
        if tracer is not None:
            tracer.event("walksat.try", tries=stats.tries,
                         unsat=len(state.unsat))
        for _ in range(max_flips):
            if not state.unsat:
                stats.time_seconds = time.perf_counter() - started
                return SolverResult(Status.SATISFIABLE, state.model(),
                                    stats)
            if meter is not None and (meter.spend(1)
                                      or meter.over_counters(stats)):
                stats.time_seconds = time.perf_counter() - started
                return SolverResult(Status.UNKNOWN, None, stats)
            clause_index = rng.choice(tuple(state.unsat))
            clause_vars = [variable(lit)
                           for lit in state.clauses[clause_index]]
            breaks = [(state.break_count(var), var) for var in clause_vars]
            zero_break = [var for count, var in breaks if count == 0]
            if zero_break:
                chosen = rng.choice(zero_break)
            elif rng.random() < noise:
                chosen = rng.choice(clause_vars)
            else:
                minimum = min(count for count, _ in breaks)
                chosen = rng.choice(
                    [var for count, var in breaks if count == minimum])
            state.flip(chosen)
            stats.flips += 1
        if not state.unsat:
            stats.time_seconds = time.perf_counter() - started
            return SolverResult(Status.SATISFIABLE, state.model(), stats)
    stats.time_seconds = time.perf_counter() - started
    return SolverResult(Status.UNKNOWN, None, stats)
