"""A forward (direct) implication engine over circuit structure.

The conflict-analysis example of the paper's Figure 3 presumes a
deduction engine that propagates values *forward* through gates only
(fanin to fanout), the way structural implication engines for circuits
work [39, 40]: with ``w = 1`` and ``y3 = 0`` given, deciding
``x1 = 1`` forward-implies ``y1 = y2 = 0``, which clashes with the
value of ``y3``.  (Complete clause-level BCP would instead derive
``x1 = 0`` from ``y3 = 0`` *backward* and never reach the conflict --
one reason CNF-based deduction is stronger, cf. Section 5.)

This engine reproduces that behavior: three-valued forward
propagation, an explicit implication graph, and conflict diagnosis
that walks the graph back to external/decision assignments to emit the
conflict-induced clause -- for Figure 3, exactly ``(x1' + w' + y3)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.cnf.clause import Clause
from repro.circuits.gates import evaluate_gate3
from repro.circuits.netlist import Circuit
from repro.circuits.tseitin import CircuitEncoding, encode_circuit


class ImplicationConflict(Exception):
    """Raised when forward propagation contradicts an assignment.

    Carries the conflict clause derived from the implication graph.
    """

    def __init__(self, clause: Clause, node: str):
        super().__init__(f"conflict at node {node}: {clause.to_str()}")
        self.clause = clause
        self.node = node


@dataclass
class _Entry:
    """One assignment in the implication graph."""

    value: bool
    antecedents: Tuple[str, ...] = ()      # fanin nodes that implied it
    external: bool = True                  # decision / given objective


class ForwardImplicationEngine:
    """Three-valued forward propagation with conflict diagnosis.

    Values are set with :meth:`assign` (external assignments:
    objectives and decisions).  :meth:`propagate` then forward-implies
    gate outputs whose fanin values determine them; a clash raises
    :class:`ImplicationConflict` carrying the learned clause over the
    external assignments responsible -- the paper's "explanation" of
    the conflict.
    """

    def __init__(self, circuit: Circuit,
                 encoding: Optional[CircuitEncoding] = None):
        circuit.validate()
        self.circuit = circuit
        self.encoding = encoding or encode_circuit(circuit)
        self._entries: Dict[str, _Entry] = {}

    # ------------------------------------------------------------------

    def value(self, name: str) -> Optional[bool]:
        """Current value of node *name* (``None`` = unassigned)."""
        entry = self._entries.get(name)
        return entry.value if entry is not None else None

    def assign(self, name: str, value: bool) -> None:
        """External assignment (objective or decision)."""
        if name not in self.circuit:
            raise KeyError(f"unknown node {name!r}")
        current = self.value(name)
        if current is not None:
            if current != value:
                raise ImplicationConflict(
                    self._explain(name, value), name)
            return
        self._entries[name] = _Entry(bool(value))

    def unassign(self, name: str) -> None:
        """Retract an assignment (and nothing else; re-propagate as
        needed)."""
        self._entries.pop(name, None)

    def propagate(self) -> List[str]:
        """Forward-imply to fixpoint; returns newly implied node names.

        Raises :class:`ImplicationConflict` when an implied value
        contradicts an existing assignment.
        """
        implied: List[str] = []
        changed = True
        while changed:
            changed = False
            for name in self.circuit.topological_order():
                node = self.circuit.node(name)
                if not node.is_gate or not node.fanins:
                    continue
                inputs = [self.value(f) for f in node.fanins]
                result = evaluate_gate3(node.gate_type, inputs)
                if result is None:
                    continue
                current = self.value(name)
                if current is None:
                    determined = tuple(
                        f for f in node.fanins
                        if self.value(f) is not None)
                    self._entries[name] = _Entry(result, determined,
                                                 external=False)
                    implied.append(name)
                    changed = True
                elif current != result:
                    raise ImplicationConflict(
                        self._diagnose(name), name)
        return implied

    # ------------------------------------------------------------------

    def _external_support(self, names) -> Set[str]:
        """Walk the implication graph back to external assignments."""
        support: Set[str] = set()
        stack = list(names)
        seen: Set[str] = set()
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            entry = self._entries.get(name)
            if entry is None:
                continue
            if entry.external:
                support.add(name)
            else:
                stack.extend(entry.antecedents)
        return support

    def _diagnose(self, conflict_node: str) -> Clause:
        """The conflict clause: negation of the external assignments
        supporting both the implied value and the clashing one."""
        node = self.circuit.node(conflict_node)
        support = self._external_support(node.fanins)
        support |= self._external_support([conflict_node])
        return self._clause_over(support)

    def _explain(self, name: str, attempted: bool) -> Clause:
        support = self._external_support([name])
        return self._clause_over(support)

    def _clause_over(self, support: Set[str]) -> Clause:
        literals = []
        for name in sorted(support):
            value = self._entries[name].value
            literals.append(self.encoding.literal(name, not value))
        return Clause(literals)

    def reset(self) -> None:
        """Clear every assignment."""
        self._entries.clear()
